//! `trigon` — command-line front end for the workspace.
//!
//! ```text
//! trigon devices
//! trigon gen <model> --n N [--seed S] [-o FILE]         models: gnp, ba, ws, ring, rmat, complete, grid
//! trigon analyze <FILE>
//! trigon run [<FILE>] [--gen MODEL --n N] [--workload triangles|kcount|clustering|ktruss|enumerate] [--k K]
//!            [--method cpu|cpu-fast|cpu-intersect|gpu-naive|gpu-opt|gpu-sampled|gpu-intersect|hybrid|doulion]
//!            [--device c1060|c2050|c2070] [--devices SPEC] [--device-loss N]
//!            [--cluster SPEC] [--partition auto|1d|2d] [--node-loss N] [--p PROB]
//!            [--threads N] [--faults SPEC] [--fault-seed N] [--json] [--trace FILE]
//!            [--profile FILE] [--verbose]
//! trigon split <FILE> [--device c1060|c2050|c2070]
//! trigon hybrid [<FILE>] [--gen MODEL --n N] [--device c1060|c2050|c2070] [--json]
//! trigon kcount <FILE> --k K [--what cliques|connected|independent] [--json]
//! trigon camping
//! trigon serve [--listen ADDR|--socket PATH] [--ndjson] [--device D] [--devices SPEC]
//!              [--slots N] [--queue-depth N]
//! trigon query (--to HOST:PORT|--socket PATH) [--ndjson] [--json] <op> ...
//! ```
//!
//! File-loading commands accept `--format auto|edges|mm` (default `auto`,
//! which sniffs the `%%MatrixMarket` banner).
//!
//! Exit codes: `0` success, `2` usage / bad configuration, `3` I/O,
//! `4` malformed input, `5` graph too large for the device.

use std::collections::HashMap;
use std::io::BufReader;
use trigon::core::split::{split_graph, SplitConfig};
use trigon::gpu_sim::{
    render_partition_histogram, render_sm_timeline, DeviceSpec, FaultConfig, FaultPlan, FaultSpec,
    PartitionTraffic,
};
use trigon::graph::{approx, cores, io, triangles, BfsTree, Graph};
use trigon::{
    Analysis, ClusterSpec, Error, FleetSpec, Json, Level, LossPlan, Method, PartitionStrategy,
    ProfileSection, RunReport, Tracer, Workload, WorkloadSection, RUN_REPORT_SCHEMA_VERSION,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("devices") => cmd_devices(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("split") => cmd_split(&args[1..]),
        Some("hybrid") => cmd_hybrid(&args[1..]),
        Some("kcount") => cmd_kcount(&args[1..]),
        Some("camping") => cmd_camping(),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    match result {
        Ok(()) => {}
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}

const USAGE: &str = "usage:
  trigon devices
  trigon gen <gnp|ba|ws|ring|rmat|complete|grid> --n N [--seed S] [-o FILE]
  trigon analyze <FILE>
  trigon run [<FILE>] [--gen MODEL --n N] [--workload triangles|kcount|clustering|ktruss|enumerate] [--k K] [--method cpu|cpu-fast|cpu-intersect|gpu-naive|gpu-opt|gpu-sampled|gpu-intersect|hybrid|doulion] [--device c1060|c2050|c2070] [--devices SPEC] [--device-loss N] [--cluster SPEC] [--partition auto|1d|2d] [--node-loss N] [--p PROB] [--threads N] [--faults SPEC] [--fault-seed N] [--json] [--trace FILE] [--profile FILE] [--verbose]
    --workload W    what to compute per ALS (default triangles); kcount and
                    ktruss take --k K (default 4)
    --profile FILE  write the performance-counter profile (counter totals,
                    derived metrics, per-ALS hotspots, per-device roofline)
                    as JSON; --verbose prints the hotspot table
    --faults SPEC   inject deterministic simulated faults; SPEC is a comma list
                    of kind:count pairs (kinds: ecc, xfer, abort, stall), e.g.
                    --faults xfer:1,ecc:2 --fault-seed 7
    --devices SPEC  run the gpu-* methods on a multi-device fleet; SPEC is a
                    comma list of [COUNTx]MODEL entries, e.g.
                    --devices 2xC2050,1xC1060 (1-8 devices total)
    --device-loss N kill N fleet devices at shard start (deterministic, seeded
                    by --fault-seed); their work reshards onto the survivors
    --cluster SPEC  run the gpu-* methods on a simulated multi-node cluster;
                    SPEC is a comma list of [COUNTx](FLEET) nodes, e.g.
                    --cluster \"4x(2xC2050)\" or --cluster \"2x(C2070),C1060\"
                    (1-64 nodes; inter-node links priced as IB-QDR)
    --partition P   cluster layout: auto (cost model, default), 1d (whole
                    components per node), 2d (contiguous edge blocks)
    --node-loss N   kill N cluster nodes at partition time (seeded by
                    --fault-seed); their ALS migrate to surviving nodes
  trigon split <FILE> [--device c1060|c2050|c2070]
  trigon hybrid [<FILE>] [--gen MODEL --n N] [--device c1060|c2050|c2070] [--json]
  trigon kcount <FILE> --k K [--what cliques|connected|independent] [--json]
  trigon camping
  trigon serve [--listen ADDR|--socket PATH] [--ndjson] [--device c1060|c2050|c2070] [--devices SPEC] [--slots N] [--queue-depth N]
    persistent daemon: loads graphs into a registry, answers queries over
    warm caches, and admits graphs by the paper's Eqs. 1-2 capacity test
    (route to --devices fleet when the device is too small, else exit 5).
    Default transport is stdio; --listen prints \"listening on ADDR\".
  trigon query (--to HOST:PORT|--socket PATH) [--ndjson] [--json] <op>
    ops: load NAME (FILE [--format F] | --gen MODEL --n N [--seed S])
         run GRAPH [--workload W[,W...]] [--method M] [--k K]
         list | evict NAME | stats | shutdown
    The server's error code becomes the process exit code.

  FILE arguments accept --format auto|edges|mm (default auto)";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["json", "verbose", "ndjson"];

/// Parses `--flag value` pairs, boolean `--flag`s, and positionals.
///
/// A lone `-` or a negative number (`-3`, `-.5`) is a positional, not a
/// flag; a value-taking flag with nothing after it is a usage error.
fn parse(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), Error> {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let name = if let Some(name) = a.strip_prefix("--") {
            name
        } else if let Some(name) = a.strip_prefix('-') {
            if name.is_empty() || name.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
                pos.push(a.clone());
                continue;
            }
            name
        } else {
            pos.push(a.clone());
            continue;
        };
        if name.is_empty() {
            return Err(Error::bad_config(format!("empty flag {a:?}\n{USAGE}")));
        }
        if BOOL_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
        } else {
            match it.next() {
                Some(v) => {
                    flags.insert(name.to_string(), v.clone());
                }
                None => {
                    return Err(Error::bad_config(format!(
                        "flag --{name} needs a value\n{USAGE}"
                    )));
                }
            }
        }
    }
    Ok((pos, flags))
}

/// Builds the fault-injection config from `--faults SPEC` / `--fault-seed N`.
///
/// A malformed SPEC is a parse error (exit 4); `--fault-seed` without
/// `--faults` is a configuration error (exit 2). The seed defaults to 0.
fn faults_for(flags: &HashMap<String, String>) -> Result<Option<FaultConfig>, Error> {
    let spec = match flags.get("faults") {
        None => {
            if flags.contains_key("fault-seed")
                && !flags.contains_key("device-loss")
                && !flags.contains_key("node-loss")
            {
                return Err(Error::bad_config(
                    "--fault-seed needs --faults SPEC, --device-loss N, or --node-loss N \
                     (nothing to inject)",
                ));
            }
            return Ok(None);
        }
        Some(s) => FaultSpec::parse(s).map_err(|e| Error::Parse(format!("--faults: {e}")))?,
    };
    let seed: u64 = match flags.get("fault-seed") {
        None => 0,
        Some(s) => s.parse().map_err(|_| {
            Error::bad_config(format!(
                "--fault-seed expects an unsigned integer, got {s:?}"
            ))
        })?,
    };
    Ok(Some(FaultConfig::new(FaultPlan::new(spec, seed))))
}

/// Builds the fleet spec from `--devices SPEC` and the loss plan from
/// `--device-loss N` (seeded by `--fault-seed`, default 0).
///
/// A malformed SPEC is a parse error (exit 4); `--device-loss` without
/// `--devices` is a configuration error (exit 2).
fn fleet_for(
    flags: &HashMap<String, String>,
) -> Result<(Option<FleetSpec>, Option<LossPlan>), Error> {
    let fleet = match flags.get("devices") {
        None => {
            if flags.contains_key("device-loss") {
                return Err(Error::bad_config(
                    "--device-loss needs --devices SPEC (a fleet to lose devices from)",
                ));
            }
            return Ok((None, None));
        }
        Some(s) => FleetSpec::parse(s).map_err(|e| Error::Parse(format!("--devices: {e}")))?,
    };
    let loss = match flags.get("device-loss") {
        None => None,
        Some(s) => {
            let count: u32 = s.parse().map_err(|_| {
                Error::bad_config(format!(
                    "--device-loss expects an unsigned integer, got {s:?}"
                ))
            })?;
            let seed: u64 = match flags.get("fault-seed") {
                None => 0,
                Some(s) => s.parse().map_err(|_| {
                    Error::bad_config(format!(
                        "--fault-seed expects an unsigned integer, got {s:?}"
                    ))
                })?,
            };
            Some(LossPlan::new(count, seed))
        }
    };
    Ok((Some(fleet), loss))
}

/// Builds the cluster spec from `--cluster SPEC`, the partition strategy
/// from `--partition P`, and the node-loss plan from `--node-loss N`
/// (seeded by `--fault-seed`, default 0).
///
/// A malformed SPEC is a parse error (exit 4); `--node-loss` or
/// `--partition` without `--cluster` is a configuration error (exit 2).
fn cluster_for(
    flags: &HashMap<String, String>,
) -> Result<(Option<ClusterSpec>, PartitionStrategy, Option<LossPlan>), Error> {
    let cluster = match flags.get("cluster") {
        None => {
            if flags.contains_key("node-loss") {
                return Err(Error::bad_config(
                    "--node-loss needs --cluster SPEC (a cluster to lose nodes from)",
                ));
            }
            if flags.contains_key("partition") {
                return Err(Error::bad_config(
                    "--partition needs --cluster SPEC (nothing to partition)",
                ));
            }
            return Ok((None, PartitionStrategy::Auto, None));
        }
        Some(s) => ClusterSpec::parse(s).map_err(|e| Error::Parse(format!("--cluster: {e}")))?,
    };
    let partition = match flags.get("partition") {
        None => PartitionStrategy::Auto,
        Some(s) => PartitionStrategy::parse(s)
            .map_err(|e| Error::bad_config(format!("--partition: {e}")))?,
    };
    let loss = match flags.get("node-loss") {
        None => None,
        Some(s) => {
            let count: u32 = s.parse().map_err(|_| {
                Error::bad_config(format!(
                    "--node-loss expects an unsigned integer, got {s:?}"
                ))
            })?;
            let seed: u64 = match flags.get("fault-seed") {
                None => 0,
                Some(s) => s.parse().map_err(|_| {
                    Error::bad_config(format!(
                        "--fault-seed expects an unsigned integer, got {s:?}"
                    ))
                })?,
            };
            Some(LossPlan::new(count, seed))
        }
    };
    Ok((Some(cluster), partition, loss))
}

fn device_for(flags: &HashMap<String, String>) -> Result<DeviceSpec, Error> {
    match flags.get("device") {
        None => Ok(DeviceSpec::c1060()),
        Some(name) => match name.to_ascii_lowercase().as_str() {
            "c1060" => Ok(DeviceSpec::c1060()),
            "c2050" => Ok(DeviceSpec::c2050()),
            "c2070" => Ok(DeviceSpec::c2070()),
            _ => Err(Error::bad_config(format!("unknown device {name:?}"))),
        },
    }
}

/// The CLI's graph models — shared with the serving daemon's `load` op
/// so `--gen MODEL` means the same thing locally and over the wire.
fn generate(model: &str, n: u32, seed: u64) -> Option<Graph> {
    trigon::serve::generate(model, n, seed)
}

/// Resolves `--format` (default `auto`, which sniffs the MatrixMarket
/// banner) into a [`io::DatasetFormat`].
fn format_for(flags: &HashMap<String, String>) -> Result<io::DatasetFormat, Error> {
    let name = flags.get("format").map_or("auto", String::as_str);
    io::DatasetFormat::parse(name).ok_or_else(|| {
        Error::bad_config(format!(
            "unknown dataset format {name:?} (expected auto|edges|mm)"
        ))
    })
}

/// Maps a dataset-reader failure onto the CLI error taxonomy: transport
/// failures stay I/O (exit 3), everything else is malformed input
/// (exit 4).
fn dataset_error(path: &str, e: io::IoError) -> Error {
    match e {
        io::IoError::Io(source) => Error::Io {
            path: path.to_string(),
            source,
        },
        other => Error::Parse(format!("{path}: {other}")),
    }
}

fn load_or_gen(pos: &[String], flags: &HashMap<String, String>) -> Result<Graph, Error> {
    if let Some(model) = flags.get("gen") {
        let n: u32 = flags
            .get("n")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::bad_config("--gen needs --n N"))?;
        let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
        return generate(model, n, seed)
            .ok_or_else(|| Error::bad_config(format!("unknown model {model:?}")));
    }
    let path = pos
        .first()
        .ok_or_else(|| Error::bad_config("need a FILE or --gen MODEL --n N"))?;
    let format = format_for(flags)?;
    let f = std::fs::File::open(path).map_err(|e| Error::Io {
        path: path.clone(),
        source: e,
    })?;
    let (g, _) = io::read_dataset(BufReader::new(f), format).map_err(|e| dataset_error(path, e))?;
    Ok(g)
}

fn cmd_devices() -> Result<(), Error> {
    println!(
        "{:<8} {:>6} {:>11} {:>11} {:>6} {:>5} {:>6} {:>11} {:>11}",
        "Model",
        "Cores",
        "Global(GB)",
        "Shared(KB)",
        "Banks",
        "CC",
        "SMs",
        "MaxN(adj)",
        "MaxN(sutm)"
    );
    for d in DeviceSpec::table1() {
        println!(
            "{:<8} {:>6} {:>11} {:>11} {:>6} {:>5} {:>6} {:>11} {:>11}",
            d.name,
            d.cores,
            d.global_mem_bytes / (1 << 30),
            d.shared_mem_bytes / 1024,
            d.shared_banks,
            d.compute_capability,
            d.sm_count,
            trigon::core::max_graph_adjacency(d.global_mem_bits()),
            trigon::core::max_graph_sutm(d.global_mem_bits()),
        );
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    let model = pos
        .first()
        .ok_or_else(|| Error::bad_config(format!("gen needs a model\n{USAGE}")))?;
    let n = flags
        .get("n")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::bad_config("gen: --n N is required"))?;
    let seed = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let g = generate(model, n, seed)
        .ok_or_else(|| Error::bad_config(format!("unknown model {model:?}")))?;
    match flags.get("o") {
        Some(path) => {
            let f = std::fs::File::create(path).map_err(|e| Error::Io {
                path: path.clone(),
                source: e,
            })?;
            io::write_edge_list(&g, std::io::BufWriter::new(f)).map_err(|e| Error::Io {
                path: path.clone(),
                source: e,
            })?;
            println!("wrote {} (n = {}, m = {})", path, g.n(), g.m());
        }
        None => {
            io::write_edge_list(&g, std::io::stdout().lock()).map_err(|e| Error::Io {
                path: "<stdout>".to_string(),
                source: e,
            })?;
        }
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    let g = load_or_gen(&pos, &flags)?;
    println!("vertices            {}", g.n());
    println!("edges               {}", g.m());
    println!("density             {:.6}", g.density());
    println!("max degree          {}", g.max_degree());
    let comps = trigon::graph::connected_components(&g);
    println!("components          {}", comps.len());
    if let Some(largest) = comps.iter().map(Vec::len).max() {
        println!("largest component   {largest}");
    }
    if g.n() > 0 {
        let t = BfsTree::new(&g, comps[0][0]);
        println!("BFS depth (root {}) {}", t.root(), t.depth());
        let widest = t.levels().iter().map(Vec::len).max().unwrap_or(0);
        println!("widest BFS level    {widest}");
    }
    let d = cores::core_decomposition(&g);
    println!("degeneracy          {}", d.degeneracy);
    let tri = triangles::count_edge_iterator(&g);
    println!("triangles           {tri}");
    println!("transitivity        {:.4}", triangles::transitivity(&g));
    let cc = triangles::clustering_coefficients(&g);
    let mean_cc = if cc.is_empty() {
        0.0
    } else {
        cc.iter().sum::<f64>() / cc.len() as f64
    };
    println!("mean clustering     {mean_cc:.4}");
    Ok(())
}

/// Prints a [`RunReport`] in the flat key-value form of `trigon count`.
fn print_report(r: &RunReport) {
    println!("{:<14}{}", r.kind, r.count);
    println!("{:<14}{}", "tests", r.tests);
    println!("{:<14}{:.4} s", "modeled", r.modeled_s);
    println!("{:<14}{:.4} s", "wall", r.wall_s);
    match &r.workload {
        WorkloadSection::Clustering {
            vertices,
            mean_clustering,
            transitivity,
        } => {
            println!(
                "{:<14}{mean_clustering:.6} over {vertices} vertices",
                "mean cc"
            );
            println!("{:<14}{transitivity:.6}", "transitivity");
        }
        WorkloadSection::KTruss {
            k,
            edges_initial,
            edges_kept,
            edges_peeled,
        } => {
            println!(
                "{:<14}{edges_kept} of {edges_initial} edges survive k={k} ({edges_peeled} peeled)",
                "truss"
            );
        }
        WorkloadSection::Enumerate {
            triangles,
            checksum,
        } => {
            println!(
                "{:<14}{triangles} listed, checksum {checksum:#018x}",
                "enumerated"
            );
        }
        WorkloadSection::Triangles | WorkloadSection::KCount { .. } => {}
    }
    if let Some(gpu) = &r.gpu {
        println!("{:<14}{:.4} s", "kernel", gpu.kernel_s);
        println!("{:<14}{:.6} s", "transfer", gpu.transfer_s);
        println!("{:<14}{}", "blocks", gpu.blocks);
        println!("{:<14}{}", "transactions", gpu.transactions);
        println!("{:<14}{:.3}", "camping", gpu.camping_factor);
        println!("{:<14}{} bytes", "layout", gpu.layout_bytes);
        println!("{:<14}{} cycles", "makespan", gpu.makespan_cycles);
        println!("{:<14}{:.3}", "sm util", gpu.sm_utilization);
    }
    if let Some(h) = &r.hybrid {
        println!(
            "{:<14}{} shared / {} global",
            "ALS placement", h.shared_als, h.global_als
        );
        println!(
            "{:<14}{} ({} oversize)",
            "chunks", h.chunks, h.oversize_chunks
        );
    }
    if let Some(f) = &r.faults {
        println!(
            "{:<14}{} (seed {}) — injected ecc:{} xfer:{} abort:{} stall:{}",
            "faults",
            f.spec,
            f.seed,
            f.injected_ecc,
            f.injected_xfer,
            f.injected_abort,
            f.injected_stall
        );
        println!(
            "{:<14}{} transfer retries, {} chunk retries, {} reassigned, {} cpu-fallback chunks{}",
            "recovery",
            f.transfer_retries,
            f.chunk_retries,
            f.reassigned_chunks,
            f.cpu_fallback_chunks,
            if f.run_cpu_fallback {
                " (run fell back to CPU)"
            } else {
                ""
            }
        );
        if f.stalled_sms > 0 || f.backoff_cycles > 0 {
            println!(
                "{:<14}{} SMs stalled, {} backoff cycles, {} events",
                "degradation", f.stalled_sms, f.backoff_cycles, f.events
            );
        }
    }
    if let Some(fl) = &r.fleet {
        println!(
            "{:<14}{} ({} devices, {} lost, {} ALS reshard)",
            "fleet", fl.spec, fl.devices, fl.lost_devices, fl.reassigned_als
        );
        println!(
            "{:<14}{} cycles (compute {}, H2D {}, D2D {}, imbalance {:.3})",
            "fleet span",
            fl.makespan_cycles,
            fl.compute_cycles,
            fl.h2d_cycles,
            fl.d2d_cycles,
            fl.imbalance
        );
        for (i, d) in fl.per_device.iter().enumerate() {
            println!(
                "  dev {:>2} {:<6} {:>5} ALS {:>12} end-cycles {:>10} triangles{}",
                i,
                d.device,
                d.als,
                d.end_cycles,
                d.triangles,
                if d.lost { "  LOST" } else { "" }
            );
        }
    }
    if let Some(cl) = &r.cluster {
        println!(
            "{:<14}{} ({} nodes, {} devices, {} lost, {} ALS reshard)",
            "cluster", cl.spec, cl.nodes, cl.devices, cl.lost_nodes, cl.reassigned_als
        );
        println!(
            "{:<14}{}{} over {} (1d {} vs 2d {} predicted cycles)",
            "partition",
            cl.strategy,
            if cl.auto { " (auto)" } else { "" },
            cl.inter_tier,
            cl.predicted_one_d_cycles,
            cl.predicted_two_d_cycles
        );
        println!(
            "{:<14}{} cycles (compute {}, uplink {}, ghost {}, imbalance {:.3})",
            "cluster span",
            cl.makespan_cycles,
            cl.compute_cycles,
            cl.uplink_cycles,
            cl.ghost_cycles,
            cl.imbalance
        );
        if cl.ghost_vertices > 0 {
            println!(
                "{:<14}{} vertices, {} bytes exchanged",
                "ghosts", cl.ghost_vertices, cl.ghost_bytes
            );
        }
        for (i, n) in cl.per_node.iter().enumerate() {
            println!(
                "  node {:>2} {:<10} {:>5} ALS {:>12} end-cycles {:>10} triangles{}",
                i,
                n.fleet,
                n.als,
                n.end_cycles,
                n.triangles,
                if n.lost { "  LOST" } else { "" }
            );
        }
    }
    if let Some(e) = &r.eq6 {
        println!(
            "{:<14}predicted {:.4} s vs simulated {:.4} s (ratio {:.2})",
            "Eq. 6", e.predicted_s, e.simulated_s, e.ratio
        );
    }
    if let Some(s) = &r.serving {
        println!(
            "{:<14}{} {} -> {} (result {}, artifacts {})",
            "serving", s.graph, s.verdict, s.target, s.cache, s.artifacts
        );
        println!(
            "{:<14}waited {:.6} s, batch {}/{}, H2D share {:.6} s",
            "queue",
            s.queue_wait_s,
            s.batch_index + 1,
            s.batch_size,
            s.h2d_share_s
        );
    }
}

fn cmd_run(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    let trace_path = flags.get("trace").cloned();
    let profile_path = flags.get("profile").cloned();
    let verbose = flags.contains_key("verbose");
    let level = if trace_path.is_some() || verbose {
        Level::Trace
    } else {
        Level::Standard
    };
    let tracer = Tracer::with_level(level);
    let g = {
        let source = if flags.contains_key("gen") {
            "gen"
        } else {
            "load"
        };
        let mut span = tracer.span(source, "phase");
        let g = load_or_gen(&pos, &flags)?;
        span.attr("n", u64::from(g.n()));
        span.attr("m", g.m() as u64);
        g
    };
    let device = device_for(&flags)?;
    let method = flags.get("method").map_or("gpu-opt", String::as_str);
    if method == "doulion" {
        let p: f64 = flags.get("p").and_then(|s| s.parse().ok()).unwrap_or(0.5);
        let est = approx::doulion(&g, p, 42);
        println!(
            "DOULION estimate {:.0} (kept {} of {} edges at p = {})",
            est.estimate,
            est.kept_edges,
            g.m(),
            est.p
        );
        return Ok(());
    }
    let threads = match flags.get("threads") {
        Some(s) => Some(s.parse::<usize>().map_err(|_| {
            Error::bad_config(format!("--threads expects a positive integer, got {s:?}"))
        })?),
        None => None,
    };
    if threads == Some(0) {
        return Err(Error::bad_config("--threads must be at least 1"));
    }
    let k = match flags.get("k") {
        Some(s) => Some(s.parse::<u32>().map_err(|_| {
            Error::bad_config(format!("--k expects an unsigned integer, got {s:?}"))
        })?),
        None => None,
    };
    let workload = match flags.get("workload") {
        Some(name) => Workload::parse(name, k)?,
        None if k.is_some() => {
            return Err(Error::bad_config(
                "--k needs --workload kcount or --workload ktruss",
            ));
        }
        None => Workload::Triangles,
    };
    let faults = faults_for(&flags)?;
    let (fleet, loss) = fleet_for(&flags)?;
    let (cluster, partition, node_loss) = cluster_for(&flags)?;
    let mut a = Analysis::new(&g)
        .method(Method::parse(method)?)
        .workload(workload)
        .device(device.clone())
        .telemetry(level)
        .tracer(tracer);
    if let Some(t) = threads {
        // Pin the CPU-parallel width by running the analysis inside an
        // explicitly sized pool (`--threads 1` gives a deterministic
        // serial run regardless of TRIGON_THREADS or core count).
        a = a.threads(t);
    }
    if let Some(fc) = faults {
        a = a.faults(fc);
    }
    if let Some(f) = fleet {
        a = a.fleet(f);
    }
    if let Some(l) = loss {
        a = a.device_loss(l);
    }
    if let Some(c) = cluster {
        a = a.cluster(c).partition(partition);
    }
    if let Some(l) = node_loss {
        a = a.node_loss(l);
    }
    let report = a.execute()?;
    if flags.contains_key("json") {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        print_report(&report);
        if verbose {
            print_profile(&report);
            print_verbose_trace(&report, &device);
        }
    }
    if let Some(path) = trace_path {
        let trace = report.tracer.to_chrome_trace();
        std::fs::write(&path, trace.to_string_pretty()).map_err(|e| Error::Io {
            path: path.clone(),
            source: e,
        })?;
        eprintln!(
            "wrote {path} ({} spans, {} counter samples) — open in chrome://tracing \
             or ui.perfetto.dev",
            report.tracer.span_count(),
            report.tracer.counter_count()
        );
    }
    if let Some(path) = profile_path {
        let mut o = Json::object();
        o.set(
            "schema_version",
            Json::from(u64::from(RUN_REPORT_SCHEMA_VERSION)),
        );
        o.set("method", Json::from(report.method.as_str()));
        o.set(
            "device",
            report.device.as_deref().map_or(Json::Null, Json::from),
        );
        o.set(
            "profile",
            report
                .profile
                .as_ref()
                .map_or(Json::Null, ProfileSection::to_json),
        );
        std::fs::write(&path, o.to_string_pretty()).map_err(|e| Error::Io {
            path: path.clone(),
            source: e,
        })?;
        eprintln!("wrote {path} (performance-counter profile)");
    }
    Ok(())
}

/// The `--verbose` profiler dump: the per-ALS hotspot table (hottest
/// first, by priced cycles) and the per-device roofline placements.
fn print_profile(r: &RunReport) {
    let Some(p) = &r.profile else {
        return;
    };
    let hot = p.data.hotspots(ProfileSection::HOTSPOT_N);
    if !hot.is_empty() {
        println!("\nhottest ALS (by priced cycles):");
        println!(
            "{:>5} {:>16} {:>14} {:>14} {:>8} {:>7}",
            "als", "tests", "transactions", "cycles", "blocks", "coal%"
        );
        for i in hot {
            let c = &p.data.per_als[i];
            println!(
                "{i:>5} {:>16} {:>14} {:>14} {:>8} {:>6.1}%",
                c.tests,
                c.transactions,
                c.cycles(),
                c.blocks,
                c.coalescing_efficiency() * 100.0
            );
        }
    }
    for d in &p.data.devices {
        println!(
            "{:<14}{}: {} bound — intensity {:.3} ops/B (ridge {:.3}), \
             achieved {:.3e} ops/s of {:.3e}",
            "roofline",
            d.device,
            d.roofline.bound,
            d.roofline.intensity_ops_byte,
            d.roofline.ridge_ops_byte,
            d.roofline.achieved_ops_s,
            d.roofline.compute_roof_ops_s
        );
    }
}

/// The `--verbose` trace dump: summary lines, per-SM ASCII timeline, and
/// the per-partition transaction histogram rebuilt from the run's
/// `partition.kernel.p{i}` counters.
fn print_verbose_trace(r: &RunReport, device: &DeviceSpec) {
    if let Some(t) = &r.trace {
        println!();
        println!(
            "{:<14}{} spans, {} instants, host busy {:.6} s (critical path {:.6} s)",
            "trace", t.spans, t.instants, t.host_busy_s, t.critical_path_s
        );
        if let Some(d) = &t.device {
            println!(
                "{:<14}{} SMs, {} device spans, makespan {} cycles, mean busy {:.0}%",
                "device",
                d.sms,
                d.spans,
                d.makespan_cycles,
                d.mean_busy_frac * 100.0
            );
        }
        for h in &t.histograms {
            println!(
                "{:<14}{} n={} min={:.0} p50={:.1} p90={:.1} p99={:.1} max={:.0}",
                "hist", h.name, h.count, h.min, h.p50, h.p90, h.p99, h.max
            );
        }
    }
    println!("\nper-SM timeline (simulated cycles):");
    print!("{}", render_sm_timeline(&r.tracer.sm_occupancy(60)));
    let mut traffic = PartitionTraffic::new(device);
    for p in 0..device.partitions {
        traffic.record_bulk(p, r.telemetry.counter(&format!("partition.kernel.p{p}")));
    }
    if traffic.total() > 0 {
        println!("\nkernel transactions per partition:");
        print!("{}", render_partition_histogram(&traffic, 40));
    }
}

fn cmd_split(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    let g = load_or_gen(&pos, &flags)?;
    let device = device_for(&flags)?;
    let cfg = SplitConfig::for_device(&device);
    let r = split_graph(&g, &cfg);
    println!(
        "{} chunks on {} ({} shared, {} global), {} roots tried",
        r.chunks.len(),
        device.name,
        r.shared_count(),
        r.global_count(),
        r.roots_tried
    );
    for c in &r.chunks {
        println!(
            "  comp {:>3} levels {:>3}..{:<3} nodes {:>6} bits {:>10} {}",
            c.component,
            c.levels.0,
            c.levels.1,
            c.nodes.len(),
            c.size_bits,
            if c.fits_shared { "shared" } else { "GLOBAL" }
        );
    }
    Ok(())
}

fn cmd_hybrid(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    let g = load_or_gen(&pos, &flags)?;
    let device = device_for(&flags)?;
    let name = device.name;
    let report = Analysis::new(&g)
        .method(Method::Hybrid)
        .device(device)
        .run()?;
    if flags.contains_key("json") {
        println!("{}", report.to_json().to_string_pretty());
        return Ok(());
    }
    let h = report.hybrid.as_ref().expect("hybrid section");
    let eq6 = report.eq6.as_ref().expect("eq6 section");
    println!("device            {name}");
    println!("triangles         {}", report.count);
    println!("tests             {}", report.tests);
    println!(
        "chunks            {} ({} oversize)",
        h.chunks, h.oversize_chunks
    );
    println!(
        "ALS placement     {} shared / {} global",
        h.shared_als, h.global_als
    );
    println!("bank conflicts    degree {:.1}", h.bank_conflict_degree);
    println!("kernel (LPT)      {:.4} s", eq6.simulated_s);
    println!("kernel (Eq. 6)    {:.4} s", eq6.predicted_s);
    println!("total             {:.4} s", report.modeled_s);
    Ok(())
}

fn cmd_kcount(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    let g = load_or_gen(&pos, &flags)?;
    let k: u32 = flags
        .get("k")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::bad_config("kcount: --k K is required"))?;
    let what = flags.get("what").map_or("cliques", String::as_str);
    use trigon::core::kcount;
    let count = match what {
        "cliques" => {
            let report = Analysis::new(&g)
                .method(Method::KCliques(k))
                .device(device_for(&flags)?)
                .run()?;
            if flags.contains_key("json") {
                println!("{}", report.to_json().to_string_pretty());
                return Ok(());
            }
            report.count
        }
        "connected" => kcount::count_connected_subgraphs(&g, k),
        "independent" => kcount::count_k_independent_sets(&g, k),
        other => {
            return Err(Error::bad_config(format!(
                "unknown subgraph kind {other:?}"
            )));
        }
    };
    println!("{what} of size {k}: {count}");
    Ok(())
}

/// Parses a small positive-integer flag with a default.
fn usize_flag(flags: &HashMap<String, String>, name: &str, default: usize) -> Result<usize, Error> {
    match flags.get(name) {
        None => Ok(default),
        Some(s) => match s.parse::<usize>() {
            Ok(v) if v >= 1 => Ok(v),
            _ => Err(Error::bad_config(format!(
                "--{name} expects a positive integer, got {s:?}"
            ))),
        },
    }
}

fn wire_for(flags: &HashMap<String, String>) -> trigon::serve::Wire {
    if flags.contains_key("ndjson") {
        trigon::serve::Wire::Ndjson
    } else {
        trigon::serve::Wire::Framed
    }
}

/// `trigon serve` — the persistent daemon. Serves stdio by default
/// (one session over stdin/stdout, e.g. under a pipe from `ci.sh`);
/// `--listen ADDR` accepts concurrent TCP clients and announces the
/// bound address (so `--listen 127.0.0.1:0` is testable); `--socket
/// PATH` serves a Unix socket.
fn cmd_serve(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    if let Some(extra) = pos.first() {
        return Err(Error::bad_config(format!(
            "serve takes no positional arguments, got {extra:?}\n{USAGE}"
        )));
    }
    let device = device_for(&flags)?;
    let fleet = match flags.get("devices") {
        None => None,
        Some(s) => Some(FleetSpec::parse(s).map_err(|e| Error::Parse(format!("--devices: {e}")))?),
    };
    let cfg = trigon::serve::ServerConfig {
        device,
        fleet,
        slots: usize_flag(&flags, "slots", 8)?,
        depth: usize_flag(&flags, "queue-depth", 16)?,
    };
    let wire = wire_for(&flags);
    let server = std::sync::Arc::new(trigon::serve::Server::new(cfg));
    if let Some(addr) = flags.get("listen") {
        let listener = std::net::TcpListener::bind(addr).map_err(|e| Error::Io {
            path: addr.clone(),
            source: e,
        })?;
        let local = listener.local_addr().map_err(|e| Error::Io {
            path: addr.clone(),
            source: e,
        })?;
        // Clients (and tests binding port 0) parse this line.
        println!("listening on {local}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        server.serve_tcp(listener, wire).map_err(|e| Error::Io {
            path: local.to_string(),
            source: e,
        })
    } else if let Some(path) = flags.get("socket") {
        serve_unix_socket(&server, path, wire)
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        server.serve(&mut stdin.lock(), &mut stdout.lock(), wire)?;
        Ok(())
    }
}

#[cfg(unix)]
fn serve_unix_socket(
    server: &std::sync::Arc<trigon::serve::Server>,
    path: &str,
    wire: trigon::serve::Wire,
) -> Result<(), Error> {
    let _ = std::fs::remove_file(path); // stale socket from a previous run
    let listener = std::os::unix::net::UnixListener::bind(path).map_err(|e| Error::Io {
        path: path.to_string(),
        source: e,
    })?;
    println!("listening on {path}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let r = server
        .serve_unix(listener, path, wire)
        .map_err(|e| Error::Io {
            path: path.to_string(),
            source: e,
        });
    let _ = std::fs::remove_file(path);
    r
}

#[cfg(not(unix))]
fn serve_unix_socket(
    _server: &std::sync::Arc<trigon::serve::Server>,
    _path: &str,
    _wire: trigon::serve::Wire,
) -> Result<(), Error> {
    Err(Error::bad_config(
        "--socket needs Unix domain sockets; use --listen ADDR",
    ))
}

/// Builds the protocol request for a `trigon query` invocation.
fn build_query_request(pos: &[String], flags: &HashMap<String, String>) -> Result<Json, Error> {
    let op = pos
        .first()
        .map(String::as_str)
        .ok_or_else(|| Error::bad_config(format!("query needs an op\n{USAGE}")))?;
    let mut req = Json::object();
    match op {
        "load" => {
            let name = pos
                .get(1)
                .ok_or_else(|| Error::bad_config("query load needs a graph NAME"))?;
            req.set("op", Json::from("load"));
            req.set("name", Json::from(name.as_str()));
            if let Some(model) = flags.get("gen") {
                let n = flags
                    .get("n")
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| Error::bad_config("query load --gen needs --n N"))?;
                req.set("gen", Json::from(model.as_str()));
                req.set("n", Json::from(n));
                if let Some(seed) = flags.get("seed") {
                    let seed: u64 = seed.parse().map_err(|_| {
                        Error::bad_config(format!(
                            "--seed expects an unsigned integer, got {seed:?}"
                        ))
                    })?;
                    req.set("seed", Json::from(seed));
                }
            } else {
                let path = pos.get(2).ok_or_else(|| {
                    Error::bad_config("query load needs a FILE or --gen MODEL --n N")
                })?;
                req.set("path", Json::from(path.as_str()));
                if let Some(f) = flags.get("format") {
                    req.set("format", Json::from(f.as_str()));
                }
            }
        }
        "run" => {
            let graph = pos
                .get(1)
                .ok_or_else(|| Error::bad_config("query run needs a GRAPH name"))?;
            req.set("op", Json::from("query"));
            req.set("graph", Json::from(graph.as_str()));
            let workloads: Vec<&str> = flags
                .get("workload")
                .map_or("triangles", String::as_str)
                .split(',')
                .collect();
            let method = flags.get("method").map_or("gpu-opt", String::as_str);
            let k = match flags.get("k") {
                None => None,
                Some(s) => Some(s.parse::<u64>().map_err(|_| {
                    Error::bad_config(format!("--k expects an unsigned integer, got {s:?}"))
                })?),
            };
            let items = workloads
                .into_iter()
                .map(|w| {
                    let mut item = Json::object();
                    item.set("workload", Json::from(w));
                    item.set("method", Json::from(method));
                    if let Some(k) = k {
                        item.set("k", Json::from(k));
                    }
                    item
                })
                .collect();
            req.set("batch", Json::Array(items));
        }
        "list" => {
            req.set("op", Json::from("list"));
        }
        "evict" => {
            let name = pos
                .get(1)
                .ok_or_else(|| Error::bad_config("query evict needs a graph NAME"))?;
            req.set("op", Json::from("evict"));
            req.set("name", Json::from(name.as_str()));
        }
        "stats" => {
            req.set("op", Json::from("report"));
        }
        "shutdown" => {
            req.set("op", Json::from("shutdown"));
        }
        other => {
            return Err(Error::bad_config(format!(
                "unknown query op {other:?} (expected load|run|list|evict|stats|shutdown)"
            )));
        }
    }
    Ok(req)
}

/// One request/response exchange over the configured transport.
fn exchange(req: &Json, flags: &HashMap<String, String>) -> Result<Json, Error> {
    let wire = wire_for(flags);
    if let Some(addr) = flags.get("to") {
        let stream = std::net::TcpStream::connect(addr).map_err(|e| Error::Io {
            path: addr.clone(),
            source: e,
        })?;
        let reader = stream.try_clone().map_err(|e| Error::Io {
            path: addr.clone(),
            source: e,
        })?;
        talk(BufReader::new(reader), stream, wire, req)
    } else if let Some(path) = flags.get("socket") {
        connect_unix_socket(path, wire, req)
    } else {
        Err(Error::bad_config(
            "query needs --to HOST:PORT or --socket PATH",
        ))
    }
}

#[cfg(unix)]
fn connect_unix_socket(path: &str, wire: trigon::serve::Wire, req: &Json) -> Result<Json, Error> {
    let stream = std::os::unix::net::UnixStream::connect(path).map_err(|e| Error::Io {
        path: path.to_string(),
        source: e,
    })?;
    let reader = stream.try_clone().map_err(|e| Error::Io {
        path: path.to_string(),
        source: e,
    })?;
    talk(BufReader::new(reader), stream, wire, req)
}

#[cfg(not(unix))]
fn connect_unix_socket(
    _path: &str,
    _wire: trigon::serve::Wire,
    _req: &Json,
) -> Result<Json, Error> {
    Err(Error::bad_config(
        "--socket needs Unix domain sockets; use --to HOST:PORT",
    ))
}

fn talk<R: std::io::BufRead, W: std::io::Write>(
    mut r: R,
    mut w: W,
    wire: trigon::serve::Wire,
    req: &Json,
) -> Result<Json, Error> {
    wire.write_msg(&mut w, req)?;
    wire.read_msg(&mut r)?
        .ok_or_else(|| Error::Parse("server closed the connection without a response".into()))
}

fn json_str(j: &Json) -> Option<&str> {
    match j {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn json_u64(j: &Json) -> Option<u64> {
    match j {
        Json::UInt(u) => Some(*u),
        Json::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// Renders a successful query response in the CLI's flat style.
fn print_query_response(op: &str, resp: &Json) {
    match op {
        "load" => {
            let name = resp.get("name").and_then(json_str).unwrap_or("?");
            let n = resp.get("n").and_then(json_u64).unwrap_or(0);
            let m = resp.get("m").and_then(json_u64).unwrap_or(0);
            let src = resp.get("source").and_then(json_str).unwrap_or("?");
            println!("loaded {name} (n = {n}, m = {m}) from {src}");
        }
        "run" => {
            if let Some(Json::Array(reports)) = resp.get("reports") {
                for r in reports {
                    let result = r.get("result");
                    let kind = result
                        .and_then(|r| r.get("kind"))
                        .and_then(json_str)
                        .unwrap_or("count");
                    let count = result
                        .and_then(|r| r.get("count"))
                        .and_then(json_u64)
                        .unwrap_or(0);
                    let s = r.get("serving");
                    let cache = s
                        .and_then(|s| s.get("cache"))
                        .and_then(json_str)
                        .unwrap_or("?");
                    let verdict = s
                        .and_then(|s| s.get("verdict"))
                        .and_then(json_str)
                        .unwrap_or("?");
                    let target = s
                        .and_then(|s| s.get("target"))
                        .and_then(json_str)
                        .unwrap_or("?");
                    println!("{kind:<14}{count}  [{verdict} -> {target}, cache {cache}]");
                }
            }
        }
        "list" => {
            if let Some(Json::Array(graphs)) = resp.get("graphs") {
                if graphs.is_empty() {
                    println!("no graphs loaded");
                }
                for g in graphs {
                    println!(
                        "{:<16} n = {:<10} m = {:<12} artifacts = {} results = {}  {}",
                        g.get("name").and_then(json_str).unwrap_or("?"),
                        g.get("n").and_then(json_u64).unwrap_or(0),
                        g.get("m").and_then(json_u64).unwrap_or(0),
                        g.get("artifacts").and_then(json_u64).unwrap_or(0),
                        g.get("results").and_then(json_u64).unwrap_or(0),
                        g.get("source").and_then(json_str).unwrap_or(""),
                    );
                }
            }
        }
        "evict" => {
            println!(
                "evicted {}",
                resp.get("evicted").and_then(json_str).unwrap_or("?")
            );
        }
        "stats" => {
            if let Some(Json::Object(pairs)) = resp.get("stats") {
                for (k, v) in pairs {
                    println!("{k:<18}{}", v.to_string_compact());
                }
            }
        }
        "shutdown" => println!("server stopped"),
        _ => println!("{}", resp.to_string_pretty()),
    }
}

/// `trigon query` — one-shot client for a running `trigon serve`.
fn cmd_query(args: &[String]) -> Result<(), Error> {
    let (pos, flags) = parse(args)?;
    let req = build_query_request(&pos, &flags)?;
    let resp = exchange(&req, &flags)?;
    let ok = resp.get("ok") == Some(&Json::Bool(true));
    if flags.contains_key("json") {
        println!("{}", resp.to_string_pretty());
    } else if ok {
        print_query_response(&pos[0], &resp);
    }
    if !ok {
        let code = resp.get("code").and_then(json_u64).unwrap_or(1);
        if !flags.contains_key("json") {
            eprintln!(
                "{}",
                resp.get("error")
                    .and_then(json_str)
                    .unwrap_or("server error")
            );
        }
        std::process::exit(i32::try_from(code).unwrap_or(1));
    }
    Ok(())
}

fn cmd_camping() -> Result<(), Error> {
    let spec = DeviceSpec::c1060();
    println!("Fig 6 — partition camping: 30 active warps all hitting partition 1\n");
    let mut camped = PartitionTraffic::new(&spec);
    for _ in 0..30 {
        camped.record(256);
    }
    print!("{}", render_partition_histogram(&camped, 40));
    println!("\nFig 7 — avoided: warps mapped Partition(i % p) <= W_i (Eq. 11)\n");
    let mut spread = PartitionTraffic::new(&spec);
    for w in 0..30u64 {
        spread.record((w % 8) * 256);
    }
    print!("{}", render_partition_histogram(&spread, 40));
    Ok(())
}
