//! `trigon` — command-line front end for the workspace.
//!
//! ```text
//! trigon devices
//! trigon gen <model> --n N [--seed S] [-o FILE]         models: gnp, ba, ws, ring, rmat, complete, grid
//! trigon analyze <FILE>
//! trigon count [<FILE>] [--gen MODEL --n N] [--method cpu|cpu-fast|gpu-naive|gpu-opt|gpu-sampled|doulion]
//!              [--device c1060|c2050|c2070] [--p PROB]
//! trigon split <FILE> [--device c1060|c2050|c2070]
//! trigon kcount <FILE> --k K [--what cliques|connected|independent]
//! trigon camping
//! ```

use std::collections::HashMap;
use std::io::BufReader;
use trigon::core::gpu_exec::GpuConfig;
use trigon::core::pipeline::{count_triangles, CountMethod};
use trigon::core::split::{split_graph, SplitConfig};
use trigon::gpu_sim::{render_partition_histogram, DeviceSpec, PartitionTraffic};
use trigon::graph::{approx, cores, gen, io, triangles, BfsTree, Graph};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("devices") => cmd_devices(),
        Some("gen") => cmd_gen(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("count") => cmd_count(&args[1..]),
        Some("split") => cmd_split(&args[1..]),
        Some("hybrid") => cmd_hybrid(&args[1..]),
        Some("kcount") => cmd_kcount(&args[1..]),
        Some("camping") => cmd_camping(),
        _ => {
            eprintln!("{}", USAGE);
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "usage:
  trigon devices
  trigon gen <gnp|ba|ws|ring|rmat|complete|grid> --n N [--seed S] [-o FILE]
  trigon analyze <FILE>
  trigon count [<FILE>] [--gen MODEL --n N] [--method cpu|cpu-fast|gpu-naive|gpu-opt|gpu-sampled|doulion] [--device c1060|c2050|c2070] [--p PROB]
  trigon split <FILE> [--device c1060|c2050|c2070]
  trigon hybrid [<FILE>] [--gen MODEL --n N] [--device c1060|c2050|c2070]
  trigon kcount <FILE> --k K [--what cliques|connected|independent]
  trigon camping";

/// Parses `--flag value` pairs plus positional arguments.
fn parse(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
            let val = it.next().cloned().unwrap_or_default();
            flags.insert(name.to_string(), val);
        } else {
            pos.push(a.clone());
        }
    }
    (pos, flags)
}

fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_ascii_lowercase().as_str() {
        "c1060" => Some(DeviceSpec::c1060()),
        "c2050" => Some(DeviceSpec::c2050()),
        "c2070" => Some(DeviceSpec::c2070()),
        _ => None,
    }
}

fn generate(model: &str, n: u32, seed: u64) -> Option<Graph> {
    Some(match model {
        "gnp" => gen::gnp(n, 16.0 / f64::from(n).max(1.0), seed),
        "ba" => gen::barabasi_albert(n, 8.min(n.saturating_sub(1)).max(1), seed),
        "ws" => gen::watts_strogatz(n, 8.min(n.saturating_sub(2) / 2 * 2).max(2), 0.1, seed),
        "ring" => gen::community_ring(n, 250.min(n.max(2)), 0.3, 4, seed),
        "rmat" => gen::rmat_social(n.next_power_of_two(), 8 * n as usize, seed),
        "complete" => gen::complete(n),
        "grid" => {
            let side = (f64::from(n).sqrt() as u32).max(1);
            gen::grid2d(side, side)
        }
        _ => return None,
    })
}

fn load_or_gen(pos: &[String], flags: &HashMap<String, String>) -> Result<Graph, String> {
    if let Some(model) = flags.get("gen") {
        let n: u32 = flags
            .get("n")
            .and_then(|s| s.parse().ok())
            .ok_or("--gen needs --n N")?;
        let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
        return generate(model, n, seed).ok_or_else(|| format!("unknown model {model:?}"));
    }
    let path = pos.first().ok_or("need a FILE or --gen MODEL --n N")?;
    let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let (g, _) = io::read_edge_list(BufReader::new(f)).map_err(|e| e.to_string())?;
    Ok(g)
}

fn cmd_devices() -> i32 {
    println!(
        "{:<8} {:>6} {:>11} {:>11} {:>6} {:>5} {:>6} {:>11} {:>11}",
        "Model", "Cores", "Global(GB)", "Shared(KB)", "Banks", "CC", "SMs", "MaxN(adj)", "MaxN(sutm)"
    );
    for d in DeviceSpec::table1() {
        println!(
            "{:<8} {:>6} {:>11} {:>11} {:>6} {:>5} {:>6} {:>11} {:>11}",
            d.name,
            d.cores,
            d.global_mem_bytes / (1 << 30),
            d.shared_mem_bytes / 1024,
            d.shared_banks,
            d.compute_capability,
            d.sm_count,
            trigon::core::max_graph_adjacency(d.global_mem_bits()),
            trigon::core::max_graph_sutm(d.global_mem_bits()),
        );
    }
    0
}

fn cmd_gen(args: &[String]) -> i32 {
    let (pos, flags) = parse(args);
    let Some(model) = pos.first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let Some(n) = flags.get("n").and_then(|s| s.parse().ok()) else {
        eprintln!("gen: --n N is required");
        return 2;
    };
    let seed = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let Some(g) = generate(model, n, seed) else {
        eprintln!("unknown model {model:?}");
        return 2;
    };
    match flags.get("o") {
        Some(path) => {
            let f = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("create {path}: {e}");
                    return 1;
                }
            };
            if let Err(e) = io::write_edge_list(&g, std::io::BufWriter::new(f)) {
                eprintln!("write: {e}");
                return 1;
            }
            println!("wrote {} (n = {}, m = {})", path, g.n(), g.m());
        }
        None => {
            if let Err(e) = io::write_edge_list(&g, std::io::stdout().lock()) {
                eprintln!("write: {e}");
                return 1;
            }
        }
    }
    0
}

fn cmd_analyze(args: &[String]) -> i32 {
    let (pos, flags) = parse(args);
    let g = match load_or_gen(&pos, &flags) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    println!("vertices            {}", g.n());
    println!("edges               {}", g.m());
    println!("density             {:.6}", g.density());
    println!("max degree          {}", g.max_degree());
    let comps = trigon::graph::connected_components(&g);
    println!("components          {}", comps.len());
    if let Some(largest) = comps.iter().map(Vec::len).max() {
        println!("largest component   {largest}");
    }
    if g.n() > 0 {
        let t = BfsTree::new(&g, comps[0][0]);
        println!("BFS depth (root {}) {}", t.root(), t.depth());
        let widest = t.levels().iter().map(Vec::len).max().unwrap_or(0);
        println!("widest BFS level    {widest}");
    }
    let d = cores::core_decomposition(&g);
    println!("degeneracy          {}", d.degeneracy);
    let tri = triangles::count_edge_iterator(&g);
    println!("triangles           {tri}");
    println!("transitivity        {:.4}", triangles::transitivity(&g));
    let cc = triangles::clustering_coefficients(&g);
    let mean_cc = if cc.is_empty() { 0.0 } else { cc.iter().sum::<f64>() / cc.len() as f64 };
    println!("mean clustering     {mean_cc:.4}");
    0
}

fn cmd_count(args: &[String]) -> i32 {
    let (pos, flags) = parse(args);
    let g = match load_or_gen(&pos, &flags) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let device = match flags.get("device") {
        Some(name) => match device_by_name(name) {
            Some(d) => d,
            None => {
                eprintln!("unknown device {name:?}");
                return 2;
            }
        },
        None => DeviceSpec::c1060(),
    };
    let method = flags.get("method").map_or("gpu-opt", String::as_str);
    if method == "doulion" {
        let p: f64 = flags.get("p").and_then(|s| s.parse().ok()).unwrap_or(0.5);
        let est = approx::doulion(&g, p, 42);
        println!(
            "DOULION estimate {:.0} (kept {} of {} edges at p = {})",
            est.estimate,
            est.kept_edges,
            g.m(),
            est.p
        );
        return 0;
    }
    let m = match method {
        "cpu" => CountMethod::CpuExhaustive,
        "cpu-fast" => CountMethod::CpuFast,
        "gpu-naive" => CountMethod::GpuSim(GpuConfig::naive(device)),
        "gpu-opt" => CountMethod::GpuSim(GpuConfig::optimized(device)),
        "gpu-sampled" => CountMethod::GpuSim(GpuConfig::optimized(device).sampled()),
        other => {
            eprintln!("unknown method {other:?}");
            return 2;
        }
    };
    match count_triangles(&g, m) {
        Ok(r) => {
            println!("triangles   {}", r.triangles);
            println!("tests       {}", r.tests);
            println!("modeled     {:.4} s", r.modeled_s);
            println!("wall        {:.4} s", r.wall_s);
            if let Some(gpu) = r.gpu {
                println!("kernel      {:.4} s", gpu.kernel_s);
                println!("transfer    {:.6} s", gpu.transfer_s);
                println!("blocks      {}", gpu.blocks);
                println!("transactions {}", gpu.transactions);
                println!("camping     {:.3}", gpu.camping_factor);
                println!("layout      {} bytes", gpu.layout_bytes);
            }
            0
        }
        Err(e) => {
            eprintln!("count failed: {e}");
            1
        }
    }
}

fn cmd_split(args: &[String]) -> i32 {
    let (pos, flags) = parse(args);
    let g = match load_or_gen(&pos, &flags) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let device = flags
        .get("device")
        .and_then(|n| device_by_name(n))
        .unwrap_or_else(DeviceSpec::c1060);
    let cfg = SplitConfig::for_device(&device);
    let r = split_graph(&g, &cfg);
    println!(
        "{} chunks on {} ({} shared, {} global), {} roots tried",
        r.chunks.len(),
        device.name,
        r.shared_count(),
        r.global_count(),
        r.roots_tried
    );
    for c in &r.chunks {
        println!(
            "  comp {:>3} levels {:>3}..{:<3} nodes {:>6} bits {:>10} {}",
            c.component,
            c.levels.0,
            c.levels.1,
            c.nodes.len(),
            c.size_bits,
            if c.fits_shared { "shared" } else { "GLOBAL" }
        );
    }
    0
}

fn cmd_hybrid(args: &[String]) -> i32 {
    use trigon::core::hybrid::{run_hybrid, HybridConfig};
    let (pos, flags) = parse(args);
    let g = match load_or_gen(&pos, &flags) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let device = flags
        .get("device")
        .and_then(|n| device_by_name(n))
        .unwrap_or_else(DeviceSpec::c1060);
    let name = device.name;
    let r = run_hybrid(&g, &HybridConfig::new(device));
    println!("device            {name}");
    println!("triangles         {}", r.triangles);
    println!("tests             {}", r.tests);
    println!(
        "chunks            {} ({} shared, {} global)",
        r.split.chunks.len(),
        r.split.shared_count(),
        r.split.global_count()
    );
    println!("ALS placement     {} shared / {} global", r.shared_als, r.global_als);
    println!("kernel (LPT)      {:.4} s", r.kernel_s);
    println!("kernel (Eq. 6)    {:.4} s", r.eq6_s);
    println!("total             {:.4} s", r.total_s);
    0
}

fn cmd_kcount(args: &[String]) -> i32 {
    let (pos, flags) = parse(args);
    let g = match load_or_gen(&pos, &flags) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let Some(k) = flags.get("k").and_then(|s| s.parse().ok()) else {
        eprintln!("kcount: --k K is required");
        return 2;
    };
    let what = flags.get("what").map_or("cliques", String::as_str);
    use trigon::core::kcount;
    let count = match what {
        "cliques" => kcount::count_k_cliques(&g, k),
        "connected" => kcount::count_connected_subgraphs(&g, k),
        "independent" => kcount::count_k_independent_sets(&g, k),
        other => {
            eprintln!("unknown subgraph kind {other:?}");
            return 2;
        }
    };
    println!("{what} of size {k}: {count}");
    0
}

fn cmd_camping() -> i32 {
    let spec = DeviceSpec::c1060();
    println!("Fig 6 — partition camping: 30 active warps all hitting partition 1\n");
    let mut camped = PartitionTraffic::new(&spec);
    for _ in 0..30 {
        camped.record(256);
    }
    print!("{}", render_partition_histogram(&camped, 40));
    println!("\nFig 7 — avoided: warps mapped Partition(i % p) <= W_i (Eq. 11)\n");
    let mut spread = PartitionTraffic::new(&spec);
    for w in 0..30u64 {
        spread.record((w % 8) * 256);
    }
    print!("{}", render_partition_histogram(&spread, 40));
    0
}
