//! # trigon — facade crate
//!
//! Re-exports the whole `trigon` workspace behind one dependency, and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! `trigon` is a from-scratch Rust reproduction of *On Analyzing Large
//! Graphs Using GPUs* (Chatterjee, Radhakrishnan, Antonio — IPDPSW 2013):
//! triangle counting and related combinatorial counting on graphs whose
//! adjacency data lives in GPU **global memory**, with the paper's memory
//! coalescing and partition-camping-avoidance primitives reproduced on a
//! deterministic GPU memory-hierarchy simulator.
//!
//! Start with the [`Analysis`] builder for the end-to-end API, or run
//! `cargo run --example quickstart`:
//!
//! ```
//! use trigon::{Analysis, Method};
//!
//! let g = trigon::graph::gen::gnp(200, 0.05, 1);
//! let report = Analysis::new(&g).method(Method::GpuOptimized).run().unwrap();
//! println!("{}", report.to_json().to_string_pretty());
//! ```

pub use trigon_combin as combin;
pub use trigon_core as core;
pub use trigon_fleet as fleet;
pub use trigon_gpu_sim as gpu_sim;
pub use trigon_graph as graph;
pub use trigon_sched as sched;
pub use trigon_serve as serve;

pub use trigon_core::{
    Analysis, ChunkKernel, Clock, ClusterSection, ClusterSpec, Collector, CounterSet, Error,
    FleetSpec, Json, Level, LossPlan, ManualClock, Method, MonotonicClock, PartitionStrategy,
    ProfileData, ProfileSection, Run, RunReport, TraceSummary, Tracer, Track, Workload,
    WorkloadSection, RUN_REPORT_SCHEMA_VERSION,
};
