//! The simulated cluster tier: node rosters and the node-level
//! partitioner above the fleet layer.
//!
//! A [`ClusterSpec`] is a roster of *nodes*, each node a [`FleetSpec`]
//! of devices behind one PCIe root — `"4x(2xC2050)"` is four nodes of
//! two C2050s. Work is placed across nodes by [`plan_cluster`], the
//! top level of the three-level §VI scheduling stack (partitioner
//! across nodes → LPT across a node's devices → per-SM schedule), which
//! chooses between the two classic distributed layouts:
//!
//! * **1D by component** — whole components go to one node each (LPT of
//!   component aggregate weights against node speeds). Zero ghost
//!   vertices, but a skewed component distribution leaves nodes idle.
//! * **2D by edge block** — the ALS job list splits into contiguous
//!   blocks proportional to node speed. Balanced by construction, but
//!   every component cut at a block boundary *materializes its shared
//!   BFS level on the downstream node* as ghost/surrogate vertices,
//!   paid for over the inter-node tier.
//!
//! [`PartitionStrategy::Auto`] picks the layout with the lower
//! *predicted* communication-volume cost (contended partition upload +
//! ghost exchanges + compute, maxed over nodes) — the decision rule of
//! the distributed triangle-counting literature (Sanders/Uhl,
//! arXiv:2302.11443; Tom/Karypis, arXiv:1907.09575). Both layouts
//! partition the ALS list, so by the ALS exactness theorem either one
//! reproduces the serial count bit-identically; the choice moves only
//! simulated time.

use crate::{device_speed, FleetSpec, Interconnect};
use std::fmt;

/// A parsed multi-node roster, e.g. `"4x(2xC2050)"` or
/// `"2x(2xC2050,1xC1060),1xC1060"`.
///
/// Each comma-separated entry at paren depth zero is either
/// `[<count>x](<fleet-spec>)` — `count` nodes with that device roster —
/// or a bare `[<count>x]<model>` — `count` single-device nodes.
/// Expansion order is the spec's textual order, which fixes the
/// canonical node indices used everywhere downstream.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    nodes: Vec<FleetSpec>,
}

impl ClusterSpec {
    /// Largest roster a spec may expand to — the scaling sweep's ceiling.
    pub const MAX_NODES: usize = 64;

    /// Parses a cluster roster.
    ///
    /// # Errors
    ///
    /// A human-readable message for empty specs, unbalanced parentheses,
    /// bad counts, unknown device models, or rosters larger than
    /// [`Self::MAX_NODES`].
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut nodes = Vec::new();
        for raw in split_top_level(s)? {
            let entry = raw.trim();
            if entry.is_empty() {
                return Err(format!("empty node entry in cluster spec {s:?}"));
            }
            let (count, rest) = match entry.split_once(['x', 'X']) {
                Some((n, rest)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                    let count: usize = n
                        .parse()
                        .map_err(|_| format!("bad node count {n:?} in {entry:?}"))?;
                    (count, rest.trim())
                }
                _ => (1, entry),
            };
            if count == 0 {
                return Err(format!("node count must be >= 1 in {entry:?}"));
            }
            let fleet_src = match rest.strip_prefix('(') {
                Some(inner) => inner
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unbalanced parentheses in {entry:?}"))?,
                None if rest.contains(['(', ')']) => {
                    return Err(format!("misplaced parenthesis in {entry:?}"));
                }
                None => rest,
            };
            let fleet = FleetSpec::parse(fleet_src)
                .map_err(|e| format!("node roster {fleet_src:?}: {e}"))?;
            for _ in 0..count {
                nodes.push(fleet.clone());
            }
            if nodes.len() > Self::MAX_NODES {
                return Err(format!(
                    "cluster spec {s:?} expands to more than {} nodes",
                    Self::MAX_NODES
                ));
            }
        }
        if nodes.is_empty() {
            return Err("cluster spec names no nodes".into());
        }
        Ok(Self { nodes })
    }

    /// A roster of `count` identical nodes.
    ///
    /// # Errors
    ///
    /// When `count` is zero or exceeds [`Self::MAX_NODES`].
    pub fn homogeneous(node: FleetSpec, count: usize) -> Result<Self, String> {
        if count == 0 || count > Self::MAX_NODES {
            return Err(format!(
                "cluster size must be 1..={}, got {count}",
                Self::MAX_NODES
            ));
        }
        Ok(Self {
            nodes: vec![node; count],
        })
    }

    /// The expanded node rosters, in canonical node-index order.
    #[must_use]
    pub fn nodes(&self) -> &[FleetSpec] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the roster is empty (never true for a parsed spec).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total devices across every node.
    #[must_use]
    pub fn total_devices(&self) -> usize {
        self.nodes.iter().map(FleetSpec::len).sum()
    }

    /// Nominal per-node processing speed: the sum of each device's §VI
    /// speed (`sm_count × clock_hz`). Used only relatively.
    #[must_use]
    pub fn node_speeds(&self) -> Vec<u128> {
        self.nodes
            .iter()
            .map(|f| f.devices().iter().map(device_speed).sum())
            .collect()
    }
}

impl fmt::Display for ClusterSpec {
    /// Canonical form: consecutive runs of identical node rosters
    /// collapse to `<count>x(<fleet>)` (`"4x(2xC2050)"`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let reprs: Vec<String> = self.nodes.iter().map(FleetSpec::to_string).collect();
        let mut first = true;
        let mut i = 0;
        while i < reprs.len() {
            let mut j = i + 1;
            while j < reprs.len() && reprs[j] == reprs[i] {
                j += 1;
            }
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}x({})", j - i, reprs[i])?;
            first = false;
            i = j;
        }
        Ok(())
    }
}

/// Splits `s` on commas at parenthesis depth zero.
fn split_top_level(s: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| format!("unbalanced ')' in cluster spec {s:?}"))?;
            }
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(format!("unbalanced '(' in cluster spec {s:?}"));
    }
    parts.push(&s[start..]);
    Ok(parts)
}

/// One abstract cluster job: an ALS reduced to its §VI weight, its byte
/// footprint, its component, and the ghost-vertex cost owed *iff* the
/// partitioner separates it from its same-component predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterJob {
    /// §VI job size (for ALS jobs: the S-UTM bit footprint).
    pub weight: u64,
    /// Approximate bytes of device global memory the job occupies.
    pub bytes: u64,
    /// Connected component the job's ALS belongs to.
    pub component: u32,
    /// Vertices of the BFS level shared with the predecessor ALS —
    /// materialized as ghosts on this job's node when the predecessor
    /// lands elsewhere. Zero for a component's first ALS.
    pub ghost_vertices: u64,
    /// S-UTM bytes of that shared level's adjacency (the ghost payload).
    pub ghost_bytes: u64,
}

/// How work is laid out across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Predict both layouts' communication-volume cost and pick the
    /// cheaper (ties go to 1D, which moves no ghosts).
    #[default]
    Auto,
    /// 1D by component: whole components placed by LPT. No ghosts.
    OneD,
    /// 2D by edge block: contiguous speed-proportional blocks of the
    /// ALS list, ghost vertices at every cut component boundary.
    TwoD,
}

impl PartitionStrategy {
    /// Parses a CLI strategy name (`auto`, `1d`, `2d`).
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(Self::Auto),
            "1d" | "component" => Ok(Self::OneD),
            "2d" | "edge-block" => Ok(Self::TwoD),
            other => Err(format!(
                "unknown partition strategy {other:?} (auto, 1d, 2d)"
            )),
        }
    }

    /// The canonical CLI name.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::OneD => "1d",
            Self::TwoD => "2d",
        }
    }
}

/// A computed node assignment for a cluster job list.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// `assignment[j]` = node index of job `j`.
    pub assignment: Vec<usize>,
    /// Summed job weight per node.
    pub loads: Vec<u64>,
    /// Summed job bytes per node.
    pub bytes: Vec<u64>,
    /// The layout actually used ([`PartitionStrategy::OneD`] or
    /// [`PartitionStrategy::TwoD`], never `Auto`).
    pub strategy: PartitionStrategy,
    /// Whether the cost model made the choice (the request was `Auto`).
    pub auto: bool,
    /// Predicted cost of the 1D layout, in cycles.
    pub predicted_one_d_cycles: u64,
    /// Predicted cost of the 2D layout, in cycles.
    pub predicted_two_d_cycles: u64,
}

/// Plans cluster jobs across nodes under `strategy`.
///
/// `speeds` are the per-node §VI speeds ([`ClusterSpec::node_speeds`]);
/// `clock_hz` is the clock the cost model prices cycles on (relative
/// comparisons only, so any representative device clock works). The
/// plan is a pure function of its inputs — no floating point enters the
/// placement decisions, and the cost comparison is exact integer
/// arithmetic over [`predict_cost`] values.
///
/// # Panics
///
/// Panics when `speeds` is empty or contains a zero speed.
#[must_use]
pub fn plan_cluster(
    jobs: &[ClusterJob],
    speeds: &[u128],
    net: &Interconnect,
    clock_hz: u64,
    strategy: PartitionStrategy,
) -> ClusterPlan {
    assert!(!speeds.is_empty(), "cannot plan over an empty cluster");
    assert!(speeds.iter().all(|&s| s > 0), "node speeds must be > 0");
    let one_d = assign_one_d(jobs, speeds);
    let two_d = assign_two_d(jobs, speeds);
    let cost_1d = predict_cost(jobs, &one_d, speeds, net, clock_hz);
    let cost_2d = predict_cost(jobs, &two_d, speeds, net, clock_hz);
    let (assignment, resolved, auto) = match strategy {
        PartitionStrategy::OneD => (one_d, PartitionStrategy::OneD, false),
        PartitionStrategy::TwoD => (two_d, PartitionStrategy::TwoD, false),
        // Ties go to 1D: equal predicted cost with no ghosts beats
        // equal predicted cost with ghosts.
        PartitionStrategy::Auto if cost_2d < cost_1d => (two_d, PartitionStrategy::TwoD, true),
        PartitionStrategy::Auto => (one_d, PartitionStrategy::OneD, true),
    };
    let mut loads = vec![0u64; speeds.len()];
    let mut bytes = vec![0u64; speeds.len()];
    for (j, &node) in assignment.iter().enumerate() {
        loads[node] += jobs[j].weight;
        bytes[node] = bytes[node].saturating_add(jobs[j].bytes);
    }
    ClusterPlan {
        assignment,
        loads,
        bytes,
        strategy: resolved,
        auto,
        predicted_one_d_cycles: cost_1d,
        predicted_two_d_cycles: cost_2d,
    }
}

/// 1D by component: LPT of component aggregate weights across nodes,
/// with the exact cross-multiplied finish-time comparison of
/// [`crate::plan_shards`]. Every job of a component shares its node.
fn assign_one_d(jobs: &[ClusterJob], speeds: &[u128]) -> Vec<usize> {
    // Component ids in first-appearance order, with aggregate weights.
    let mut comp_ids: Vec<u32> = Vec::new();
    let mut comp_weight: Vec<u64> = Vec::new();
    for job in jobs {
        match comp_ids.iter().position(|&c| c == job.component) {
            Some(i) => comp_weight[i] += job.weight,
            None => {
                comp_ids.push(job.component);
                comp_weight.push(job.weight);
            }
        }
    }
    let mut order: Vec<usize> = (0..comp_ids.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(comp_weight[i]), i));
    let mut loads = vec![0u64; speeds.len()];
    let mut comp_node = vec![0usize; comp_ids.len()];
    for &i in &order {
        let mut best = 0usize;
        for d in 1..speeds.len() {
            // finish_d < finish_b ⟺ (load_d + w)·speed_b < (load_b + w)·speed_d
            let fd = u128::from(loads[d] + comp_weight[i]) * speeds[best];
            let fb = u128::from(loads[best] + comp_weight[i]) * speeds[d];
            if fd < fb {
                best = d;
            }
        }
        comp_node[i] = best;
        loads[best] += comp_weight[i];
    }
    jobs.iter()
        .map(|job| {
            let i = comp_ids
                .iter()
                .position(|&c| c == job.component)
                .expect("every job's component was registered");
            comp_node[i]
        })
        .collect()
}

/// 2D by edge block: the job list splits into contiguous blocks whose
/// weights track each node's share of the total speed. Each job goes to
/// the node whose speed-proportional band contains the *midpoint* of the
/// job's weight interval (exact integer comparison), so a single heavy
/// job lands where its bulk falls rather than sticking to the node its
/// left edge touched. Block boundaries that cut a component materialize
/// ghosts downstream.
fn assign_two_d(jobs: &[ClusterJob], speeds: &[u128]) -> Vec<usize> {
    let total_weight: u128 = jobs.iter().map(|j| u128::from(j.weight)).sum();
    let total_speed: u128 = speeds.iter().sum();
    let mut assignment = vec![0usize; jobs.len()];
    let mut node = 0usize;
    let mut speed_prefix: u128 = speeds[0];
    let mut weight_prefix: u128 = 0;
    for (j, job) in jobs.iter().enumerate() {
        // midpoint ≥ band end ⟺ (2·prefix + w)·S ≥ 2·W·speed_prefix
        let mid2 = 2 * weight_prefix + u128::from(job.weight);
        while node + 1 < speeds.len()
            && total_weight > 0
            && mid2 * total_speed >= 2 * total_weight * speed_prefix
        {
            node += 1;
            speed_prefix += speeds[node];
        }
        assignment[j] = node;
        weight_prefix += u128::from(job.weight);
    }
    assignment
}

/// Predicted communication-volume cost of an assignment, in cycles: the
/// max over nodes of contended partition upload + incoming ghost
/// exchanges + compute (`weight·clock/speed`). The makespan surrogate
/// [`PartitionStrategy::Auto`] minimizes.
#[must_use]
pub fn predict_cost(
    jobs: &[ClusterJob],
    assignment: &[usize],
    speeds: &[u128],
    net: &Interconnect,
    clock_hz: u64,
) -> u64 {
    let n = speeds.len();
    let mut bytes = vec![0u64; n];
    let mut weight = vec![0u64; n];
    let mut ghost = vec![0u64; n];
    for (j, job) in jobs.iter().enumerate() {
        let d = assignment[j];
        bytes[d] = bytes[d].saturating_add(job.bytes);
        weight[d] += job.weight;
        if j > 0 && jobs[j - 1].component == job.component && assignment[j - 1] != d {
            ghost[d] += net.ghost_cycles(job.ghost_bytes, clock_hz);
        }
    }
    let links = (0..n).filter(|&d| weight[d] > 0).count().max(1);
    (0..n)
        .map(|d| {
            if weight[d] == 0 {
                return 0;
            }
            let upload = net.uplink_cycles(bytes[d], links, clock_hz);
            let compute = u64::try_from(
                u128::from(weight[d]).saturating_mul(u128::from(clock_hz)) / speeds[d],
            )
            .unwrap_or(u64::MAX);
            upload.saturating_add(ghost[d]).saturating_add(compute)
        })
        .max()
        .unwrap_or(0)
}

/// Migrates every job owned by a lost node onto the survivors with the
/// online Graham step — each orphan (in job order) goes to the currently
/// least-loaded survivor, the same policy [`crate::reassign_lost`] uses
/// one level down for lost devices. Returns the number of jobs moved.
///
/// # Panics
///
/// Panics when `lost` covers the whole cluster (callers must keep at
/// least one survivor, which [`crate::LossPlan::targets`] guarantees).
pub fn reassign_lost_nodes(plan: &mut ClusterPlan, jobs: &[ClusterJob], lost: &[usize]) -> usize {
    let mut alive = vec![true; plan.loads.len()];
    for &d in lost {
        alive[d] = false;
        plan.loads[d] = 0;
        plan.bytes[d] = 0;
    }
    assert!(
        alive.iter().any(|&a| a),
        "node loss must leave at least one survivor"
    );
    let mut moved = 0;
    for j in 0..plan.assignment.len() {
        if alive[plan.assignment[j]] {
            continue;
        }
        let t = trigon_sched::least_loaded_alive(&plan.loads, &alive)
            .expect("at least one survivor is alive");
        plan.assignment[j] = t;
        plan.loads[t] += jobs[j].weight;
        plan.bytes[t] = plan.bytes[t].saturating_add(jobs[j].bytes);
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LossPlan;

    fn job(weight: u64, component: u32, ghost_bytes: u64) -> ClusterJob {
        ClusterJob {
            weight,
            bytes: weight / 8 + 1,
            component,
            ghost_vertices: ghost_bytes / 4,
            ghost_bytes,
        }
    }

    #[test]
    fn spec_parses_nodes_and_rosters() {
        let c = ClusterSpec::parse("4x(2xC2050)").unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_devices(), 8);
        assert_eq!(c.nodes()[0].len(), 2);
        assert_eq!(c.to_string(), "4x(2xC2050)");

        let c = ClusterSpec::parse("2x(2xC2050,1xC1060),1xC1060").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_devices(), 7);
        assert_eq!(c.to_string(), "2x(2xC2050,1xC1060),1x(1xC1060)");
    }

    #[test]
    fn spec_accepts_bare_models_and_counts() {
        let c = ClusterSpec::parse("c2070").unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.nodes()[0].devices()[0].name, "C2070");
        let c = ClusterSpec::parse("64xC2050").unwrap();
        assert_eq!(c.len(), 64);
        assert_eq!(c.total_devices(), 64);
        let c = ClusterSpec::parse("3X(c1060)").unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn spec_rejects_garbage() {
        for bad in [
            "",
            " ,",
            "0x(C2050)",
            "65xC2050",
            "4x(2xC2050",
            "4x2xC2050)",
            "4x(9xC2050)",
            "2xGTX480",
            "(C2050),,(C1060)",
            "4x((C2050))",
        ] {
            assert!(ClusterSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [
            "1x(1xC1060)",
            "4x(2xC2050)",
            "64x(1xC2050)",
            "2x(2xC2050,1xC1060),1x(1xC1060)",
        ] {
            let c = ClusterSpec::parse(s).unwrap();
            assert_eq!(c.to_string(), s);
            let d = ClusterSpec::parse(&c.to_string()).unwrap();
            assert_eq!(d.len(), c.len());
            assert_eq!(d.total_devices(), c.total_devices());
        }
    }

    #[test]
    fn strategy_parses_and_labels() {
        assert_eq!(
            PartitionStrategy::parse("auto").unwrap(),
            PartitionStrategy::Auto
        );
        assert_eq!(
            PartitionStrategy::parse("1D").unwrap(),
            PartitionStrategy::OneD
        );
        assert_eq!(
            PartitionStrategy::parse("2d").unwrap(),
            PartitionStrategy::TwoD
        );
        assert!(PartitionStrategy::parse("3d").is_err());
        for s in [
            PartitionStrategy::Auto,
            PartitionStrategy::OneD,
            PartitionStrategy::TwoD,
        ] {
            assert_eq!(PartitionStrategy::parse(s.label()).unwrap(), s);
        }
    }

    fn homogeneous_speeds(n: usize) -> Vec<u128> {
        vec![14 * 1_150_000_000u128; n]
    }

    #[test]
    fn one_d_keeps_components_whole() {
        let jobs: Vec<ClusterJob> = (0..24).map(|i| job(100 + i, (i % 6) as u32, 64)).collect();
        let speeds = homogeneous_speeds(3);
        let plan = plan_cluster(
            &jobs,
            &speeds,
            &Interconnect::cluster_default(),
            1_150_000_000,
            PartitionStrategy::OneD,
        );
        for (j, job) in jobs.iter().enumerate() {
            for (k, other) in jobs.iter().enumerate() {
                if job.component == other.component {
                    assert_eq!(plan.assignment[j], plan.assignment[k]);
                }
            }
        }
        assert_eq!(plan.strategy, PartitionStrategy::OneD);
        assert!(!plan.auto);
    }

    #[test]
    fn two_d_blocks_are_contiguous_and_cover_all_nodes() {
        let jobs: Vec<ClusterJob> = (0..64).map(|_| job(100, 0, 64)).collect();
        let speeds = homogeneous_speeds(4);
        let plan = plan_cluster(
            &jobs,
            &speeds,
            &Interconnect::cluster_default(),
            1_150_000_000,
            PartitionStrategy::TwoD,
        );
        // Monotone non-decreasing assignment = contiguous blocks.
        for w in plan.assignment.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for d in 0..4 {
            assert!(plan.assignment.contains(&d), "node {d} got no work");
        }
        let max = *plan.loads.iter().max().unwrap();
        let min = *plan.loads.iter().min().unwrap();
        assert!(max - min <= 100, "blocks should balance: {:?}", plan.loads);
    }

    #[test]
    fn auto_picks_two_d_for_one_skewed_component() {
        // One giant component dominates: 1D strands it on a single node,
        // 2D splits it and pays a few cheap ghosts. 2D must win.
        let mut jobs: Vec<ClusterJob> = (0..40).map(|_| job(10_000, 0, 128)).collect();
        jobs.extend((0..4).map(|i| job(100, 1 + i, 0)));
        let speeds = homogeneous_speeds(4);
        let plan = plan_cluster(
            &jobs,
            &speeds,
            &Interconnect::cluster_default(),
            1_150_000_000,
            PartitionStrategy::Auto,
        );
        assert!(plan.auto);
        assert_eq!(plan.strategy, PartitionStrategy::TwoD);
        assert!(
            plan.predicted_two_d_cycles < plan.predicted_one_d_cycles,
            "2D {} must beat 1D {}",
            plan.predicted_two_d_cycles,
            plan.predicted_one_d_cycles
        );
    }

    #[test]
    fn auto_picks_one_d_for_balanced_components_with_heavy_ghosts() {
        // Many equal components already balance under 1D with zero
        // ghosts; under 2D every boundary cut pays a huge ghost payload
        // over a slow fabric. 1D must win.
        let jobs: Vec<ClusterJob> = (0..16)
            .map(|i| job(1_000, (i / 2) as u32, 50_000_000))
            .collect();
        let speeds = homogeneous_speeds(4);
        let net = Interconnect::with_inter(crate::LinkTier::ethernet_10g());
        let plan = plan_cluster(&jobs, &speeds, &net, 1_150_000_000, PartitionStrategy::Auto);
        assert!(plan.auto);
        assert_eq!(plan.strategy, PartitionStrategy::OneD);
        assert!(plan.predicted_one_d_cycles <= plan.predicted_two_d_cycles);
    }

    #[test]
    fn faster_nodes_get_more_two_d_weight() {
        let jobs: Vec<ClusterJob> = (0..100).map(|_| job(100, 0, 0)).collect();
        // Node 1 is 3x the speed of node 0.
        let speeds = vec![1_000_000_000u128, 3_000_000_000u128];
        let plan = plan_cluster(
            &jobs,
            &speeds,
            &Interconnect::cluster_default(),
            1_000_000_000,
            PartitionStrategy::TwoD,
        );
        assert!(
            plan.loads[1] > 2 * plan.loads[0],
            "speed-proportional blocks: {:?}",
            plan.loads
        );
    }

    #[test]
    fn reassign_moves_every_orphan_to_survivors() {
        let jobs: Vec<ClusterJob> = (0..12).map(|i| job(10 + i, (i % 4) as u32, 8)).collect();
        let speeds = homogeneous_speeds(4);
        let mut plan = plan_cluster(
            &jobs,
            &speeds,
            &Interconnect::cluster_default(),
            1_150_000_000,
            PartitionStrategy::TwoD,
        );
        let before: u64 = plan.loads.iter().sum();
        let lost = LossPlan::new(2, 7).targets(4);
        let moved = reassign_lost_nodes(&mut plan, &jobs, &lost);
        assert!(moved > 0);
        for &d in &lost {
            assert!(plan.assignment.iter().all(|&a| a != d));
            assert_eq!(plan.loads[d], 0);
        }
        assert_eq!(plan.loads.iter().sum::<u64>(), before);
    }

    #[test]
    fn predicted_costs_are_deterministic() {
        let jobs: Vec<ClusterJob> = (0..32)
            .map(|i| job(50 + i * 3, (i % 3) as u32, 16))
            .collect();
        let speeds = homogeneous_speeds(8);
        let a = plan_cluster(
            &jobs,
            &speeds,
            &Interconnect::cluster_default(),
            1_150_000_000,
            PartitionStrategy::Auto,
        );
        let b = plan_cluster(
            &jobs,
            &speeds,
            &Interconnect::cluster_default(),
            1_150_000_000,
            PartitionStrategy::Auto,
        );
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.predicted_one_d_cycles, b.predicted_one_d_cycles);
        assert_eq!(a.predicted_two_d_cycles, b.predicted_two_d_cycles);
        assert_eq!(a.strategy, b.strategy);
    }
}
