//! The two-tier network model.
//!
//! PR 6's interconnect was a single star of PCIe links around one host.
//! A cluster has **two** fabrics with very different constants:
//!
//! * **intra-node** — NVLink/PCIe-class links between a node's host
//!   bridge and its devices (microsecond latency, GB/s bandwidth),
//!   priced per device by its own [`TransferModel`] exactly as before;
//! * **inter-node** — an Ethernet/IB-class fabric between nodes
//!   (tens-of-microseconds latency on commodity Ethernet, ~GB/s
//!   bandwidth shared by every node uploading at once).
//!
//! Both tiers use the same affine `latency + bytes/bandwidth` form and
//! the same contention discipline as PR 6's H2D model: concurrent
//! transfers stretch each other's *byte* time by the link count while
//! the fixed latency does not. Everything converts to simulated cycles
//! with the `ceil` rounding of `trigon_gpu_sim::emit`, so cluster
//! traffic lands on the same timeline as kernel spans.

use crate::seconds_to_cycles;
use trigon_gpu_sim::{DeviceSpec, TransferModel};

/// One tier of the network: a named link class with its affine cost
/// model. The intra-node tier is derived per device from its spec; the
/// inter-node tier is one of the fabric classes below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkTier {
    /// Human-readable class name (`"PCIe"`, `"IB-QDR"`, `"10GbE"`, …).
    pub name: &'static str,
    /// The affine latency/bandwidth cost model of one link.
    pub model: TransferModel,
}

impl LinkTier {
    /// The intra-node PCIe tier of one device, from its Table I spec.
    #[must_use]
    pub fn pcie(spec: &DeviceSpec) -> Self {
        Self {
            name: "PCIe",
            model: TransferModel::from_spec(spec),
        }
    }

    /// An NVLink-class intra-node tier (for rosters modeled beyond the
    /// PCIe parts of Table I).
    #[must_use]
    pub fn nvlink() -> Self {
        Self {
            name: "NVLink",
            model: TransferModel::nvlink(),
        }
    }

    /// The QDR InfiniBand-class inter-node fabric.
    #[must_use]
    pub fn infiniband_qdr() -> Self {
        Self {
            name: "IB-QDR",
            model: TransferModel::infiniband_qdr(),
        }
    }

    /// The 10 Gb/s Ethernet-class inter-node fabric.
    #[must_use]
    pub fn ethernet_10g() -> Self {
        Self {
            name: "10GbE",
            model: TransferModel::ethernet_10g(),
        }
    }

    /// Seconds for one transfer of `bytes` while `links` transfers share
    /// the tier: the byte time stretches by the link count, the fixed
    /// latency does not — the same contention discipline as PR 6's H2D
    /// model (one link reduces to the plain affine formula).
    #[must_use]
    pub fn contended_seconds(&self, bytes: u64, links: usize) -> f64 {
        self.model
            .transfer_seconds(bytes.saturating_mul(links.max(1) as u64))
    }

    /// Cycles (on `clock_hz`) for one contended transfer.
    #[must_use]
    pub fn contended_cycles(&self, bytes: u64, links: usize, clock_hz: u64) -> u64 {
        seconds_to_cycles(self.contended_seconds(bytes, links), clock_hz)
    }

    /// Seconds for a point-to-point exchange across the tier's switch:
    /// store-and-forward, so both endpoints' fixed latencies are paid
    /// before the payload moves at the tier bandwidth.
    #[must_use]
    pub fn exchange_seconds(&self, bytes: u64) -> f64 {
        2.0 * self.model.latency_s + bytes as f64 / self.model.bandwidth as f64
    }

    /// Cycles (on the receiving clock) for a point-to-point exchange.
    #[must_use]
    pub fn exchange_cycles(&self, bytes: u64, clock_hz: u64) -> u64 {
        seconds_to_cycles(self.exchange_seconds(bytes), clock_hz)
    }
}

/// The two-tier interconnect.
///
/// The *intra-node* tier keeps PR 6's shape: per-device PCIe models,
/// priced through the associated functions ([`Interconnect::h2d_seconds`]
/// and friends) so a one-device fleet's trace stays byte-identical to a
/// plain single-device run. The *inter-node* tier is carried as state
/// ([`Interconnect::inter`]) and priced through the instance methods —
/// node partition uploads contend on it, ghost-vertex exchanges pay its
/// switch latency twice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// The inter-node fabric tier (ignored by single-node work).
    pub inter: LinkTier,
}

impl Interconnect {
    /// The default cluster fabric: QDR InfiniBand, the HPC interconnect
    /// contemporary with Table I's Tesla parts.
    #[must_use]
    pub fn cluster_default() -> Self {
        Self {
            inter: LinkTier::infiniband_qdr(),
        }
    }

    /// An interconnect over an explicit inter-node tier.
    #[must_use]
    pub fn with_inter(inter: LinkTier) -> Self {
        Self { inter }
    }

    // ---- Intra-node tier (per-device PCIe), unchanged from PR 6. ----

    /// Seconds for one H2D shard upload while `links` uploads share the
    /// node's host bus.
    #[must_use]
    pub fn h2d_seconds(model: &TransferModel, bytes: u64, links: usize) -> f64 {
        model.transfer_seconds(bytes.saturating_mul(links.max(1) as u64))
    }

    /// Cycles (on `clock_hz`) for one contended H2D shard upload.
    #[must_use]
    pub fn h2d_cycles(model: &TransferModel, bytes: u64, links: usize, clock_hz: u64) -> u64 {
        seconds_to_cycles(Self::h2d_seconds(model, bytes, links), clock_hz)
    }

    /// Seconds for a D2D boundary exchange from the device behind `src`
    /// to the device behind `dst`: store-and-forward across the host
    /// bridge (both latencies, bottleneck bandwidth).
    #[must_use]
    pub fn d2d_seconds(src: &TransferModel, dst: &TransferModel, bytes: u64) -> f64 {
        let bw = src.bandwidth.min(dst.bandwidth);
        src.latency_s + dst.latency_s + bytes as f64 / bw as f64
    }

    /// Cycles (on the destination clock) for a D2D boundary exchange.
    #[must_use]
    pub fn d2d_cycles(src: &TransferModel, dst: &TransferModel, bytes: u64, clock_hz: u64) -> u64 {
        seconds_to_cycles(Self::d2d_seconds(src, dst, bytes), clock_hz)
    }

    // ---- Inter-node tier. ----

    /// Seconds for one node's partition upload while `links` nodes share
    /// the fabric.
    #[must_use]
    pub fn uplink_seconds(&self, bytes: u64, links: usize) -> f64 {
        self.inter.contended_seconds(bytes, links)
    }

    /// Cycles (on the node's consuming clock) for a contended partition
    /// upload over the inter-node fabric.
    #[must_use]
    pub fn uplink_cycles(&self, bytes: u64, links: usize, clock_hz: u64) -> u64 {
        self.inter.contended_cycles(bytes, links, clock_hz)
    }

    /// Seconds for one ghost-vertex exchange between two nodes.
    #[must_use]
    pub fn ghost_seconds(&self, bytes: u64) -> f64 {
        self.inter.exchange_seconds(bytes)
    }

    /// Cycles (on the receiving node's clock) for one ghost-vertex
    /// exchange.
    #[must_use]
    pub fn ghost_cycles(&self, bytes: u64, clock_hz: u64) -> u64 {
        self.inter.exchange_cycles(bytes, clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contended_h2d_reduces_to_single_link_formula() {
        let m = TransferModel::from_spec(&DeviceSpec::c2050());
        let clock = DeviceSpec::c2050().clock_hz;
        let single = seconds_to_cycles(m.transfer_seconds(1 << 20), clock);
        assert_eq!(Interconnect::h2d_cycles(&m, 1 << 20, 1, clock), single);
        let double = Interconnect::h2d_cycles(&m, 1 << 20, 2, clock);
        assert!(double > single);
        // Contention stretches byte time only, not the fixed latency.
        let lat = seconds_to_cycles(m.latency_s, clock);
        assert!(
            double < 2 * single,
            "latency must not double: {double} vs {single} (lat {lat})"
        );
    }

    #[test]
    fn d2d_pays_both_latencies_and_bottleneck_bandwidth() {
        let a = TransferModel::from_spec(&DeviceSpec::c1060());
        let b = TransferModel::from_spec(&DeviceSpec::c2050());
        let s = Interconnect::d2d_seconds(&a, &b, 1 << 20);
        let expect =
            a.latency_s + b.latency_s + (1u64 << 20) as f64 / a.bandwidth.min(b.bandwidth) as f64;
        assert!((s - expect).abs() < 1e-15);
    }

    #[test]
    fn intra_tier_outprices_inter_tier() {
        // A node-local PCIe upload of 1 MiB beats the same payload over
        // either inter-node fabric — the gap the partitioner's cost
        // model trades against load balance.
        let pcie = LinkTier::pcie(&DeviceSpec::c2050());
        let b = 1u64 << 20;
        for inter in [LinkTier::infiniband_qdr(), LinkTier::ethernet_10g()] {
            let net = Interconnect::with_inter(inter);
            assert!(
                pcie.contended_seconds(b, 1) < net.uplink_seconds(b, 1),
                "{} must cost more than PCIe",
                inter.name
            );
        }
    }

    #[test]
    fn uplink_contention_and_ghost_latency_behave() {
        let net = Interconnect::cluster_default();
        let clock = DeviceSpec::c2050().clock_hz;
        let one = net.uplink_cycles(1 << 20, 1, clock);
        let four = net.uplink_cycles(1 << 20, 4, clock);
        assert!(four > one && four < 4 * one, "latency does not scale");
        // Ghost exchanges pay the switch latency twice even for tiny
        // payloads.
        let lat = seconds_to_cycles(2.0 * net.inter.model.latency_s, clock);
        assert!(net.ghost_cycles(1, clock) >= lat);
        assert_eq!(net.inter.name, "IB-QDR");
    }

    #[test]
    fn exchange_is_monotone_in_bytes() {
        let t = LinkTier::ethernet_10g();
        let clock = 1_150_000_000;
        let mut last = 0;
        for shift in [0u64, 10, 16, 20, 24] {
            let c = t.exchange_cycles(1 << shift, clock);
            assert!(c >= last);
            last = c;
        }
    }
}
