//! # trigon-fleet
//!
//! The multi-device *fleet* model: everything needed to run the paper's
//! single-device machinery across several simulated devices at once.
//!
//! The paper sizes graphs per device (§IV, Eqs. 1–2) and schedules
//! chunks across one device's SMs (§VI). This crate lifts both one
//! level up:
//!
//! * [`FleetSpec`] — a parsed `"2xC2050,1xC1060"` device roster drawn
//!   from the Table I registry (at most [`FleetSpec::MAX_DEVICES`]);
//! * [`plan_shards`] — the *outer* §VI instance: heterogeneity-aware
//!   LPT of ALS jobs across devices, gated by each device's Eq. 1
//!   global-memory capacity;
//! * [`Interconnect`] — the two-tier network model ([`net`]): per-link
//!   H2D pricing with link contention plus D2D boundary exchange on the
//!   intra-node tier, contended partition uploads and ghost-vertex
//!   exchanges on the inter-node tier, all in simulated cycles like
//!   `trigon_gpu_sim::xfer`;
//! * [`ClusterSpec`] and [`plan_cluster`] — the cluster tier
//!   ([`cluster`]): `"4x(2xC2050)"`-style node rosters and the
//!   node-level partitioner choosing 1D-by-component vs 2D-by-edge-block
//!   from a predicted communication-volume cost model;
//! * [`LossPlan`] — deterministic device-loss injection (always keeps
//!   at least one survivor), with [`reassign_lost`] migrating orphaned
//!   jobs onto survivors via the online Graham step
//!   (`trigon_sched::least_loaded_alive`), and [`reassign_lost_nodes`]
//!   doing the same one level up for lost nodes.
//!
//! The crate is deliberately free of graph types: jobs are abstract
//! `(weight, bytes)` pairs, so `trigon-core` can feed it ALS footprints
//! and the planner stays unit-testable in isolation.

#![deny(missing_docs)]

pub mod cluster;
pub mod net;

pub use cluster::{
    plan_cluster, predict_cost, reassign_lost_nodes, ClusterJob, ClusterPlan, ClusterSpec,
    PartitionStrategy,
};
pub use net::{Interconnect, LinkTier};

use std::fmt;
use trigon_gpu_sim::DeviceSpec;

/// A parsed multi-device roster, e.g. `"2xC2050,1xC1060"`.
///
/// Devices come from the Table I registry (`C1060`, `C2050`, `C2070`,
/// case-insensitive); a bare model name means one device. Expansion
/// order is the spec's textual order, which fixes the canonical device
/// indices used everywhere downstream (sharding, reduction, tracks).
#[derive(Debug, Clone)]
pub struct FleetSpec {
    devices: Vec<DeviceSpec>,
}

impl FleetSpec {
    /// Largest roster a spec may expand to.
    pub const MAX_DEVICES: usize = 8;

    /// Parses a comma-separated roster of `[<count>x]<model>` entries.
    ///
    /// # Errors
    ///
    /// A human-readable message for empty specs, unknown models, zero
    /// counts, or rosters larger than [`Self::MAX_DEVICES`].
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut devices = Vec::new();
        for raw in s.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                return Err(format!("empty device entry in fleet spec {s:?}"));
            }
            let (count, model) = match entry.split_once(['x', 'X']) {
                Some((n, model)) if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() => {
                    let count: usize = n
                        .parse()
                        .map_err(|_| format!("bad device count {n:?} in {entry:?}"))?;
                    (count, model)
                }
                _ => (1, entry),
            };
            if count == 0 {
                return Err(format!("device count must be >= 1 in {entry:?}"));
            }
            let spec = device_by_name(model).ok_or_else(|| {
                format!("unknown device model {model:?} (Table I: C1060, C2050, C2070)")
            })?;
            for _ in 0..count {
                devices.push(spec.clone());
            }
            if devices.len() > Self::MAX_DEVICES {
                return Err(format!(
                    "fleet spec {s:?} expands to more than {} devices",
                    Self::MAX_DEVICES
                ));
            }
        }
        if devices.is_empty() {
            return Err("fleet spec names no devices".into());
        }
        Ok(Self { devices })
    }

    /// A roster of `count` identical devices.
    ///
    /// # Errors
    ///
    /// When `count` is zero or exceeds [`Self::MAX_DEVICES`].
    pub fn homogeneous(spec: DeviceSpec, count: usize) -> Result<Self, String> {
        if count == 0 || count > Self::MAX_DEVICES {
            return Err(format!(
                "fleet size must be 1..={}, got {count}",
                Self::MAX_DEVICES
            ));
        }
        Ok(Self {
            devices: vec![spec; count],
        })
    }

    /// The expanded roster, in canonical device-index order.
    #[must_use]
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Number of devices in the roster.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the roster is empty (never true for a parsed spec).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

impl fmt::Display for FleetSpec {
    /// Canonical form: consecutive runs of the same model collapse to
    /// `<count>x<model>` (`"2xC2050,1xC1060"`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut i = 0;
        while i < self.devices.len() {
            let name = self.devices[i].name;
            let mut j = i + 1;
            while j < self.devices.len() && self.devices[j].name == name {
                j += 1;
            }
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}x{}", j - i, name)?;
            first = false;
            i = j;
        }
        Ok(())
    }
}

/// Looks up a Table I device by (case-insensitive) model name.
#[must_use]
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    DeviceSpec::table1()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name.trim()))
}

/// One abstract shard job: an ALS (or any chunk) reduced to its §VI
/// weight and its device-global byte footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardJob {
    /// §VI job size (for ALS jobs: the S-UTM bit footprint).
    pub weight: u64,
    /// Approximate bytes of device global memory the job occupies.
    pub bytes: u64,
}

/// A computed device assignment for a job list.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// `assignment[j]` = device index of job `j`.
    pub assignment: Vec<usize>,
    /// Summed job weight per device.
    pub loads: Vec<u64>,
    /// Summed job bytes per device.
    pub bytes: Vec<u64>,
}

/// Planning failed: some job fits no device's remaining capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Bytes the unplaceable job needs.
    pub needed: u64,
    /// Largest single-device capacity in the fleet.
    pub capacity: u64,
}

/// Nominal §VI processing speed of a device: aggregate issue capacity,
/// `sm_count × clock_hz`. Used only relatively (finish-time ratios), so
/// the absolute unit does not matter.
#[must_use]
pub fn device_speed(d: &DeviceSpec) -> u128 {
    u128::from(d.sm_count) * u128::from(d.clock_hz)
}

/// The outer §VI scheduling instance: heterogeneity-aware LPT of jobs
/// across devices.
///
/// Jobs are taken longest-first (ties broken by original index) and each
/// is placed on the device minimizing its *finish time*
/// `(load + weight) / speed`, restricted to devices whose Eq. 1 byte
/// budget still fits the job. Finish times are compared exactly by
/// cross-multiplication in `u128` — no floating point — and ties go to
/// the lower device index, so the plan is a pure function of its inputs.
///
/// # Errors
///
/// [`CapacityError`] when a job's bytes exceed every device's remaining
/// global-memory budget.
pub fn plan_shards(jobs: &[ShardJob], devices: &[DeviceSpec]) -> Result<FleetPlan, CapacityError> {
    assert!(!devices.is_empty(), "cannot plan over an empty fleet");
    let speeds: Vec<u128> = devices.iter().map(device_speed).collect();
    let caps: Vec<u64> = devices.iter().map(|d| d.global_mem_bytes).collect();
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&j| (std::cmp::Reverse(jobs[j].weight), j));

    let mut plan = FleetPlan {
        assignment: vec![0; jobs.len()],
        loads: vec![0; devices.len()],
        bytes: vec![0; devices.len()],
    };
    for &j in &order {
        let job = jobs[j];
        let mut best: Option<usize> = None;
        for d in 0..devices.len() {
            if plan.bytes[d].saturating_add(job.bytes) > caps[d] {
                continue;
            }
            best = Some(match best {
                None => d,
                // finish_d < finish_b  ⟺  (load_d + w)·speed_b < (load_b + w)·speed_d
                Some(b) => {
                    let fd = u128::from(plan.loads[d] + job.weight) * speeds[b];
                    let fb = u128::from(plan.loads[b] + job.weight) * speeds[d];
                    if fd < fb {
                        d
                    } else {
                        b
                    }
                }
            });
        }
        let d = best.ok_or(CapacityError {
            needed: job.bytes,
            capacity: caps.iter().copied().max().unwrap_or(0),
        })?;
        plan.assignment[j] = d;
        plan.loads[d] += job.weight;
        plan.bytes[d] = plan.bytes[d].saturating_add(job.bytes);
    }
    Ok(plan)
}

/// Migrates every job owned by a lost device onto the surviving devices
/// with the online Graham step — each orphan (in job order) goes to the
/// currently least-loaded survivor via
/// [`trigon_sched::least_loaded_alive`], exactly the policy the
/// single-device executor uses to drain stalled SMs. Returns the number
/// of jobs moved.
///
/// Capacity is not re-checked here: a loss-time reshard is an emergency
/// migration, and the per-shard Eq. 1 layout check downstream still
/// guards the hard limit.
///
/// # Panics
///
/// Panics when `lost` covers the whole fleet (callers must keep at
/// least one survivor, which [`LossPlan::targets`] guarantees).
pub fn reassign_lost(plan: &mut FleetPlan, jobs: &[ShardJob], lost: &[usize]) -> usize {
    let mut alive = vec![true; plan.loads.len()];
    for &d in lost {
        alive[d] = false;
        plan.loads[d] = 0;
        plan.bytes[d] = 0;
    }
    assert!(
        alive.iter().any(|&a| a),
        "device loss must leave at least one survivor"
    );
    let mut moved = 0;
    for j in 0..plan.assignment.len() {
        if alive[plan.assignment[j]] {
            continue;
        }
        let t = trigon_sched::least_loaded_alive(&plan.loads, &alive)
            .expect("at least one survivor is alive");
        plan.assignment[j] = t;
        plan.loads[t] += jobs[j].weight;
        plan.bytes[t] = plan.bytes[t].saturating_add(jobs[j].bytes);
        moved += 1;
    }
    moved
}

/// Seconds → device cycles, rounding up like `trigon_gpu_sim::emit`.
#[must_use]
pub fn seconds_to_cycles(s: f64, clock_hz: u64) -> u64 {
    (s * clock_hz as f64).ceil() as u64
}

/// A deterministic device-loss plan: `count` devices fail at shard
/// start, chosen by `seed`. Mirrors the SM-stall discipline of
/// `trigon_gpu_sim::faults` — targets are distinct and at least one
/// device always survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossPlan {
    /// Devices to lose (clamped to `fleet − 1` at draw time).
    pub count: u32,
    /// Seed the targets derive from.
    pub seed: u64,
}

impl LossPlan {
    /// A plan losing `count` devices under `seed`.
    #[must_use]
    pub fn new(count: u32, seed: u64) -> Self {
        Self { count, seed }
    }

    /// The device indices that fail, sorted ascending. Distinct, at most
    /// `devices − 1` of them (one survivor always remains), and a pure
    /// function of `(count, seed, devices)`.
    #[must_use]
    pub fn targets(&self, devices: usize) -> Vec<usize> {
        if devices <= 1 || self.count == 0 {
            return Vec::new();
        }
        let max = (devices - 1).min(self.count as usize);
        let mut rng = SplitMix64(self.seed ^ LOSS_STREAM_TAG.wrapping_mul(0xA076_1D64_78BD_642F));
        let mut picked: Vec<usize> = Vec::with_capacity(max);
        while picked.len() < max {
            let d = (rng.next() % devices as u64) as usize;
            if !picked.contains(&d) {
                picked.push(d);
            }
        }
        picked.sort_unstable();
        picked
    }
}

/// Stream tag separating device-loss draws from any other seeded stream.
const LOSS_STREAM_TAG: u64 = 0xF1EE_7000_0000_0001;

/// SplitMix64 — the same tiny PRNG `trigon_gpu_sim::faults` uses for its
/// per-kind fault streams.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_counts_and_models() {
        let f = FleetSpec::parse("2xC2050,1xC1060").unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f.devices()[0].name, "C2050");
        assert_eq!(f.devices()[1].name, "C2050");
        assert_eq!(f.devices()[2].name, "C1060");
        assert_eq!(f.to_string(), "2xC2050,1xC1060");
    }

    #[test]
    fn spec_accepts_bare_and_case_insensitive_names() {
        let f = FleetSpec::parse("c2070").unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.devices()[0].name, "C2070");
        assert_eq!(f.to_string(), "1xC2070");
        assert_eq!(FleetSpec::parse("3Xc1060").unwrap().len(), 3);
    }

    #[test]
    fn spec_rejects_garbage() {
        for bad in ["", " ,", "0xC2050", "9xC2050", "2xGTX480", "C2050,,C1060"] {
            assert!(FleetSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(FleetSpec::parse("4xC2050,5xC1060").is_err(), "9 devices");
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [
            "1xC1060",
            "2xC2050,1xC1060",
            "8xC2070",
            "1xC1060,1xC2050,1xC1060",
        ] {
            let f = FleetSpec::parse(s).unwrap();
            assert_eq!(f.to_string(), s);
            let g = FleetSpec::parse(&f.to_string()).unwrap();
            assert_eq!(g.len(), f.len());
        }
    }

    #[test]
    fn lpt_prefers_faster_devices() {
        // C1060: 30 SMs @1.296 GHz; C2050: 14 SMs @1.15 GHz — the C1060
        // has ~2.4x the aggregate speed, so a single job lands there.
        let fleet = vec![DeviceSpec::c2050(), DeviceSpec::c1060()];
        let jobs = [ShardJob {
            weight: 1000,
            bytes: 1,
        }];
        let plan = plan_shards(&jobs, &fleet).unwrap();
        assert_eq!(plan.assignment, vec![1]);
    }

    #[test]
    fn lpt_balances_homogeneous_fleet() {
        let fleet = vec![DeviceSpec::c2050(); 2];
        let jobs: Vec<ShardJob> = [5u64, 4, 3, 3, 3]
            .iter()
            .map(|&w| ShardJob {
                weight: w,
                bytes: 0,
            })
            .collect();
        let plan = plan_shards(&jobs, &fleet).unwrap();
        // LPT: 5 → d0, 4 → d1, 3 → d1 (7), 3 → d0 (8), 3 → d1 (10)…
        let makespan = plan.loads.iter().copied().max().unwrap();
        assert!(makespan <= 10, "loads {:?}", plan.loads);
        assert_eq!(plan.loads.iter().sum::<u64>(), 18);
    }

    #[test]
    fn capacity_gate_redirects_and_errors() {
        let mut small = DeviceSpec::c2050();
        small.global_mem_bytes = 10;
        let fleet = vec![small.clone(), DeviceSpec::c2050()];
        let jobs = [ShardJob {
            weight: 1,
            bytes: 100,
        }];
        // Device 0 cannot hold the job; it must land on device 1 even
        // though both start empty.
        let plan = plan_shards(&jobs, &fleet).unwrap();
        assert_eq!(plan.assignment, vec![1]);

        let fleet = vec![small.clone(), small];
        let err = plan_shards(&jobs, &fleet).unwrap_err();
        assert_eq!(err.needed, 100);
        assert_eq!(err.capacity, 10);
    }

    #[test]
    fn reassign_moves_every_orphan_to_survivors() {
        let fleet = vec![DeviceSpec::c2050(); 3];
        let jobs: Vec<ShardJob> = (0..9)
            .map(|i| ShardJob {
                weight: 10 + i,
                bytes: 1,
            })
            .collect();
        let mut plan = plan_shards(&jobs, &fleet).unwrap();
        let before: u64 = plan.loads.iter().sum();
        let moved = reassign_lost(&mut plan, &jobs, &[1]);
        assert!(moved > 0);
        assert!(plan.assignment.iter().all(|&d| d != 1));
        assert_eq!(plan.loads[1], 0);
        assert_eq!(plan.loads.iter().sum::<u64>(), before);
    }

    #[test]
    fn loss_targets_are_deterministic_and_keep_a_survivor() {
        for devices in 1..=8usize {
            for seed in 0..20u64 {
                let plan = LossPlan::new(100, seed);
                let t1 = plan.targets(devices);
                let t2 = plan.targets(devices);
                assert_eq!(t1, t2);
                assert!(t1.len() < devices.max(1) || devices == 0);
                if devices > 1 {
                    assert_eq!(t1.len(), devices - 1, "saturating plan loses all but one");
                }
                let mut sorted = t1.clone();
                sorted.dedup();
                assert_eq!(sorted, t1, "targets sorted and distinct");
            }
        }
        assert!(LossPlan::new(3, 7).targets(1).is_empty());
        assert!(LossPlan::new(0, 7).targets(4).is_empty());
    }
}
