//! Execution-time models: the paper's Eq. 6 and the documented
//! calibration constants used to convert workload counts into modeled
//! seconds on the paper's hardware.
//!
//! Every constant here is a *calibration input*, recorded in
//! EXPERIMENTS.md. The reproduction targets the paper's relative bands
//! (crossover, speedup factors, layout gain), not its absolute seconds;
//! see DESIGN.md §"Determinism & calibration".

/// The Eq. 6 pipeline time: `τt = μ·τs + ψg·τg` with `μ = ⌈ψs / 30⌉`.
///
/// `ψs` chunks live in shared memory and are processed 30-at-a-time in
/// parallel (one per SM); `ψg` chunks live in global memory and are
/// processed sequentially in the paper's naive schedule.
///
/// ```
/// use trigon_core::timemodel::eq6_total_time;
/// // 45 shared chunks (2 rounds) + 3 global chunks.
/// assert_eq!(eq6_total_time(45, 3, 10.0, 80.0, 30), 2.0 * 10.0 + 3.0 * 80.0);
/// ```
#[must_use]
pub fn eq6_total_time(
    shared_chunks: u64,
    global_chunks: u64,
    tau_s: f64,
    tau_g: f64,
    sm_count: u32,
) -> f64 {
    let mu = shared_chunks.div_ceil(u64::from(sm_count)) as f64;
    mu * tau_s + global_chunks as f64 * tau_g
}

/// Calibration constants of the modeled host CPU (the paper's quad-core
/// 2.27 GHz Xeon, used single-threaded) and the kernel cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Host CPU clock (Hz). Paper: 2.27 GHz Xeon.
    pub cpu_clock_hz: f64,
    /// CPU cycles per combination test while the bit matrix fits the
    /// last-level cache (combination advance + 3 random bit probes +
    /// bookkeeping on a 2009-era Xeon).
    pub cpu_cycles_per_test: f64,
    /// Host last-level cache size in bytes (8 MB Nehalem-class).
    pub cpu_llc_bytes: u64,
    /// Multiplier on CPU per-test cost once the adjacency matrix spills
    /// the LLC and the three probes become memory-bound (Fig. 11 regime).
    pub cpu_spill_factor: f64,
    /// Simulated-kernel cycles one warp spends per 32-test step, excluding
    /// the memory terms: instruction issue, divergence, combination
    /// generation and occupancy losses, lumped. Calibrated so the C1060
    /// device throughput matches the paper's measured kernel rate of
    /// ≈3.6·10⁷ tests/s (its Fig. 10/11 curves imply exactly that); an
    /// ideal hand-tuned kernel would be far faster, but the reproduction
    /// targets *their* implementation.
    pub gpu_step_base_cycles: u64,
    /// Multiplier on the per-transaction service cost in the kernel model,
    /// absorbing the re-reads a bit-probing kernel issues for words it
    /// cannot keep in registers across steps. Sets the memory share of a
    /// step at roughly 7–8 %, which is what makes the §X primitives worth
    /// the paper's observed 6–8 %.
    pub gpu_mem_derate: f64,
    /// Shared-tier analogue of `gpu_step_base_cycles`: combination
    /// generation still costs, but the three adjacency probes run at
    /// bank latency instead of global latency. Ratio τs/τg ≈ 1/3.
    pub gpu_step_base_shared_cycles: u64,
    /// One-time CUDA context creation + allocation cost in seconds
    /// (hundreds of ms on 2012-era drivers) — the overhead that makes
    /// small graphs "almost similar" between CPU and GPU in Fig. 10.
    pub gpu_context_init_s: f64,
    /// Host-side preparation cost in CPU cycles per vertex+edge: BFS,
    /// level grouping (Algorithm 1) and layout construction.
    pub host_prep_cycles_per_unit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            cpu_clock_hz: 2.27e9,
            cpu_cycles_per_test: 350.0,
            cpu_llc_bytes: 8 * 1024 * 1024,
            cpu_spill_factor: 1.8,
            gpu_step_base_cycles: 30_000,
            gpu_mem_derate: 11.0,
            gpu_step_base_shared_cycles: 10_000,
            gpu_context_init_s: 0.35,
            host_prep_cycles_per_unit: 60.0,
        }
    }
}

impl CostModel {
    /// Modeled single-thread CPU seconds for `tests` combination tests on
    /// an `n`-vertex graph: per-test cycles grow by `cpu_spill_factor`
    /// once the `n²`-bit matrix exceeds the LLC (the cache cliff that
    /// separates the Fig. 10 from the Fig. 11 speedup regime).
    #[must_use]
    pub fn cpu_seconds(&self, n: u32, tests: u128) -> f64 {
        let matrix_bytes = u64::from(n) * u64::from(n) / 8;
        let per_test = if matrix_bytes <= self.cpu_llc_bytes {
            self.cpu_cycles_per_test
        } else {
            self.cpu_cycles_per_test * self.cpu_spill_factor
        };
        tests as f64 * per_test / self.cpu_clock_hz
    }

    /// Modeled host preparation seconds (BFS + Algorithm 1 + layout) for a
    /// graph with `n` vertices and `m` edges — serial work both the CPU
    /// and GPU paths pay (§XI: GPU timings "include the executing time for
    /// both Algorithms 1 and 2").
    #[must_use]
    pub fn host_prep_seconds(&self, n: u32, m: usize) -> f64 {
        (f64::from(n) + m as f64) * self.host_prep_cycles_per_unit / self.cpu_clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_examples() {
        // All chunks in shared memory, one round.
        assert_eq!(eq6_total_time(30, 0, 5.0, 50.0, 30), 5.0);
        // 31 shared chunks need two rounds.
        assert_eq!(eq6_total_time(31, 0, 5.0, 50.0, 30), 10.0);
        // Global chunks serialize.
        assert_eq!(eq6_total_time(0, 4, 5.0, 50.0, 30), 200.0);
        // Nothing to do.
        assert_eq!(eq6_total_time(0, 0, 5.0, 50.0, 30), 0.0);
    }

    #[test]
    fn eq6_prefers_shared_placement() {
        // Moving a chunk from global to shared never hurts while rounds
        // are free (τs < τg and μ unchanged).
        let base = eq6_total_time(10, 5, 5.0, 50.0, 30);
        let moved = eq6_total_time(11, 4, 5.0, 50.0, 30);
        assert!(moved < base);
    }

    #[test]
    fn cpu_seconds_scales_linearly_in_tests() {
        let m = CostModel::default();
        let t1 = m.cpu_seconds(500, 1_000_000);
        let t2 = m.cpu_seconds(500, 2_000_000);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }

    #[test]
    fn cpu_cache_cliff() {
        let m = CostModel::default();
        // 8 MB LLC holds the bit matrix up to n = 8192.
        let small = m.cpu_seconds(8_000, 1_000_000);
        let large = m.cpu_seconds(12_000, 1_000_000);
        assert!((large / small - m.cpu_spill_factor).abs() < 1e-9);
    }

    #[test]
    fn fig10_scale_sanity() {
        // n = 1200, ~C(1200,3) tests: the model lands in the tens of
        // seconds, the order of magnitude of the paper's CPU curve.
        let m = CostModel::default();
        let tests = 1200u128 * 1199 * 1198 / 6;
        let s = m.cpu_seconds(1200, tests);
        assert!((20.0..80.0).contains(&s), "modeled {s} s");
    }

    #[test]
    fn host_prep_is_small() {
        let m = CostModel::default();
        let s = m.host_prep_seconds(100_000, 800_000);
        assert!(s < 0.1, "host prep {s} s");
        assert!(s > 0.0);
    }
}
