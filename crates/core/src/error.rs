//! The one workspace-level error type.
//!
//! Every fallible entry point of the analysis pipeline returns [`Error`];
//! the CLI maps each variant to a distinct exit code instead of a blanket
//! failure. [`crate::gpu_exec::GpuError`] is the simulator-internal
//! error of the executor layers ([`crate::gpu_exec`], [`crate::multi`],
//! the k-clique kernel) and converts losslessly into [`Error`].

use crate::gpu_exec::GpuError;

/// Anything a pipeline run can fail with.
#[derive(Debug)]
pub enum Error {
    /// The graph's layout does not fit the simulated device's global
    /// memory (the Eq. 1 capacity check).
    GraphTooLarge {
        /// Bytes the layout needs.
        needed: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A configuration the pipeline cannot run: unknown method or device
    /// name, bad block shape, `k` out of range, missing required flag.
    BadConfig(String),
    /// An I/O failure reading or writing a graph file.
    Io {
        /// Path involved, when known.
        path: String,
        /// Underlying error.
        source: std::io::Error,
    },
    /// Malformed input that was read successfully but does not parse
    /// (edge-list syntax, numeric fields).
    Parse(String),
}

impl Error {
    /// Shorthand for a [`Error::BadConfig`].
    #[must_use]
    pub fn bad_config(msg: impl Into<String>) -> Self {
        Error::BadConfig(msg.into())
    }

    /// The CLI exit code for this error: `2` bad configuration/usage,
    /// `3` I/O, `4` parse, `5` graph too large for the device.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            Error::BadConfig(_) => 2,
            Error::Io { .. } => 3,
            Error::Parse(_) => 4,
            Error::GraphTooLarge { .. } => 5,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::GraphTooLarge { needed, capacity } => write!(
                f,
                "adjacency layout needs {needed} bytes but device holds {capacity}"
            ),
            Error::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            Error::Io { path, source } => write!(f, "open {path}: {source}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<GpuError> for Error {
    fn from(e: GpuError) -> Self {
        match e {
            GpuError::GraphTooLarge { needed, capacity } => {
                Error::GraphTooLarge { needed, capacity }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        let errs = [
            Error::BadConfig("x".into()),
            Error::Io {
                path: "f".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "nope"),
            },
            Error::Parse("bad line".into()),
            Error::GraphTooLarge {
                needed: 2,
                capacity: 1,
            },
        ];
        let mut codes: Vec<i32> = errs.iter().map(Error::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
        assert!(codes.iter().all(|&c| c != 0 && c != 1));
    }

    #[test]
    fn gpu_error_converts() {
        let e: Error = GpuError::GraphTooLarge {
            needed: 9,
            capacity: 4,
        }
        .into();
        match e {
            Error::GraphTooLarge { needed, capacity } => {
                assert_eq!((needed, capacity), (9, 4));
            }
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn display_keeps_open_prefix_for_io() {
        // The CLI tests grep stderr for "open <path>"; the Display of the
        // Io variant must preserve that shape.
        let e = Error::Io {
            path: "missing.txt".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
        };
        assert!(e.to_string().starts_with("open missing.txt:"));
    }
}
