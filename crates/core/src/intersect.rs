//! Degree-ordered adjacency-intersection triangle counting — the
//! post-2013 algorithm family the combination pipeline is raced against.
//!
//! The paper's §VII kernel enumerates every candidate 3-combination of an
//! ALS window and edge-tests it; the modern literature counts the same
//! triangles orders of magnitude faster by *intersecting adjacency
//! lists*. This module implements that family over the same per-ALS
//! windows, with the standard degree orientation and the three adaptive
//! per-edge kernels of the Polak (arXiv:1503.00576) and Wang/Owens
//! (arXiv:1804.06926) taxonomies:
//!
//! 1. **Orientation** — build a CSR over the window induced subgraph,
//!    keep each edge only from its lower-(degree, id) endpoint to the
//!    higher one. Every triangle survives as exactly one directed wedge
//!    closure, and out-degrees are bounded by `O(√m)`.
//! 2. **Sorted merge** — for similar-length neighbor lists, the linear
//!    two-pointer merge.
//! 3. **Galloping search** — when one list is ≥ [`GALLOP_RATIO`]× the
//!    other, exponential + binary search of the short list's elements in
//!    the long one.
//! 4. **Chunked-`u64` bitmap** — hub vertices (out-degree ≥
//!    [`HUB_DEGREE`]) carry a dense rank-space bitmap; a hub–hub edge
//!    intersects by `AND` + `count_ones` over 64-bit words — the
//!    vectorized word-parallel path (no unstable `std::simd` needed).
//!
//! Every kernel invocation is counted in an [`IntersectStats`], which is
//! what the simulated-GPU intersection fidelity mode prices (coalesced
//! row scans vs scattered galloping probes vs bank-conflicting bitmap
//! words).
//!
//! # The bit-identity with the combination pipeline
//!
//! [`count_als_fast`](crate::count::count_als_fast) counts a window
//! triangle iff it touches the first level, or the ALS is last. Since
//! the window is the disjoint union `first ∪ second`, that is exactly
//!
//! ```text
//! tri(window) − (is_last ? 0 : tri(second-level induced subgraph))
//! ```
//!
//! — two plain induced-subgraph counts, which is what lets the
//! popcount bitmap kernel (which cannot filter per-triangle) participate
//! while the per-ALS totals stay **bit-identical** to Algorithm 2.

use crate::als::Als;
use crate::workload::ChunkKernel;
use trigon_graph::Graph;

/// A neighbor-list length ratio of at least this switches the per-edge
/// kernel from the sorted merge to galloping binary search.
pub const GALLOP_RATIO: usize = 8;

/// Oriented out-degree at or above which a vertex is a *hub* and carries
/// a dense rank-space bitmap; a hub–hub edge intersects by word ops.
pub const HUB_DEGREE: usize = 64;

/// Exact operation counts of one intersection run — the quantities the
/// GPU simulator prices and the profiler attributes. Every field is a
/// deterministic integer function of (graph, vertex set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntersectStats {
    /// Triangles counted (after the window-minus-second subtraction when
    /// produced by [`als_stats`]).
    pub triangles: u64,
    /// Edges resolved by the sorted two-pointer merge.
    pub merge_edges: u64,
    /// Edges resolved by galloping binary search.
    pub gallop_edges: u64,
    /// Edges resolved by the `u64` bitmap popcount kernel.
    pub bitmap_edges: u64,
    /// Comparisons performed by the merge kernel.
    pub merge_steps: u64,
    /// Probes (exponential + binary search reads) of the gallop kernel.
    pub gallop_probes: u64,
    /// 64-bit words `AND`ed + popcounted by the bitmap kernel.
    pub bitmap_words: u64,
    /// 4-byte words streamed sequentially: CSR build scans, merged
    /// neighbor lists, the gallop kernel's short list, and the bitmap
    /// kernel's word rows (2 `u32` words per `u64`). These loads
    /// coalesce on a device; [`IntersectStats::gallop_probes`] are the
    /// scattered ones.
    pub seq_words: u64,
}

impl IntersectStats {
    /// Total kernel operations — the intersection analogue of the
    /// combination pipeline's "tests", and the unit the timing models
    /// scale with.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.merge_steps + self.gallop_probes + self.bitmap_words
    }

    /// Accumulates `other` into `self`, field-wise.
    pub fn merge(&mut self, other: &IntersectStats) {
        self.triangles += other.triangles;
        self.merge_edges += other.merge_edges;
        self.gallop_edges += other.gallop_edges;
        self.bitmap_edges += other.bitmap_edges;
        self.merge_steps += other.merge_steps;
        self.gallop_probes += other.gallop_probes;
        self.bitmap_words += other.bitmap_words;
        self.seq_words += other.seq_words;
    }
}

/// The degree-ordered oriented CSR of one induced subgraph: vertices
/// renamed to ranks ascending in (induced degree, global id), each edge
/// kept only from its lower rank to its higher, adjacency sorted by
/// rank. Triangles = Σ over directed edges `(u, v)` of
/// `|N⁺(u) ∩ N⁺(v)|`.
#[derive(Debug, Clone)]
pub struct OrientedCsr {
    /// CSR offsets into [`OrientedCsr::adj`], length `nv + 1`.
    offsets: Vec<u32>,
    /// Higher-ranked out-neighbors as ranks, sorted ascending per row.
    adj: Vec<u32>,
}

impl OrientedCsr {
    /// Builds the oriented CSR of the subgraph `g` induces on `verts`
    /// (global vertex ids; order irrelevant, duplicates not allowed),
    /// charging the adjacency scan to `stats.seq_words`.
    #[must_use]
    pub fn build(g: &Graph, verts: &[u32], stats: &mut IntersectStats) -> Self {
        let mut vs: Vec<u32> = verts.to_vec();
        vs.sort_unstable();
        let nv = vs.len();
        let pos = |v: u32| vs.binary_search(&v).ok();
        // Induced degrees: one streamed scan of every member's neighbor
        // list (the coalesced row-scan phase the simulator prices).
        let mut deg = vec![0u32; nv];
        let mut scanned = 0u64;
        for (i, &v) in vs.iter().enumerate() {
            let nb = g.neighbors(v);
            scanned += nb.len() as u64;
            deg[i] = nb.iter().filter(|&&u| pos(u).is_some()).count() as u32;
        }
        stats.seq_words += scanned;
        // Rank ascending in (degree, global id): orientation by rank
        // bounds every out-degree and makes the ordering deterministic.
        let mut order: Vec<u32> = (0..nv as u32).collect();
        order.sort_unstable_by_key(|&i| (deg[i as usize], vs[i as usize]));
        let mut rank = vec![0u32; nv];
        for (r, &i) in order.iter().enumerate() {
            rank[i as usize] = r as u32;
        }
        // Second streamed pass fills the rows; each undirected edge is
        // seen from both endpoints and kept once, low rank → high rank.
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); nv];
        for (i, &v) in vs.iter().enumerate() {
            let ri = rank[i];
            for &u in g.neighbors(v) {
                if let Some(j) = pos(u) {
                    let rj = rank[j];
                    if rj > ri {
                        rows[ri as usize].push(rj);
                    }
                }
            }
        }
        stats.seq_words += scanned;
        let mut offsets = Vec::with_capacity(nv + 1);
        let mut adj = Vec::new();
        offsets.push(0u32);
        for row in &mut rows {
            row.sort_unstable();
            adj.extend_from_slice(row);
            offsets.push(adj.len() as u32);
        }
        OrientedCsr { offsets, adj }
    }

    /// Vertices (as ranks) in the CSR.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the CSR is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted out-neighbor ranks of rank `u`.
    #[must_use]
    pub fn row(&self, u: usize) -> &[u32] {
        &self.adj[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Counts the triangles of the oriented graph with the adaptive
    /// merge / gallop / bitmap kernel per edge, accumulating every
    /// operation into `stats`.
    #[must_use]
    pub fn count_triangles(&self, stats: &mut IntersectStats) -> u64 {
        let nv = self.len();
        let words = nv.div_ceil(64);
        // Dense rank-space bitmaps for the hubs only: ≤ 2m/HUB_DEGREE of
        // them, so memory stays linear in the edge count.
        let bitmaps: Vec<Option<Vec<u64>>> = (0..nv)
            .map(|u| {
                let row = self.row(u);
                if row.len() < HUB_DEGREE {
                    return None;
                }
                let mut bm = vec![0u64; words];
                for &v in row {
                    bm[(v >> 6) as usize] |= 1u64 << (v & 63);
                }
                Some(bm)
            })
            .collect();
        let mut triangles = 0u64;
        for u in 0..nv {
            let nu = self.row(u);
            for &v in nu {
                let nv_row = self.row(v as usize);
                if nu.is_empty() || nv_row.is_empty() {
                    continue;
                }
                let (short, long) = if nu.len() <= nv_row.len() {
                    (nu, nv_row)
                } else {
                    (nv_row, nu)
                };
                // Common out-neighbors all rank above v (both rows only
                // hold ranks above their owner, and v > u), so the
                // bitmap scan starts past v's word — cheap enough to
                // beat the merge whenever both endpoints are hubs.
                let word_lo = (v >> 6) as usize;
                let span = (words - word_lo) as u64;
                match (&bitmaps[u], &bitmaps[v as usize]) {
                    (Some(bu), Some(bv)) if span <= (short.len() + long.len()) as u64 => {
                        stats.bitmap_edges += 1;
                        stats.bitmap_words += span;
                        stats.seq_words += 2 * 2 * span; // two u64 rows streamed
                        for w in word_lo..words {
                            triangles += u64::from((bu[w] & bv[w]).count_ones());
                        }
                    }
                    _ if long.len() >= GALLOP_RATIO * short.len() => {
                        stats.gallop_edges += 1;
                        stats.seq_words += short.len() as u64;
                        triangles += gallop_count(short, long, &mut stats.gallop_probes);
                    }
                    _ => {
                        stats.merge_edges += 1;
                        stats.seq_words += (short.len() + long.len()) as u64;
                        triangles += merge_count(short, long, &mut stats.merge_steps);
                    }
                }
            }
        }
        triangles
    }
}

/// Two-pointer sorted-merge intersection size; one comparison per step.
fn merge_count(a: &[u32], b: &[u32], steps: &mut u64) -> u64 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        *steps += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Galloping intersection: each element of the (sorted) short list is
/// located in the long one by exponential search from the previous hit
/// followed by binary search; every array read is one probe.
fn gallop_count(short: &[u32], long: &[u32], probes: &mut u64) -> u64 {
    let mut count = 0u64;
    let mut lo = 0usize;
    for &x in short {
        if lo >= long.len() {
            break;
        }
        // Exponential phase.
        let mut step = 1usize;
        let mut hi = lo;
        loop {
            *probes += 1;
            if long[hi] >= x {
                break;
            }
            lo = hi + 1;
            hi = (hi + step).min(long.len() - 1);
            step *= 2;
            if lo > hi {
                break;
            }
        }
        // Binary phase over [lo, hi].
        let mut l = lo;
        let mut r = hi + 1;
        while l < r {
            let m = (l + r) / 2;
            *probes += 1;
            if long[m] < x {
                l = m + 1;
            } else {
                r = m;
            }
        }
        lo = l;
        if lo < long.len() && long[lo] == x {
            count += 1;
            lo += 1;
        }
    }
    count
}

/// Triangles of the subgraph induced on `verts`, with op accounting.
fn tri_induced(g: &Graph, verts: &[u32], stats: &mut IntersectStats) -> u64 {
    if verts.len() < 3 {
        return 0;
    }
    let csr = OrientedCsr::build(g, verts, stats);
    csr.count_triangles(stats)
}

/// The per-ALS intersection count **and** its exact operation counts.
///
/// `triangles` equals [`count_als_fast`](crate::count::count_als_fast)
/// on the same ALS — the window-minus-second identity of the
/// [module docs](self) — while the op counters cover both induced
/// passes.
#[must_use]
pub fn als_stats(g: &Graph, als: &Als) -> IntersectStats {
    let mut stats = IntersectStats::default();
    let window_tri = tri_induced(g, als.window(), &mut stats);
    let second_tri = if als.is_last {
        0
    } else {
        tri_induced(g, &als.second, &mut stats)
    };
    stats.triangles = window_tri - second_tri;
    stats
}

/// The per-ALS intersection triangle count (bit-identical to
/// [`count_als_fast`](crate::count::count_als_fast)).
#[must_use]
pub fn count_als_intersect(g: &Graph, als: &Als) -> u64 {
    als_stats(g, als).triangles
}

/// Whole-graph intersection count: Σ [`count_als_intersect`] over every
/// ALS — bit-identical to [`als_fast`](crate::count::als_fast).
#[must_use]
pub fn intersect_count(g: &Graph) -> u64 {
    crate::als::build_als(g)
        .iter()
        .map(|a| count_als_intersect(g, a))
        .sum()
}

/// Whole-graph operation counts: the merged [`als_stats`] of every ALS.
#[must_use]
pub fn graph_stats(g: &Graph) -> IntersectStats {
    let mut total = IntersectStats::default();
    for a in &crate::als::build_als(g) {
        total.merge(&als_stats(g, a));
    }
    total
}

/// The intersection counting backend as a [`ChunkKernel`]: `Partial =
/// u64` like [`CountKernel`](crate::workload::CountKernel), but the
/// whole-ALS compute runs the degree-ordered intersection instead of the
/// fast combination walk. Because the per-ALS totals are bit-identical,
/// the kernel rides every executor — sampled-style pseudo-blocks, fault
/// recovery's host recompute, hybrid placement, fleet shards — and
/// always reproduces the serial count exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntersectKernel;

impl ChunkKernel for IntersectKernel {
    type Partial = u64;

    fn identity(&self) -> u64 {
        0
    }

    fn emit(&self, p: &mut u64, _g: &Graph, _als: &Als, _combo: &[u32]) {
        // The combination-walk fallback (e.g. an exhaustive fault-replay
        // origin) attributes exactly like CountKernel.
        *p += 1;
    }

    fn compute_als(&self, g: &Graph, als: &Als) -> u64 {
        count_als_intersect(g, als)
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }

    fn corrupt(&self, p: &mut u64, mask: u64) {
        *p ^= mask;
    }

    fn triangles_in(&self, p: &u64) -> u64 {
        *p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::build_als;
    use crate::count::count_als_fast;
    use trigon_graph::{gen, triangles, Graph};

    #[test]
    fn per_als_counts_match_the_combination_pipeline_exactly() {
        for seed in 0..6u64 {
            let g = gen::gnp(140, 0.08, seed);
            for a in &build_als(&g) {
                assert_eq!(
                    count_als_intersect(&g, a),
                    count_als_fast(&g, a),
                    "seed {seed} als {}",
                    a.index
                );
            }
        }
    }

    #[test]
    fn whole_graph_count_matches_every_reference() {
        for (label, g) in [
            ("gnp", gen::gnp(300, 0.05, 3)),
            ("ring", gen::community_ring(1200, 100, 0.25, 3, 7)),
            ("ws", gen::watts_strogatz(200, 8, 0.1, 1)),
            ("complete", gen::complete(24)),
            ("path", gen::path(10)),
        ] {
            assert_eq!(
                intersect_count(&g),
                triangles::count_edge_iterator(&g),
                "{label}"
            );
            assert_eq!(intersect_count(&g), crate::count::als_fast(&g), "{label}");
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(intersect_count(&g), 0);
        let g = gen::path(2);
        assert_eq!(intersect_count(&g), 0);
    }

    #[test]
    fn all_three_kernels_fire_on_a_hub_heavy_graph() {
        // A dense core (hubs → bitmap), plus sparse satellite vertices
        // attached to the core (skewed ratios → galloping), plus the
        // core's own balanced pairs. Complete graph on 160: every
        // oriented out-degree up to 159 ≥ HUB_DEGREE.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..160u32 {
            for v in (u + 1)..160 {
                edges.push((u, v));
            }
        }
        // Satellites 160..200 each attach to two core members.
        for (i, s) in (160u32..200).enumerate() {
            let a = (i as u32) % 160;
            edges.push((a, s));
            edges.push(((a + 1) % 160, s));
        }
        let g = Graph::from_edges(200, &edges).unwrap();
        let stats = graph_stats(&g);
        assert_eq!(stats.triangles, triangles::count_edge_iterator(&g));
        assert!(stats.bitmap_edges > 0, "bitmap kernel never selected");
        assert!(stats.gallop_edges > 0, "gallop kernel never selected");
        assert!(stats.merge_edges > 0, "merge kernel never selected");
        assert!(stats.ops() > 0);
    }

    #[test]
    fn stats_are_deterministic() {
        let g = gen::gnp(200, 0.06, 11);
        let a = graph_stats(&g);
        let b = graph_stats(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn intersection_does_far_fewer_ops_than_combination_tests() {
        let g = gen::gnp(600, 16.0 / 600.0, 42);
        let stats = graph_stats(&g);
        let tests = crate::count::total_tests(&g);
        assert!(
            u128::from(stats.ops()) * 100 < tests,
            "ops {} should be <1% of the {tests} combination tests",
            stats.ops()
        );
    }

    #[test]
    fn kernel_matches_count_kernel_per_als() {
        use crate::workload::{ChunkKernel, CountKernel};
        let g = gen::gnp(150, 0.07, 9);
        for a in &build_als(&g) {
            assert_eq!(
                IntersectKernel.compute_als(&g, a),
                CountKernel.compute_als(&g, a)
            );
        }
    }

    #[test]
    fn gallop_and_merge_agree_on_random_lists() {
        let mut rng = trigon_graph::Xoshiro256pp::seed_from_u64(7);
        for _ in 0..50 {
            let mut a: Vec<u32> = (0..20).map(|_| (rng.next_u64() % 500) as u32).collect();
            let mut b: Vec<u32> = (0..400).map(|_| (rng.next_u64() % 500) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut s1 = 0u64;
            let mut s2 = 0u64;
            assert_eq!(
                gallop_count(&a, &b, &mut s1),
                merge_count(&a, &b, &mut s2),
                "a={a:?} b={b:?}"
            );
            assert!(s1 > 0 || a.is_empty() || b.is_empty());
        }
    }
}
