//! Algorithm 2 — counting triangles per adjacent level set, on the CPU.
//!
//! Two forms are provided:
//!
//! * [`cpu_exhaustive`] — the *faithful* Algorithm 2: per ALS, generate
//!   every candidate combination with `GenNxtComb(firstLvl)`,
//!   `GenNxtComb(bothLvls)` and (last set) `GenNxtComb(secondLvl)` and
//!   test its three edges. This is what the paper's CPU baseline runs and
//!   what the simulated GPU distributes across threads; cost grows with
//!   `Σ C(a+b, 3)`, so it is for graphs up to a few thousand vertices.
//! * [`als_fast`] — the same per-ALS decomposition evaluated with a
//!   sorted-adjacency edge-iterator inside each window, linear-ish in the
//!   number of window edges. It attributes every triangle to the same ALS
//!   and mode as the exhaustive form — the two must agree exactly — and
//!   scales to the paper's 100 000-node graphs.

use crate::als::{build_als, Als};
use trigon_graph::Graph;

/// Result of the exhaustive Algorithm 2 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCount {
    /// Number of triangles found.
    pub triangles: u64,
    /// Number of 3-combinations tested — the workload driver for every
    /// timing model in this reproduction.
    pub tests: u128,
}

/// Faithful Algorithm 2 over all ALS of `g` (single "thread").
#[must_use]
pub fn cpu_exhaustive(g: &Graph) -> CpuCount {
    let als = build_als(g);
    let mut triangles = 0u64;
    let mut tests = 0u128;
    for a in &als {
        let r = count_als_exhaustive(g, a);
        triangles += r.triangles;
        tests += r.tests;
    }
    CpuCount { triangles, tests }
}

/// Exhaustive Algorithm 2 on a single ALS: the three `GenNxtComb` scans.
#[must_use]
pub fn count_als_exhaustive(g: &Graph, als: &Als) -> CpuCount {
    let space = als.space(3);
    let mut triangles = 0u64;
    let mut tests = 0u128;
    for &mode in als.modes() {
        let mut cur = space.cursor(mode);
        while let Some(c) = cur.current() {
            tests += 1;
            if als.edge(g, c[0], c[1]) && als.edge(g, c[0], c[2]) && als.edge(g, c[1], c[2]) {
                triangles += 1;
            }
            if !cur.advance() {
                break;
            }
        }
    }
    CpuCount { triangles, tests }
}

/// Fast per-ALS count with identical attribution semantics: a triangle in
/// the window is counted iff it touches the first level, or the ALS is
/// last and the triangle lies entirely in the second level.
#[must_use]
pub fn count_als_fast(g: &Graph, als: &Als) -> u64 {
    let mut count = 0u64;
    // Iterate the precomputed sorted window; for each edge (u, v) with
    // u < v inside the window, intersect neighbor lists above v,
    // filtered to the window. Membership probes (`in_window`,
    // `in_first`) are O(1) level-map lookups, not binary searches.
    for &u in als.window() {
        let u_first = als.in_first(u);
        let nu = g.neighbors(u);
        for &v in nu {
            if v <= u || !als.in_window(v) {
                continue;
            }
            let uv_first = u_first || als.in_first(v);
            let nv = g.neighbors(v);
            let mut i = nu.partition_point(|&x| x <= v);
            let mut j = nv.partition_point(|&x| x <= v);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[i];
                        if als.in_window(w) && (uv_first || als.in_first(w) || als.is_last) {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Fast Algorithm 2 over the whole graph: sums [`count_als_fast`] over
/// every ALS. Exact at any scale.
#[must_use]
pub fn als_fast(g: &Graph) -> u64 {
    build_als(g).iter().map(|a| count_als_fast(g, a)).sum()
}

/// Multi-core CPU Algorithm 2: the fast ALS form parallelized with rayon
/// over the ALS list. The paper's CPU baseline "is performed using a
/// single thread" (§XI); this is the modern multicore counterpoint the
/// benchmark suite contrasts the simulated GPU against.
#[must_use]
pub fn als_fast_parallel(g: &Graph) -> u64 {
    use rayon::prelude::*;
    build_als(g).par_iter().map(|a| count_als_fast(g, a)).sum()
}

/// Total Algorithm 2 test count of a graph without running the tests —
/// `Σ_ALS test_count` — used by the sampled timing model.
#[must_use]
pub fn total_tests(g: &Graph) -> u128 {
    build_als(g).iter().map(|a| a.test_count(3)).sum()
}

/// §VII *listing* mode: reports every triangle exactly once through the
/// callback, as `(u, v, w)` with `u < v < w` in **global** vertex ids,
/// using the same ALS + mode discipline as the counting form (so the
/// no-duplicates guarantee is the one Algorithm 2 proves, not a
/// post-hoc dedup).
pub fn list_triangles_als(g: &Graph, mut f: impl FnMut(u32, u32, u32)) {
    for als in build_als(g) {
        let space = als.space(3);
        for &mode in als.modes() {
            let mut cur = space.cursor(mode);
            while let Some(c) = cur.current() {
                if als.edge(g, c[0], c[1]) && als.edge(g, c[0], c[2]) && als.edge(g, c[1], c[2]) {
                    let mut t = [
                        als.global_id(c[0]),
                        als.global_id(c[1]),
                        als.global_id(c[2]),
                    ];
                    t.sort_unstable();
                    f(t[0], t[1], t[2]);
                }
                if !cur.advance() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_combin::binom;
    use trigon_graph::{gen, triangles};

    fn reference(g: &Graph) -> u64 {
        triangles::count_edge_iterator(g)
    }

    #[test]
    fn exhaustive_matches_reference_on_families() {
        for g in [
            gen::complete(9),
            gen::path(12),
            gen::cycle(9),
            gen::star(10),
            gen::complete_bipartite(4, 5),
            gen::grid2d(4, 5),
            gen::disjoint_cliques(3, 5),
        ] {
            let r = cpu_exhaustive(&g);
            assert_eq!(r.triangles, reference(&g));
        }
    }

    #[test]
    fn exhaustive_matches_reference_on_random() {
        for seed in 0..8u64 {
            let g = gen::gnp(70, 0.08, seed);
            assert_eq!(cpu_exhaustive(&g).triangles, reference(&g), "seed {seed}");
        }
        for seed in 0..3u64 {
            let g = gen::barabasi_albert(120, 4, seed);
            assert_eq!(cpu_exhaustive(&g).triangles, reference(&g), "ba {seed}");
        }
        let ws = gen::watts_strogatz(90, 6, 0.15, 1);
        assert_eq!(cpu_exhaustive(&ws).triangles, reference(&ws));
    }

    #[test]
    fn fast_equals_exhaustive_per_als() {
        // The two forms must agree ALS by ALS, not just in total.
        for seed in 0..5u64 {
            let g = gen::gnp(60, 0.1, seed);
            for als in build_als(&g) {
                assert_eq!(
                    count_als_fast(&g, &als),
                    count_als_exhaustive(&g, &als).triangles,
                    "seed {seed} als {}",
                    als.index
                );
            }
        }
    }

    #[test]
    fn fast_matches_reference_at_scale() {
        let g = gen::barabasi_albert(3000, 5, 2);
        assert_eq!(als_fast(&g), reference(&g));
        let ws = gen::watts_strogatz(2500, 8, 0.1, 3);
        assert_eq!(als_fast(&ws), reference(&ws));
    }

    #[test]
    fn parallel_matches_serial() {
        for seed in 0..3u64 {
            let g = gen::community_ring(1500, 120, 0.2, 3, seed);
            assert_eq!(als_fast_parallel(&g), als_fast(&g), "seed {seed}");
        }
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(als_fast_parallel(&empty), 0);
    }

    #[test]
    fn test_count_accounting() {
        let g = gen::complete(8);
        // One ALS (root + rest): test count = C(8,3).
        let r = cpu_exhaustive(&g);
        assert_eq!(r.tests, binom(8, 3));
        assert_eq!(total_tests(&g), r.tests);
        // Clique count identity ϑ(K_n) = C(n,3).
        assert_eq!(u128::from(r.triangles), binom(8, 3));
    }

    #[test]
    fn tests_never_lie_below_triangles() {
        for seed in 0..4u64 {
            let g = gen::gnp(50, 0.15, seed);
            let r = cpu_exhaustive(&g);
            assert!(r.tests >= u128::from(r.triangles));
            assert_eq!(total_tests(&g), r.tests);
        }
    }

    #[test]
    fn disconnected_and_empty() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(cpu_exhaustive(&g).triangles, 0);
        assert_eq!(als_fast(&g), 0);
        let g2 = gen::disjoint_cliques(4, 6);
        assert_eq!(cpu_exhaustive(&g2).triangles, 4 * binom(6, 3) as u64);
        assert_eq!(als_fast(&g2), 4 * binom(6, 3) as u64);
    }

    #[test]
    fn listing_matches_reference_listing() {
        for seed in 0..4u64 {
            let g = gen::gnp(60, 0.12, seed);
            let mut ours = std::collections::BTreeSet::new();
            list_triangles_als(&g, |u, v, w| {
                assert!(u < v && v < w);
                assert!(
                    ours.insert((u, v, w)),
                    "duplicate ({u},{v},{w}) seed {seed}"
                );
            });
            let mut reference = std::collections::BTreeSet::new();
            triangles::list_triangles(&g, |u, v, w| {
                reference.insert((u, v, w));
            });
            assert_eq!(ours, reference, "seed {seed}");
        }
    }

    #[test]
    fn listing_on_multi_component() {
        let g = gen::disjoint_cliques(2, 4);
        let mut found = Vec::new();
        list_triangles_als(&g, |u, v, w| found.push((u, v, w)));
        assert_eq!(found.len() as u128, 2 * binom(4, 3));
        // Each triangle stays within one clique.
        for (u, _, w) in found {
            assert_eq!(u / 4, w / 4);
        }
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        assert_eq!(cpu_exhaustive(&gen::complete_bipartite(8, 8)).triangles, 0);
        assert_eq!(als_fast(&gen::random_bipartite(30, 30, 0.2, 4)), 0);
        assert_eq!(als_fast(&gen::grid2d(15, 15)), 0);
    }
}
