//! Simulated-GPU counting of the §III extensions: `k`-cliques over
//! adjacent level sets.
//!
//! "Our methods can be extended to solve other combinatorial counting
//! problems on graphs, such as … number of cliques (resp. independent
//! sets) of size k" — a `k`-clique is complete, so its vertices span at
//! most two adjacent BFS levels, and the triangle kernel generalizes by
//! replacing the 3-edge test with the `C(k,2)`-edge test and widening the
//! combination spaces to `k`. Memory traffic is priced with the same
//! coalescing/partition machinery as the triangle kernel.

use crate::als::build_als;
use crate::gpu_exec::{GpuConfig, GpuError};
use crate::layout::{GlobalLayout, LayoutKind};
use crate::workload::{ChunkKernel, CountKernel};
use rayon::prelude::*;
use trigon_combin::equal_division;
use trigon_gpu_sim::{
    emit, warp_transactions, CounterSet, DeviceProfile, PartitionTraffic, ProfileData,
    TransferModel,
};
use trigon_graph::Graph;
use trigon_telemetry::{Collector, Tracer};

/// Result of a simulated k-clique run.
#[derive(Debug, Clone)]
pub struct KCliqueRunResult {
    /// Exact `k`-clique count.
    pub cliques: u64,
    /// Combination tests performed.
    pub tests: u128,
    /// Global-memory transactions issued.
    pub transactions: u64,
    /// Kernel seconds.
    pub kernel_s: f64,
    /// End-to-end modeled seconds.
    pub total_s: f64,
    /// Thread blocks simulated.
    pub blocks: usize,
    /// Counter attribution per ALS and per LPT-scheduled SM.
    /// Instructions scale with the `C(k,2)` pair tests per combination.
    pub profile: ProfileData,
}

/// Runs the simulated k-clique kernel exhaustively (small graphs; the
/// space is `Σ C(a+b, k)`).
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the layout exceeds the device.
///
/// Runs the simulated k-clique kernel, recording phase timings and
/// simulator counters into `collector`.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the layout exceeds the device.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn run_k_cliques_collected(
    g: &Graph,
    cfg: &GpuConfig,
    k: u32,
    collector: &mut Collector,
) -> Result<KCliqueRunResult, GpuError> {
    run_k_cliques_traced(g, cfg, k, collector, &Tracer::disabled())
}

/// Runs the simulated k-clique kernel like [`run_k_cliques_collected`],
/// additionally recording host phase spans, the PCIe transfer span, and
/// one simulated-time span per LPT-scheduled block on its SM lane into
/// `tracer`.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the layout exceeds the device.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn run_k_cliques_traced(
    g: &Graph,
    cfg: &GpuConfig,
    k: u32,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<KCliqueRunResult, GpuError> {
    run_k_cliques_workload_traced(g, cfg, k, &CountKernel, collector, tracer).map(|(r, _)| r)
}

/// Runs the simulated k-clique kernel for an arbitrary [`ChunkKernel`]
/// workload — the generic form of [`run_k_cliques_traced`], which it
/// implements with [`CountKernel`]. `kernel.emit` fires once per
/// combination passing the `C(k,2)`-edge test, with the ALS-local
/// combination; the per-block partials are merged in canonical work-list
/// order and returned unfinalized. The timing model is untouched.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the layout exceeds the device.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn run_k_cliques_workload_traced<K: ChunkKernel>(
    g: &Graph,
    cfg: &GpuConfig,
    k: u32,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(KCliqueRunResult, K::Partial), GpuError> {
    assert!(k >= 2, "k-cliques need k ≥ 2");
    let spec = &cfg.device;
    tracer.set_device_clock_hz(spec.clock_hz as f64);
    let (als, layout) = {
        let _p = collector.phase("layout");
        let _s = tracer.span("layout", "phase");
        let als = build_als(g);
        let layout = GlobalLayout::build(
            cfg.layout,
            g.n(),
            &als,
            spec.partitions,
            spec.partition_width,
        );
        (als, layout)
    };
    if layout.total_bytes() > spec.global_mem_bytes {
        return Err(GpuError::GraphTooLarge {
            needed: layout.total_bytes(),
            capacity: spec.global_mem_bytes,
        });
    }
    let count_guard = collector.phase("count");
    let count_span = tracer.span("count", "phase");
    // Work list: (als, mode, start, len) blocks over the k-spaces.
    let block_tests = u128::from(cfg.threads_per_block) * u128::from(cfg.tests_per_thread);
    let mut work = Vec::new();
    for (ai, a) in als.iter().enumerate() {
        let space = a.space(k);
        for &mode in a.modes() {
            let total = space.count(mode);
            let mut start = 0u128;
            while start < total {
                let len = block_tests.min(total - start);
                work.push((ai, mode, start, len));
                start += len;
            }
        }
    }

    struct Acc<P> {
        partial: P,
        tests: u128,
        transactions: u64,
        min_transactions: u64,
        compute_cycles: u64,
        cycles: u64,
    }
    let results: Vec<Acc<K::Partial>> = work
        .par_iter()
        .map(|&(ai, mode, start, len)| {
            let a = &als[ai];
            let space = a.space(k);
            let warp = spec.warp_size as usize;
            let warps = u64::from(cfg.threads_per_block / spec.warp_size);
            let mut acc = Acc {
                partial: kernel.identity(),
                tests: 0,
                transactions: 0,
                min_transactions: 0,
                compute_cycles: 0,
                cycles: 0,
            };
            let mut traffic = PartitionTraffic::new(spec);
            let mut lanes: Vec<Vec<u32>> = Vec::with_capacity(warp);
            let mut addrs: Vec<u64> = Vec::with_capacity(warp);
            for range in equal_division(len, warps) {
                if range.len == 0 {
                    continue;
                }
                let mut cur = space.cursor_at(mode, start + range.start);
                let mut remaining = range.len;
                while remaining > 0 {
                    let step = remaining.min(warp as u128) as usize;
                    lanes.clear();
                    for _ in 0..step {
                        let c = cur.current().expect("cursor in range");
                        lanes.push(c.to_vec());
                        let _ = cur.advance();
                    }
                    remaining -= step as u128;
                    acc.tests += step as u128;
                    // Functional test: all C(k,2) pairs adjacent.
                    'lane: for c in &lanes {
                        for i in 0..c.len() {
                            for j in i + 1..c.len() {
                                if !a.edge(g, c[i], c[j]) {
                                    continue 'lane;
                                }
                            }
                        }
                        kernel.emit(&mut acc.partial, g, a, &c[..]);
                    }
                    // Price the C(k,2) load phases.
                    let mut step_tx = 0u32;
                    let mut step_min_tx = 0u32;
                    for i in 0..k as usize {
                        for j in i + 1..k as usize {
                            addrs.clear();
                            for c in &lanes {
                                let (u, v) = (c[i], c[j]);
                                let addr = match layout.kind() {
                                    LayoutKind::Monolithic => {
                                        layout.word_addr(0, a.global_id(u), a.global_id(v))
                                    }
                                    LayoutKind::AlsPartitionAligned => layout.word_addr(ai, u, v),
                                };
                                addrs.push(addr);
                            }
                            let s = warp_transactions(spec.compute_capability, &addrs, 4);
                            traffic.record_all(&s.segment_addrs);
                            step_tx += s.transactions;
                            step_min_tx += (addrs.len() as u32 * 4).div_ceil(128).max(1);
                        }
                    }
                    acc.transactions += u64::from(step_tx);
                    acc.min_transactions += u64::from(step_min_tx);
                    // Compute scales with the number of pair tests per lane.
                    let pair_scale = (u64::from(k) * u64::from(k - 1) / 2).div_ceil(3);
                    let compute = cfg.cost.gpu_step_base_cycles * pair_scale;
                    acc.compute_cycles += compute;
                    acc.cycles += compute
                        + (f64::from(step_tx)
                            * spec.transaction_service_cycles as f64
                            * cfg.cost.gpu_mem_derate)
                            .round() as u64;
                }
            }
            acc
        })
        .collect();

    drop(count_span);
    drop(count_guard);

    let tests: u128 = results.iter().map(|r| r.tests).sum();
    let transactions: u64 = results.iter().map(|r| r.transactions).sum();
    // Makespan over SMs via LPT on block cycles.
    let dispatch_guard = collector.phase("dispatch");
    let dispatch_span = tracer.span("dispatch", "phase");
    let job_sizes: Vec<u64> = results.iter().map(|r| r.cycles).collect();
    let schedule = trigon_sched::lpt(&job_sizes, spec.sm_count);
    let kernel_s = spec.cycles_to_seconds(schedule.makespan()) + spec.kernel_launch_s;
    // Attribution: block i carries work[i]'s ALS and lands on the SM the
    // LPT schedule chose. Instructions scale with the C(k,2) pair tests.
    let pair_scale = (u64::from(k) * u64::from(k - 1) / 2).div_ceil(3);
    let mut profile = ProfileData::new(als.len(), spec.sm_count as usize);
    for ((r, &(ai, ..)), &sm) in results
        .iter()
        .zip(work.iter())
        .zip(schedule.assignment.iter())
    {
        let c = CounterSet {
            tests: r.tests,
            instructions: CounterSet::instructions_for_tests(r.tests).saturating_mul(pair_scale),
            transactions: r.transactions,
            min_transactions: r.min_transactions,
            bank_conflicts: 0,
            compute_cycles: r.compute_cycles,
            mem_cycles: r.cycles - r.compute_cycles,
            blocks: 1,
        };
        profile.record(ai, sm as usize, &c);
    }
    profile
        .devices
        .push(DeviceProfile::new(spec, profile.totals.clone()));
    drop(dispatch_span);
    drop(dispatch_guard);
    let transfer_model = TransferModel::from_spec(spec);
    let transfer_s = transfer_model.transfer_seconds(layout.total_bytes());
    if tracer.enabled() {
        let kernel_start = emit::trace_transfer(
            tracer,
            &transfer_model,
            layout.total_bytes(),
            spec.clock_hz,
            0,
        );
        trigon_sched::trace_schedule(tracer, &schedule, &job_sizes, "kernel", kernel_start);
        for r in &results {
            tracer.record("block.cycles", r.cycles as f64);
        }
    }
    let total_s = kernel_s
        + transfer_s
        + cfg.cost.host_prep_seconds(g.n(), g.m())
        + cfg.cost.gpu_context_init_s;
    if collector.enabled() {
        emit::emit_transfer(collector, &transfer_model, layout.total_bytes());
        collector.add("gpu.transactions", transactions);
        collector.add("gpu.makespan_cycles", schedule.makespan());
        collector.add("gpu.blocks", results.len() as u64);
        collector.gauge("gpu.sm_utilization", emit::sm_utilization(&schedule.loads));
        collector.gauge("gpu.schedule_imbalance", schedule.imbalance());
    }
    // Deterministic reduction: fold block partials in work-list order.
    let blocks = results.len();
    let partial = results
        .into_iter()
        .fold(kernel.identity(), |acc, r| kernel.merge(acc, r.partial));
    Ok((
        KCliqueRunResult {
            cliques: kernel.triangles_in(&partial),
            tests,
            transactions,
            kernel_s,
            total_s,
            blocks,
            profile,
        },
        partial,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcount;
    use trigon_combin::binom;
    use trigon_gpu_sim::DeviceSpec;
    use trigon_graph::gen;

    fn cfg() -> GpuConfig {
        GpuConfig::optimized(DeviceSpec::c1060())
    }

    fn run_k_cliques(g: &Graph, cfg: &GpuConfig, k: u32) -> Result<KCliqueRunResult, GpuError> {
        run_k_cliques_collected(g, cfg, k, &mut Collector::disabled())
    }

    #[test]
    fn k3_matches_triangle_pipeline() {
        let g = gen::gnp(70, 0.12, 3);
        let r = run_k_cliques(&g, &cfg(), 3).unwrap();
        assert_eq!(r.cliques, trigon_graph::triangles::count_edge_iterator(&g));
        assert_eq!(r.tests, crate::count::total_tests(&g));
    }

    #[test]
    fn k4_and_k5_match_cpu_extension() {
        for seed in 0..2u64 {
            let g = gen::gnp(40, 0.25, seed);
            for k in [4u32, 5] {
                let r = run_k_cliques(&g, &cfg(), k).unwrap();
                assert_eq!(
                    r.cliques,
                    kcount::count_k_cliques(&g, k),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn complete_graph_closed_form() {
        let g = gen::complete(12);
        let r = run_k_cliques(&g, &cfg(), 4).unwrap();
        assert_eq!(u128::from(r.cliques), binom(12, 4));
        assert!(r.kernel_s > 0.0);
        assert!(r.transactions > 0);
    }

    #[test]
    fn bipartite_has_no_cliques_past_2() {
        let g = gen::complete_bipartite(8, 8);
        assert_eq!(run_k_cliques(&g, &cfg(), 3).unwrap().cliques, 0);
        assert_eq!(run_k_cliques(&g, &cfg(), 4).unwrap().cliques, 0);
        // k = 2 cliques are edges.
        assert_eq!(run_k_cliques(&g, &cfg(), 2).unwrap().cliques, 64);
    }

    #[test]
    fn larger_k_issues_more_traffic_per_test() {
        // C(5,2) = 10 pair loads per combination vs C(3,2) = 3: the
        // per-test transaction rate must grow accordingly (kernel seconds
        // would be confounded by SM utilization at this size).
        let g = gen::gnp(50, 0.2, 1);
        let k3 = run_k_cliques(&g, &cfg(), 3).unwrap();
        let k5 = run_k_cliques(&g, &cfg(), 5).unwrap();
        let tx_per_test_3 = k3.transactions as f64 / k3.tests as f64;
        let tx_per_test_5 = k5.transactions as f64 / k5.tests as f64;
        assert!(
            tx_per_test_5 > 2.0 * tx_per_test_3,
            "k5 {tx_per_test_5:.2} vs k3 {tx_per_test_3:.2} transactions/test"
        );
    }

    #[test]
    fn naive_layout_also_counts_exactly() {
        let g = gen::gnp(50, 0.2, 2);
        let naive = run_k_cliques(&g, &GpuConfig::naive(DeviceSpec::c1060()), 4).unwrap();
        assert_eq!(naive.cliques, kcount::count_k_cliques(&g, 4));
    }

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn rejects_k1() {
        let g = gen::path(3);
        let _ = run_k_cliques(&g, &cfg(), 1);
    }
}
