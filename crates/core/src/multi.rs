//! Multi-device fleet execution: shard the ALS decomposition across a
//! [`FleetSpec`] roster, run each shard through the single-device
//! simulator, price the interconnect, and reduce the partial counts.
//!
//! The design rests on the ALS exactness theorem the whole paper builds
//! on: every triangle lives inside exactly one adjacent level set, so a
//! partition of the ALS list is a partition of the triangles, and the
//! per-device partial counts sum (with `wrapping_add`, which is
//! commutative and associative on `u64`) to a total that is
//! **bit-identical to the serial count regardless of device count or
//! reduction order**. The reduction here still folds in canonical
//! device-index order, so even a hypothetical non-commutative
//! accumulator would be deterministic.
//!
//! Two-level §VI scheduling: the *outer* instance is
//! [`trigon_fleet::plan_shards`] — heterogeneity-aware LPT of ALS jobs
//! across devices, capacity-gated by Eq. 1 per device; the *inner*
//! instance is the existing per-SM schedule inside each shard's
//! [`gpu_exec`] run, untouched.
//!
//! A fleet of **one** device with no device loss delegates verbatim to
//! [`gpu_exec::run_workload_traced`] on the caller's tracer — the trace and the
//! report (minus the `fleet` section) are byte-identical to a plain
//! single-device run by construction. With two or more devices each
//! shard runs against a private sub-tracer; its SM spans are harvested
//! onto per-device [`Track::DeviceSm`] lanes, shifted past the
//! contended H2D upload and the D2D boundary exchange, and its
//! histograms are merged into the fleet trace.

use crate::als::{build_als, Als};
use crate::gpu_exec::{self, GpuConfig, GpuError, GpuRunResult};
use crate::report::{FleetDeviceEntry, FleetSection};
use crate::workload::{ChunkKernel, CountKernel};
use trigon_fleet::{
    plan_shards, reassign_lost, seconds_to_cycles, FleetSpec, Interconnect, LossPlan, ShardJob,
};
use trigon_gpu_sim::{DeviceSpec, ProfileData, TransferModel};
use trigon_graph::Graph;
use trigon_telemetry::{AttrValue, Collector, Level, Tracer, Track};

/// Runs the simulated kernel across a fleet of devices.
///
/// Returns the aggregate [`GpuRunResult`] (for a one-device fleet: the
/// verbatim single-device result) plus the [`FleetSection`] describing
/// the sharding, the interconnect cycles, and the per-device partials.
///
/// `loss` injects deterministic device failures at shard start; orphaned
/// ALS jobs migrate to the survivors via the online Graham step. At
/// least one device always survives.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when no device can hold some shard (at
/// planning time against the byte estimate, or at layout time against
/// the exact Eq. 1 footprint).
pub fn run_fleet(
    g: &Graph,
    fleet: &FleetSpec,
    base: &GpuConfig,
    loss: Option<LossPlan>,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, FleetSection), GpuError> {
    run_fleet_workload(g, fleet, base, loss, &CountKernel, collector, tracer)
        .map(|(r, _, section)| (r, section))
}

/// Runs an arbitrary [`ChunkKernel`] workload across a fleet of devices —
/// the generic form of [`run_fleet`], which it implements with
/// [`CountKernel`].
///
/// The shard partials are merged in canonical device-index order via
/// [`ChunkKernel::merge`] but *not* finalized; the caller runs
/// [`ChunkKernel::finalize`] once on the returned partial.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when no device can hold some shard (at
/// planning time against the byte estimate, or at layout time against
/// the exact Eq. 1 footprint).
pub fn run_fleet_workload<K: ChunkKernel>(
    g: &Graph,
    fleet: &FleetSpec,
    base: &GpuConfig,
    loss: Option<LossPlan>,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, K::Partial, FleetSection), GpuError> {
    let devices = fleet.devices();
    let lost = loss.map(|l| l.targets(devices.len())).unwrap_or_default();

    if devices.len() == 1 {
        // One device, and LossPlan::targets never kills the last
        // survivor: delegate verbatim so the trace and report stay
        // byte-identical to a plain single-device run.
        debug_assert!(lost.is_empty());
        let mut cfg = base.clone();
        cfg.device = devices[0].clone();
        let (r, partial) = gpu_exec::run_workload_traced(g, &cfg, kernel, collector, tracer)?;
        let als = build_als(g);
        let section = single_device_section(&als, fleet, &cfg.device, &r);
        return Ok((r, partial, section));
    }

    let als = build_als(g);
    run_fleet_workload_with_als(g, &als, fleet, base, loss, kernel, collector, tracer)
}

/// Runs a [`ChunkKernel`] workload across a fleet over a caller-supplied
/// ALS subset — the entry point the cluster tier uses to run one node's
/// partition through the fleet layer. A one-device fleet runs the
/// subset directly on the single-device executor (chunk-level fault
/// plans pass through, exactly as in a plain run); a larger fleet
/// shards the subset with the usual outer-LPT plan.
///
/// The subset must preserve the global ALS order (the D2D
/// boundary-exchange model reads consecutive same-component pairs).
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when no device can hold some shard.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_workload_with_als<K: ChunkKernel>(
    g: &Graph,
    als: &[Als],
    fleet: &FleetSpec,
    base: &GpuConfig,
    loss: Option<LossPlan>,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, K::Partial, FleetSection), GpuError> {
    let devices = fleet.devices();
    let lost = loss.map(|l| l.targets(devices.len())).unwrap_or_default();

    if devices.len() == 1 {
        debug_assert!(lost.is_empty());
        let mut cfg = base.clone();
        cfg.device = devices[0].clone();
        let (r, partial) =
            gpu_exec::run_workload_traced_with_als(g, als, &cfg, kernel, collector, tracer)?;
        let section = single_device_section(als, fleet, &cfg.device, &r);
        return Ok((r, partial, section));
    }

    // ---- Outer §VI instance: plan ALS shards across the roster. ----
    tracer.set_device_clock_hz(devices[0].clock_hz as f64);
    let (jobs, mut plan) = {
        let _p = collector.phase("plan");
        let mut span = tracer.span("plan", "phase");
        span.attr("devices", devices.len());
        let jobs: Vec<ShardJob> = als
            .iter()
            .map(|a| {
                let bits = a.size_bits();
                ShardJob {
                    weight: u64::try_from(bits).unwrap_or(u64::MAX),
                    bytes: u64::try_from(bits / 8 + 1).unwrap_or(u64::MAX),
                }
            })
            .collect();
        let plan = plan_shards(&jobs, devices).map_err(|e| GpuError::GraphTooLarge {
            needed: e.needed,
            capacity: e.capacity,
        })?;
        (jobs, plan)
    };

    // ---- Device loss: reshard orphans onto survivors (online Graham). ----
    let mut reassigned = 0;
    if !lost.is_empty() {
        for &d in &lost {
            tracer.instant_at("fleet.device_lost", Track::DevicePcie(d as u32), 0);
        }
        reassigned = reassign_lost(&mut plan, &jobs, &lost);
    }

    let alive: Vec<bool> = (0..devices.len()).map(|d| !lost.contains(&d)).collect();
    let active: Vec<usize> = (0..devices.len())
        .filter(|&d| alive[d] && plan.assignment.contains(&d))
        .collect();
    let links = active.len().max(1);

    // ---- D2D boundary exchange: consecutive ALS of one component share
    // a BFS level; when they land on different devices the downstream
    // device receives the shared level's S-UTM adjacency. ----
    let mut d2d_cycles_in = vec![0u64; devices.len()];
    let mut d2d_bytes_in = vec![0u64; devices.len()];
    for j in 1..als.len() {
        if als[j].component != als[j - 1].component {
            continue;
        }
        let (src, dst) = (plan.assignment[j - 1], plan.assignment[j]);
        if src == dst {
            continue;
        }
        let shared = u64::from(als[j].a());
        let bytes = shared * shared.saturating_sub(1) / 2 / 8 + 1;
        let sm = TransferModel::from_spec(&devices[src]);
        let dm = TransferModel::from_spec(&devices[dst]);
        d2d_cycles_in[dst] += Interconnect::d2d_cycles(&sm, &dm, bytes, devices[dst].clock_hz);
        d2d_bytes_in[dst] += bytes;
    }

    // ---- Run each shard; harvest its trace onto fleet lanes. ----
    struct Shard {
        device: usize,
        als: usize,
        weight: u64,
        result: GpuRunResult,
        h2d_cycles: u64,
        d2d_cycles: u64,
        end_cycles: u64,
    }
    let dispatch_guard = collector.phase("dispatch");
    let dispatch_span = tracer.span("dispatch", "phase");
    let mut shards: Vec<Shard> = Vec::with_capacity(active.len());
    let mut partials: Vec<K::Partial> = Vec::with_capacity(active.len());
    for &d in &active {
        let shard_als: Vec<Als> = als
            .iter()
            .enumerate()
            .filter(|&(j, _)| plan.assignment[j] == d)
            .map(|(_, a)| a.clone())
            .collect();
        let mut dcfg = base.clone();
        dcfg.device = devices[d].clone();
        dcfg.faults = None;
        let sub = if tracer.enabled() {
            Tracer::with_clock(Level::Trace, tracer.clock())
        } else {
            Tracer::disabled()
        };
        let (r, shard_partial) = gpu_exec::run_workload_traced_with_als(
            g,
            &shard_als,
            &dcfg,
            kernel,
            &mut Collector::disabled(),
            &sub,
        )?;
        partials.push(shard_partial);

        let model = TransferModel::from_spec(&devices[d]);
        let clock = devices[d].clock_hz;
        // The sub-run priced its own (uncontended) upload and started its
        // kernel right after it; re-derive that end with the exact `ceil`
        // formula of `trigon_gpu_sim::emit` so the shift is gap-free.
        let internal_end = seconds_to_cycles(model.transfer_seconds(r.layout_bytes), clock);
        let h2d = Interconnect::h2d_cycles(&model, r.layout_bytes, links, clock);
        let d2d = d2d_cycles_in[d];
        let shift = h2d + d2d - internal_end;
        if tracer.enabled() {
            let du = d as u32;
            tracer.device_span(
                "H2D transfer",
                "pcie",
                Track::DevicePcie(du),
                0,
                h2d,
                &[
                    ("bytes", AttrValue::UInt(r.layout_bytes)),
                    ("links", AttrValue::UInt(links as u64)),
                    ("bandwidth_Bps", AttrValue::UInt(model.bandwidth)),
                    ("latency_s", AttrValue::Float(model.latency_s)),
                ],
            );
            if d2d > 0 {
                tracer.device_span(
                    "D2D exchange",
                    "pcie",
                    Track::DevicePcie(du),
                    h2d,
                    d2d,
                    &[("bytes", AttrValue::UInt(d2d_bytes_in[d]))],
                );
            }
            harvest_shard_trace(tracer, &sub, du, shift);
        }
        let end_cycles = h2d + d2d + r.kernel_cycles;
        shards.push(Shard {
            device: d,
            als: shard_als.len(),
            weight: plan.loads[d],
            result: r,
            h2d_cycles: h2d,
            d2d_cycles: d2d,
            end_cycles,
        });
    }
    drop(dispatch_span);
    drop(dispatch_guard);

    // ---- Deterministic reduction, canonical device-index order.
    // `partials` was pushed in ascending `active` order, so the fold
    // visits shards in device-index order regardless of workload. ----
    let partial = partials
        .into_iter()
        .fold(kernel.identity(), |acc, p| kernel.merge(acc, p));
    let triangles = kernel.triangles_in(&partial);
    let tests: u128 = shards.iter().map(|s| s.result.tests).sum();

    // ---- Fleet section + aggregate result. ----
    let makespan_cycles = shards.iter().map(|s| s.end_cycles).max().unwrap_or(0);
    let h2d_sum: u64 = shards.iter().map(|s| s.h2d_cycles).sum();
    let d2d_sum: u64 = shards.iter().map(|s| s.d2d_cycles).sum();
    let compute_sum: u64 = shards.iter().map(|s| s.result.kernel_cycles).sum();
    let mean_end = if shards.is_empty() {
        0.0
    } else {
        shards.iter().map(|s| s.end_cycles as f64).sum::<f64>() / shards.len() as f64
    };
    let imbalance = if mean_end > 0.0 {
        makespan_cycles as f64 / mean_end
    } else {
        1.0
    };
    let per_device: Vec<FleetDeviceEntry> = (0..devices.len())
        .map(|d| {
            let shard = shards.iter().find(|s| s.device == d);
            FleetDeviceEntry {
                device: devices[d].name.to_string(),
                lost: lost.contains(&d),
                als: shard.map_or(0, |s| s.als),
                weight: shard.map_or(0, |s| s.weight),
                layout_bytes: shard.map_or(0, |s| s.result.layout_bytes),
                h2d_cycles: shard.map_or(0, |s| s.h2d_cycles),
                d2d_cycles: shard.map_or(0, |s| s.d2d_cycles),
                kernel_cycles: shard.map_or(0, |s| s.result.kernel_cycles),
                end_cycles: shard.map_or(0, |s| s.end_cycles),
                triangles: shard.map_or(0, |s| s.result.triangles),
            }
        })
        .collect();
    let section = FleetSection {
        spec: fleet.to_string(),
        devices: devices.len(),
        lost_devices: lost.len(),
        reassigned_als: reassigned,
        links,
        makespan_cycles,
        compute_cycles: compute_sum,
        h2d_cycles: h2d_sum,
        d2d_cycles: d2d_sum,
        imbalance,
        per_device,
    };

    if collector.enabled() {
        collector.add("fleet.devices", devices.len() as u64);
        collector.add("fleet.lost", lost.len() as u64);
        collector.add("fleet.reassigned_als", reassigned as u64);
        collector.add("fleet.h2d_cycles", h2d_sum);
        collector.add("fleet.d2d_cycles", d2d_sum);
        collector.add("fleet.makespan_cycles", makespan_cycles);
        collector.gauge("fleet.imbalance", imbalance);
    }

    let kernel_weight: u64 = compute_sum.max(1);
    let camping_factor = if compute_sum > 0 {
        shards
            .iter()
            .map(|s| s.result.camping_factor * s.result.kernel_cycles as f64)
            .sum::<f64>()
            / kernel_weight as f64
    } else {
        1.0
    };
    let sm_utilization = if compute_sum > 0 {
        shards
            .iter()
            .map(|s| s.result.sm_utilization * s.result.kernel_cycles as f64)
            .sum::<f64>()
            / kernel_weight as f64
    } else {
        1.0
    };
    let kernel_cycles = shards
        .iter()
        .map(|s| s.result.kernel_cycles)
        .max()
        .unwrap_or(0);
    let kernel_s = shards
        .iter()
        .map(|s| s.result.kernel_s)
        .fold(0.0f64, f64::max);
    // The fleet's transfer critical path: slowest device's contended
    // upload plus its boundary exchange, in its own clock domain.
    let transfer_s = shards
        .iter()
        .map(|s| devices[s.device].cycles_to_seconds(s.h2d_cycles + s.d2d_cycles))
        .fold(0.0f64, f64::max);
    let host_s = base.cost.host_prep_seconds(g.n(), g.m());
    let context_s = base.cost.gpu_context_init_s;

    // ---- Aggregate profile. Shard-local ALS attribution remaps to
    // global ALS indices through the same `plan.assignment` filter
    // order that built each `shard_als`; per-SM counters merge
    // index-wise; per-device entries concatenate in ascending device
    // order (each shard run pushed exactly one). Counters were priced
    // before dispatch, so this aggregate is bit-identical to the
    // single-device profile of the same plan regardless of loss. ----
    let n_sm = shards
        .iter()
        .map(|s| s.result.profile.per_sm.len())
        .max()
        .unwrap_or(0);
    let mut profile = ProfileData::new(als.len(), n_sm);
    for s in &shards {
        let globals: Vec<usize> = (0..als.len())
            .filter(|&j| plan.assignment[j] == s.device)
            .collect();
        for (local, c) in s.result.profile.per_als.iter().enumerate() {
            if let Some(&gj) = globals.get(local) {
                profile.record_als(gj, c);
            }
        }
        for (i, c) in s.result.profile.per_sm.iter().enumerate() {
            profile.per_sm[i].merge(c);
        }
        profile
            .devices
            .extend(s.result.profile.devices.iter().cloned());
    }

    let aggregate = GpuRunResult {
        triangles,
        tests,
        transactions: shards.iter().map(|s| s.result.transactions).sum(),
        camping_factor,
        kernel_cycles,
        kernel_s,
        transfer_s,
        host_s,
        context_s,
        total_s: kernel_s + transfer_s + host_s + context_s,
        blocks: shards.iter().map(|s| s.result.blocks).sum(),
        layout_bytes: shards.iter().map(|s| s.result.layout_bytes).sum(),
        schedule_imbalance: imbalance,
        makespan_cycles,
        sm_utilization,
        faults: None,
        profile,
    };
    Ok((aggregate, partial, section))
}

/// Re-emits a shard sub-trace onto fleet device `d`'s lanes: SM spans,
/// instants, and counter samples shift by `shift` cycles (past the
/// contended upload and boundary exchange); the sub-run's host phases
/// and uncontended PCIe span are dropped — the fleet path emits its
/// own; histograms merge.
fn harvest_shard_trace(tracer: &Tracer, sub: &Tracer, d: u32, shift: u64) {
    for s in sub.spans() {
        if let Track::Sm(i) = s.track {
            let args: Vec<(&str, AttrValue)> = s
                .args
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            tracer.device_span(
                &s.name,
                &s.cat,
                Track::DeviceSm(d, i),
                s.start + shift,
                s.dur,
                &args,
            );
        }
    }
    for i in sub.instants() {
        match i.track {
            Track::Sm(m) => tracer.instant_at(&i.name, Track::DeviceSm(d, m), i.at + shift),
            Track::Pcie => tracer.instant_at(&i.name, Track::DevicePcie(d), i.at + shift),
            _ => {}
        }
    }
    for c in sub.counters() {
        if let Track::Sm(m) = c.track {
            tracer.counter(&c.name, Track::DeviceSm(d, m), c.at + shift, c.value);
        }
    }
    tracer.absorb_histograms(sub);
}

/// The fleet section of a one-device fleet: derived from the verbatim
/// single-device result over the given ALS list (uncontended H2D, no
/// D2D, no loss).
fn single_device_section(
    als: &[Als],
    fleet: &FleetSpec,
    device: &DeviceSpec,
    r: &GpuRunResult,
) -> FleetSection {
    let weight: u64 = als
        .iter()
        .map(|a| u64::try_from(a.size_bits()).unwrap_or(u64::MAX))
        .sum();
    let model = TransferModel::from_spec(device);
    let h2d = seconds_to_cycles(model.transfer_seconds(r.layout_bytes), device.clock_hz);
    let end = h2d + r.kernel_cycles;
    FleetSection {
        spec: fleet.to_string(),
        devices: 1,
        lost_devices: 0,
        reassigned_als: 0,
        links: 1,
        makespan_cycles: end,
        compute_cycles: r.kernel_cycles,
        h2d_cycles: h2d,
        d2d_cycles: 0,
        imbalance: 1.0,
        per_device: vec![FleetDeviceEntry {
            device: device.name.to_string(),
            lost: false,
            als: als.len(),
            weight,
            layout_bytes: r.layout_bytes,
            h2d_cycles: h2d,
            d2d_cycles: 0,
            kernel_cycles: r.kernel_cycles,
            end_cycles: end,
            triangles: r.triangles,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_graph::{gen, triangles};

    fn fleet(spec: &str) -> FleetSpec {
        FleetSpec::parse(spec).unwrap()
    }

    fn count_on(g: &Graph, spec: &str, loss: Option<LossPlan>) -> (GpuRunResult, FleetSection) {
        let base = GpuConfig::optimized(DeviceSpec::c2050());
        run_fleet(
            g,
            &fleet(spec),
            &base,
            loss,
            &mut Collector::disabled(),
            &Tracer::disabled(),
        )
        .unwrap()
    }

    #[test]
    fn fleet_counts_match_serial_across_sizes() {
        let g = gen::gnp(300, 0.05, 3);
        let expect = triangles::count_edge_iterator(&g);
        for spec in [
            "1xC2050",
            "2xC2050",
            "4xC2050",
            "2xC2050,1xC1060",
            "8xC1060",
        ] {
            let (r, section) = count_on(&g, spec, None);
            assert_eq!(r.triangles, expect, "{spec}");
            assert_eq!(
                section
                    .per_device
                    .iter()
                    .fold(0u64, |acc, d| acc.wrapping_add(d.triangles)),
                expect,
                "{spec} partials"
            );
        }
    }

    #[test]
    fn device_loss_reshards_and_keeps_the_count() {
        let g = gen::gnp(250, 0.06, 9);
        let expect = triangles::count_edge_iterator(&g);
        let (r, section) = count_on(&g, "4xC2050", Some(LossPlan::new(2, 11)));
        assert_eq!(r.triangles, expect);
        assert_eq!(section.lost_devices, 2);
        for d in &section.per_device {
            if d.lost {
                assert_eq!(d.als, 0, "lost devices run nothing");
                assert_eq!(d.triangles, 0);
            }
        }
    }

    #[test]
    fn multi_device_shortens_the_outer_makespan() {
        // Strong scaling on a graph with many components: 4 devices must
        // beat 1 on the simulated fleet makespan.
        let g = gen::community_ring(2400, 120, 0.25, 2, 4);
        let (_, one) = count_on(&g, "1xC2050", None);
        let (_, four) = count_on(&g, "4xC2050", None);
        assert!(
            four.makespan_cycles < one.makespan_cycles,
            "4 devices {} !< 1 device {}",
            four.makespan_cycles,
            one.makespan_cycles
        );
        assert!(four.d2d_cycles > 0 || four.h2d_cycles > 0);
    }

    #[test]
    fn fleet_trace_lands_on_per_device_lanes() {
        let g = gen::gnp(220, 0.06, 5);
        let tracer = Tracer::new();
        let base = GpuConfig::optimized(DeviceSpec::c2050());
        run_fleet(
            &g,
            &fleet("2xC2050"),
            &base,
            None,
            &mut Collector::disabled(),
            &tracer,
        )
        .unwrap();
        let spans = tracer.spans();
        let fleet_sm = spans
            .iter()
            .filter(|s| matches!(s.track, Track::DeviceSm(_, _)))
            .count();
        let fleet_pcie = spans
            .iter()
            .filter(|s| matches!(s.track, Track::DevicePcie(_)))
            .count();
        assert!(fleet_sm > 0, "kernel spans on fleet SM lanes");
        assert!(fleet_pcie >= 2, "one H2D span per active device");
        assert!(
            !spans
                .iter()
                .any(|s| matches!(s.track, Track::Sm(_) | Track::Pcie)),
            "no spans may leak onto the single-device lanes"
        );
        // Kernel spans start strictly after their device's H2D upload.
        for s in &spans {
            if let Track::DeviceSm(d, _) = s.track {
                let h2d = spans
                    .iter()
                    .find(|p| p.track == Track::DevicePcie(d) && p.name == "H2D transfer")
                    .expect("H2D span");
                assert!(s.start >= h2d.dur, "kernel before upload finished");
            }
        }
    }
}
