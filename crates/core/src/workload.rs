//! The `ChunkKernel` workload abstraction over the §V–§VII pipeline.
//!
//! The paper's pipeline — §V split into adjacent level sets, §VI LPT
//! block dispatch, §VII per-ALS combination kernel — is triangle-specific
//! only at the *last* step: the per-combination test and the accumulator
//! it feeds. §VII itself names clustering coefficient and transitivity as
//! applications of the same enumeration. This module factors that last
//! step into a trait, [`ChunkKernel`]: per-ALS compute producing a
//! commutative, associatively-reducible *partial* (a count, a per-vertex
//! accumulator, an edge-support array, a triangle list) plus a
//! deterministic merge. Everything upstream — layout, capacity checks,
//! warp pricing, fault injection and recovery, fleet sharding, tracing —
//! is workload-agnostic and routes through the trait, so each workload
//! inherits the whole execution stack.
//!
//! Four kernels ship:
//!
//! * [`CountKernel`] — the original triangle count (`Partial = u64`);
//!   bit-identical to the pre-trait pipeline.
//! * [`EnumerateKernel`] — §VII listing mode: every triangle exactly
//!   once, as canonical `u < v < w` global triples.
//! * [`ClusteringKernel`] — per-vertex triangle counts, from which the
//!   clustering coefficients `2·tᵢ / (dᵢ(dᵢ−1))` and the global
//!   transitivity `3T / wedges` follow.
//! * [`KTrussKernel`] — per-edge triangle support, the input of the
//!   [`k_truss_from_support`] peeling loop.
//!
//! # The contract
//!
//! A kernel must satisfy three laws, relied on by the executor:
//!
//! 1. **Purity** — [`ChunkKernel::emit`] depends only on its arguments;
//!    the same combination always contributes the same update.
//! 2. **Commutative, associative merge** — [`ChunkKernel::merge`] over
//!    any grouping/order of the same per-ALS partials yields a partial
//!    that is *semantically* equal; partials whose in-memory order can
//!    vary (e.g. triangle lists) are canonicalized by
//!    [`ChunkKernel::finalize`] before use, making the end-to-end result
//!    bit-identical across serial, parallel, simulated-GPU, and fleet
//!    execution.
//! 3. **Merge determinism** — the executors always fold partials in a
//!    canonical order (block order, shard order), so even a merge that is
//!    only commutative *after* `finalize` reduces deterministically.

use std::collections::VecDeque;

use crate::als::{build_als, Als};
use crate::count::count_als_fast;
use crate::error::Error;
use trigon_graph::Graph;

/// The analyses the pipeline can run — the CLI's `--workload` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Exact triangle count (the paper's headline workload).
    Triangles,
    /// `k`-clique count over the widened combination spaces (§III).
    KCliques(u32),
    /// Per-vertex clustering coefficients + global transitivity (§VII).
    Clustering,
    /// `k`-truss decomposition by iterative support peeling.
    KTruss(u32),
    /// Triangle enumeration: every triangle listed exactly once.
    Enumerate,
}

impl Workload {
    /// Parses a CLI workload name; `k` feeds the parameterized workloads
    /// (default 4 for both `kcount` and `ktruss`).
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] on an unknown name.
    pub fn parse(name: &str, k: Option<u32>) -> Result<Self, Error> {
        match name {
            "triangles" | "tri" => Ok(Workload::Triangles),
            "kcount" | "cliques" | "kcliques" => Ok(Workload::KCliques(k.unwrap_or(4))),
            "clustering" | "cc" => Ok(Workload::Clustering),
            "ktruss" | "truss" => Ok(Workload::KTruss(k.unwrap_or(4))),
            "enumerate" | "enum" | "list" => Ok(Workload::Enumerate),
            other => Err(Error::bad_config(format!(
                "unknown workload {other:?} (expected triangles|kcount|clustering|ktruss|enumerate)"
            ))),
        }
    }

    /// The canonical CLI/JSON name.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Triangles => "triangles",
            Workload::KCliques(_) => "kcount",
            Workload::Clustering => "clustering",
            Workload::KTruss(_) => "ktruss",
            Workload::Enumerate => "enumerate",
        }
    }
}

/// Per-ALS workload kernel: what the §VII combination enumeration feeds.
///
/// See the [module docs](self) for the purity/commutativity/determinism
/// contract. Implementations are cheap handles (a unit struct or a small
/// index) shared by reference across worker threads.
pub trait ChunkKernel: Sync {
    /// The associatively-reducible per-chunk result.
    type Partial: Clone + Send + Sync + 'static;

    /// The merge identity (an empty partial).
    fn identity(&self) -> Self::Partial;

    /// Records one *confirmed* triangle (or `k`-clique) into `p`.
    ///
    /// `combo` holds the combination's **ALS-local** window indices, in
    /// cursor order; kernels needing global vertex ids map through
    /// [`Als::global_id`]. The executor has already verified every pair
    /// is an edge — `emit` never re-tests.
    fn emit(&self, p: &mut Self::Partial, g: &Graph, als: &Als, combo: &[u32]);

    /// The whole-ALS partial, host-computed — must equal the merge of
    /// every per-block [`emit`](Self::emit) walk over the same ALS
    /// (after [`finalize`](Self::finalize)). Used by the sampled
    /// fidelity mode and by fault recovery's host recompute.
    fn compute_als(&self, g: &Graph, als: &Als) -> Self::Partial {
        compute_als_by_walk(self, g, als)
    }

    /// Deterministic, associative merge of two partials.
    #[must_use]
    fn merge(&self, a: Self::Partial, b: Self::Partial) -> Self::Partial;

    /// Applies a deterministic ECC-style corruption — the simulated
    /// device's bit flips on a read of the partial. Must change the
    /// partial for any nonzero `mask` whenever the partial has at least
    /// one slot to corrupt.
    fn corrupt(&self, p: &mut Self::Partial, mask: u64);

    /// Canonicalizes a fully-merged partial (e.g. sorts a triangle
    /// list). Called once, after the final reduction; the default is a
    /// no-op.
    fn finalize(&self, p: &mut Self::Partial) {
        let _ = p;
    }

    /// The triangle count a partial implies — the workload-agnostic
    /// summary the executor reports in
    /// [`GpuRunResult::triangles`](crate::gpu_exec::GpuRunResult).
    fn triangles_in(&self, p: &Self::Partial) -> u64;
}

/// Reference per-ALS compute: the faithful Algorithm 2 walk — every
/// `GenNxtComb` mode stream, each combination edge-tested, survivors
/// emitted. This is the default [`ChunkKernel::compute_als`]; kernels
/// override it with the fast window lister, and the override must agree
/// with this walk (the attribution-set equality the counting pipeline
/// pins per ALS).
pub fn compute_als_by_walk<K: ChunkKernel + ?Sized>(
    kernel: &K,
    g: &Graph,
    als: &Als,
) -> K::Partial {
    let mut p = kernel.identity();
    let space = als.space(3);
    for &mode in als.modes() {
        let mut cur = space.cursor(mode);
        while let Some(c) = cur.current() {
            if als.edge(g, c[0], c[1]) && als.edge(g, c[0], c[2]) && als.edge(g, c[1], c[2]) {
                kernel.emit(&mut p, g, als, c);
            }
            if !cur.advance() {
                break;
            }
        }
    }
    p
}

/// Fast per-ALS triangle listing with the counting pipeline's attribution
/// semantics: calls `f(u, v, w)` (global ids, `u < v < w`) exactly for
/// the triangles [`count_als_fast`] counts in this ALS — a window
/// triangle is attributed here iff it touches the first level, or the
/// ALS is last and the triangle lies entirely in the second level.
pub fn for_each_als_triangle(g: &Graph, als: &Als, mut f: impl FnMut(u32, u32, u32)) {
    for &u in als.window() {
        let u_first = als.in_first(u);
        let nu = g.neighbors(u);
        for &v in nu {
            if v <= u || !als.in_window(v) {
                continue;
            }
            let uv_first = u_first || als.in_first(v);
            let nv = g.neighbors(v);
            let mut i = nu.partition_point(|&x| x <= v);
            let mut j = nv.partition_point(|&x| x <= v);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[i];
                        if als.in_window(w) && (uv_first || als.in_first(w) || als.is_last) {
                            f(u, v, w);
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
}

/// Maps an ALS-local combination to its sorted global triangle.
fn global_triple(als: &Als, combo: &[u32]) -> [u32; 3] {
    let mut t = [
        als.global_id(combo[0]),
        als.global_id(combo[1]),
        als.global_id(combo[2]),
    ];
    t.sort_unstable();
    t
}

/// The original triangle (and `k`-clique) *count* workload.
///
/// `Partial = u64`; `emit` is a bare increment, so the generic executor
/// compiles down to exactly the pre-trait counting loop — bit-identical
/// results at identical cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountKernel;

impl ChunkKernel for CountKernel {
    type Partial = u64;

    fn identity(&self) -> u64 {
        0
    }

    fn emit(&self, p: &mut u64, _g: &Graph, _als: &Als, _combo: &[u32]) {
        *p += 1;
    }

    fn compute_als(&self, g: &Graph, als: &Als) -> u64 {
        count_als_fast(g, als)
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        // Corrupted (unrecovered) partials are arbitrary u64s: wrap
        // instead of overflowing; the no-fault sum is far below the wrap
        // point.
        a.wrapping_add(b)
    }

    fn corrupt(&self, p: &mut u64, mask: u64) {
        *p ^= mask;
    }

    fn triangles_in(&self, p: &u64) -> u64 {
        *p
    }
}

/// §VII listing mode: every triangle exactly once, as canonical
/// `u < v < w` global triples. Merge concatenates; [`finalize`] sorts,
/// so the final list is identical whatever order blocks or shards
/// completed in.
///
/// [`finalize`]: ChunkKernel::finalize
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumerateKernel;

impl ChunkKernel for EnumerateKernel {
    type Partial = Vec<[u32; 3]>;

    fn identity(&self) -> Vec<[u32; 3]> {
        Vec::new()
    }

    fn emit(&self, p: &mut Vec<[u32; 3]>, _g: &Graph, als: &Als, combo: &[u32]) {
        p.push(global_triple(als, combo));
    }

    fn compute_als(&self, g: &Graph, als: &Als) -> Vec<[u32; 3]> {
        let mut p = Vec::new();
        for_each_als_triangle(g, als, |u, v, w| p.push([u, v, w]));
        p
    }

    fn merge(&self, mut a: Vec<[u32; 3]>, mut b: Vec<[u32; 3]>) -> Vec<[u32; 3]> {
        a.append(&mut b);
        a
    }

    fn corrupt(&self, p: &mut Vec<[u32; 3]>, mask: u64) {
        if mask == 0 {
            return;
        }
        if p.is_empty() {
            // A phantom triple: the corruption must be visible even on an
            // empty partial.
            p.push([mask as u32, (mask >> 16) as u32, (mask >> 32) as u32]);
        } else {
            let i = (mask as usize) % p.len();
            p[i][0] ^= mask as u32;
        }
    }

    fn finalize(&self, p: &mut Vec<[u32; 3]>) {
        p.sort_unstable();
    }

    fn triangles_in(&self, p: &Vec<[u32; 3]>) -> u64 {
        p.len() as u64
    }
}

/// Per-vertex triangle counts (`Partial = Vec<u64>`, indexed by global
/// vertex id): each confirmed triangle increments its three corners.
/// Clustering coefficients and transitivity derive from the merged
/// counts via [`clustering_coefficients_from_counts`] and
/// [`transitivity_from_count`].
#[derive(Debug, Clone, Copy)]
pub struct ClusteringKernel {
    n: usize,
}

impl ClusteringKernel {
    /// A kernel sized for `g`'s vertex set.
    #[must_use]
    pub fn new(g: &Graph) -> Self {
        Self { n: g.n() as usize }
    }
}

impl ChunkKernel for ClusteringKernel {
    type Partial = Vec<u64>;

    fn identity(&self) -> Vec<u64> {
        vec![0; self.n]
    }

    fn emit(&self, p: &mut Vec<u64>, _g: &Graph, als: &Als, combo: &[u32]) {
        for v in global_triple(als, combo) {
            p[v as usize] = p[v as usize].wrapping_add(1);
        }
    }

    fn compute_als(&self, g: &Graph, als: &Als) -> Vec<u64> {
        let mut p = self.identity();
        for_each_als_triangle(g, als, |u, v, w| {
            for x in [u, v, w] {
                p[x as usize] = p[x as usize].wrapping_add(1);
            }
        });
        p
    }

    fn merge(&self, mut a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        for (x, y) in a.iter_mut().zip(b) {
            *x = x.wrapping_add(y);
        }
        a
    }

    fn corrupt(&self, p: &mut Vec<u64>, mask: u64) {
        if !p.is_empty() {
            let i = (mask as usize) % p.len();
            p[i] ^= mask;
        }
    }

    fn triangles_in(&self, p: &Vec<u64>) -> u64 {
        p.iter().fold(0u64, |acc, &c| acc.wrapping_add(c)) / 3
    }
}

/// Per-edge triangle support (`Partial = Vec<u64>`, indexed by
/// [`EdgeIndex`] edge id): each confirmed triangle increments its three
/// edges. The merged supports seed the [`k_truss_from_support`] peeling.
#[derive(Debug, Clone)]
pub struct KTrussKernel {
    idx: EdgeIndex,
}

impl KTrussKernel {
    /// A kernel over `g`'s edge index.
    #[must_use]
    pub fn new(g: &Graph) -> Self {
        Self {
            idx: EdgeIndex::build(g),
        }
    }

    /// The edge index the support array is addressed by.
    #[must_use]
    pub fn index(&self) -> &EdgeIndex {
        &self.idx
    }
}

impl ChunkKernel for KTrussKernel {
    type Partial = Vec<u64>;

    fn identity(&self) -> Vec<u64> {
        vec![0; self.idx.len()]
    }

    fn emit(&self, p: &mut Vec<u64>, g: &Graph, als: &Als, combo: &[u32]) {
        let [u, v, w] = global_triple(als, combo);
        for (a, b) in [(u, v), (u, w), (v, w)] {
            let e = self.idx.id(g, a, b);
            p[e] = p[e].wrapping_add(1);
        }
    }

    fn compute_als(&self, g: &Graph, als: &Als) -> Vec<u64> {
        let mut p = self.identity();
        for_each_als_triangle(g, als, |u, v, w| {
            for (a, b) in [(u, v), (u, w), (v, w)] {
                let e = self.idx.id(g, a, b);
                p[e] = p[e].wrapping_add(1);
            }
        });
        p
    }

    fn merge(&self, mut a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
        for (x, y) in a.iter_mut().zip(b) {
            *x = x.wrapping_add(y);
        }
        a
    }

    fn corrupt(&self, p: &mut Vec<u64>, mask: u64) {
        if !p.is_empty() {
            let i = (mask as usize) % p.len();
            p[i] ^= mask;
        }
    }

    fn triangles_in(&self, p: &Vec<u64>) -> u64 {
        p.iter().fold(0u64, |acc, &c| acc.wrapping_add(c)) / 3
    }
}

/// Dense edge ids over a graph's sorted adjacency: undirected edge
/// `(u, v)` with `u < v` gets id `prefix[u] + rank of v among u's
/// neighbors above u` — the order `Graph::edges`-style enumeration
/// visits them in. `O(1)` storage per vertex, `O(log d)` id lookups.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    prefix: Vec<u64>,
}

impl EdgeIndex {
    /// Builds the index for `g`.
    #[must_use]
    pub fn build(g: &Graph) -> Self {
        let n = g.n() as usize;
        let mut prefix = vec![0u64; n + 1];
        for u in 0..n {
            let nu = g.neighbors(u as u32);
            let above = nu.len() - nu.partition_point(|&x| x <= u as u32);
            prefix[u + 1] = prefix[u] + above as u64;
        }
        Self { prefix }
    }

    /// Number of undirected edges indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefix.last().copied().unwrap_or(0) as usize
    }

    /// Whether the graph has no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id of edge `(u, v)`, `u < v`; the edge must exist in `g`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `(u, v)` is not an edge of `g`.
    #[must_use]
    pub fn id(&self, g: &Graph, u: u32, v: u32) -> usize {
        debug_assert!(u < v, "edge ids address (u, v) with u < v");
        let nu = g.neighbors(u);
        let base = nu.partition_point(|&x| x <= u);
        let pos = nu[base..].partition_point(|&x| x < v);
        debug_assert_eq!(nu.get(base + pos), Some(&v), "({u}, {v}) must be an edge");
        self.prefix[u as usize] as usize + pos
    }

    /// All edges in id order: `edges(g)[e]` is the `(u, v)` pair with
    /// [`id`](Self::id)` == e`.
    #[must_use]
    pub fn edges(&self, g: &Graph) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.len());
        for u in 0..g.n() {
            let nu = g.neighbors(u);
            for &v in &nu[nu.partition_point(|&x| x <= u)..] {
                out.push((u, v));
            }
        }
        out
    }
}

/// Outcome of the `k`-truss peeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KTrussResult {
    /// Per-edge survival, indexed by [`EdgeIndex`] id.
    pub alive: Vec<bool>,
    /// Edges in the `k`-truss.
    pub kept: u64,
    /// Edges peeled away.
    pub peeled: u64,
}

/// Peels a support array down to the `k`-truss: repeatedly remove any
/// edge in fewer than `k − 2` surviving triangles, decrementing the
/// support of the two co-edges of each triangle the removal destroys.
/// The worklist is seeded and drained in edge-id order, and the k-truss
/// is unique, so the result is deterministic.
#[must_use]
pub fn k_truss_from_support(g: &Graph, idx: &EdgeIndex, support: &[u64], k: u32) -> KTrussResult {
    let thresh = u64::from(k.saturating_sub(2));
    let m = support.len();
    let mut sup = support.to_vec();
    let mut alive = vec![true; m];
    let edges = idx.edges(g);
    let mut queue: VecDeque<usize> = (0..m).filter(|&e| sup[e] < thresh).collect();
    let mut peeled = 0u64;
    while let Some(e) = queue.pop_front() {
        if !alive[e] {
            continue;
        }
        alive[e] = false;
        peeled += 1;
        let (u, v) = edges[e];
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let (mut i, mut j) = (0, 0);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = nu[i];
                    i += 1;
                    j += 1;
                    let e1 = idx.id(g, u.min(w), u.max(w));
                    let e2 = idx.id(g, v.min(w), v.max(w));
                    // Only a triangle all three of whose edges survive is
                    // destroyed by removing e.
                    if alive[e1] && alive[e2] {
                        sup[e1] = sup[e1].saturating_sub(1);
                        sup[e2] = sup[e2].saturating_sub(1);
                        if sup[e1] < thresh {
                            queue.push_back(e1);
                        }
                        if sup[e2] < thresh {
                            queue.push_back(e2);
                        }
                    }
                }
            }
        }
    }
    let kept = alive.iter().filter(|&&a| a).count() as u64;
    KTrussResult {
        alive,
        kept,
        peeled,
    }
}

/// Convenience: the `k`-truss of `g`, computing supports through the
/// ALS pipeline ([`KTrussKernel`] merged over every level set).
#[must_use]
pub fn k_truss(g: &Graph, k: u32) -> KTrussResult {
    let kern = KTrussKernel::new(g);
    let mut sup = kern.identity();
    for a in build_als(g) {
        sup = kern.merge(sup, kern.compute_als(g, &a));
    }
    k_truss_from_support(g, kern.index(), &sup, k)
}

/// Clustering coefficients from merged per-vertex triangle counts:
/// `cᵢ = 2·tᵢ / (dᵢ(dᵢ−1))`, 0 for degree < 2.
#[must_use]
pub fn clustering_coefficients_from_counts(g: &Graph, local: &[u64]) -> Vec<f64> {
    (0..g.n() as usize)
        .map(|v| {
            let d = g.neighbors(v as u32).len() as u64;
            if d < 2 {
                0.0
            } else {
                2.0 * local[v] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// Mean of a coefficient vector (0 for an empty graph).
#[must_use]
pub fn mean_clustering(cc: &[f64]) -> f64 {
    if cc.is_empty() {
        0.0
    } else {
        cc.iter().sum::<f64>() / cc.len() as f64
    }
}

/// Global transitivity from a triangle count: `3T / wedges`, with
/// `wedges = Σ dᵢ(dᵢ−1)/2`; 0 when the graph has no wedge.
#[must_use]
pub fn transitivity_from_count(g: &Graph, triangles: u64) -> f64 {
    let wedges: u64 = (0..g.n())
        .map(|v| {
            let d = g.neighbors(v).len() as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Order-independent FNV-1a checksum of a *sorted* triple list — the
/// compact fingerprint `RunReport` carries for enumeration runs.
#[must_use]
pub fn triangle_checksum(triples: &[[u32; 3]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for t in triples {
        for &x in t {
            h ^= u64::from(x);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use trigon_graph::{gen, triangles};

    #[test]
    fn workload_parse_roundtrips() {
        for (name, k, expect) in [
            ("triangles", None, Workload::Triangles),
            ("kcount", Some(5), Workload::KCliques(5)),
            ("kcount", None, Workload::KCliques(4)),
            ("clustering", None, Workload::Clustering),
            ("ktruss", Some(3), Workload::KTruss(3)),
            ("enumerate", None, Workload::Enumerate),
        ] {
            let w = Workload::parse(name, k).unwrap();
            assert_eq!(w, expect);
            assert_eq!(Workload::parse(w.label(), k).unwrap(), expect);
        }
        assert!(Workload::parse("frobnicate", None).is_err());
    }

    #[test]
    fn fast_lister_matches_exhaustive_walk_per_als() {
        // The attribution-set equality every override relies on: the
        // fast window lister and the faithful Algorithm 2 walk visit the
        // same triangle set, ALS by ALS.
        for seed in 0..4u64 {
            let g = gen::gnp(60, 0.1, seed);
            let kern = EnumerateKernel;
            for als in build_als(&g) {
                let mut walked = compute_als_by_walk(&kern, &g, &als);
                let mut fast = kern.compute_als(&g, &als);
                walked.sort_unstable();
                fast.sort_unstable();
                assert_eq!(walked, fast, "seed {seed} als {}", als.index);
            }
        }
    }

    #[test]
    fn count_kernel_matches_fast_count() {
        for seed in 0..3u64 {
            let g = gen::gnp(70, 0.1, seed);
            let kern = CountKernel;
            let mut total = kern.identity();
            for als in build_als(&g) {
                // Exhaustive emit walk and the fast override agree.
                assert_eq!(
                    compute_als_by_walk(&kern, &g, &als),
                    kern.compute_als(&g, &als)
                );
                total = kern.merge(total, kern.compute_als(&g, &als));
            }
            assert_eq!(total, triangles::count_brute_force(&g), "seed {seed}");
        }
    }

    #[test]
    fn enumerate_kernel_lists_every_triangle_once() {
        for seed in 0..3u64 {
            let g = gen::gnp(60, 0.12, seed);
            let kern = EnumerateKernel;
            let mut all = kern.identity();
            for als in build_als(&g) {
                all = kern.merge(all, kern.compute_als(&g, &als));
            }
            kern.finalize(&mut all);
            let ours: BTreeSet<(u32, u32, u32)> = all.iter().map(|t| (t[0], t[1], t[2])).collect();
            assert_eq!(ours.len(), all.len(), "no duplicates, seed {seed}");
            let mut reference = BTreeSet::new();
            triangles::list_triangles(&g, |u, v, w| {
                reference.insert((u, v, w));
            });
            assert_eq!(ours, reference, "seed {seed}");
        }
    }

    #[test]
    fn clustering_kernel_matches_local_counts() {
        for seed in 0..3u64 {
            let g = gen::gnp(80, 0.08, seed);
            let kern = ClusteringKernel::new(&g);
            let mut counts = kern.identity();
            for als in build_als(&g) {
                counts = kern.merge(counts, kern.compute_als(&g, &als));
            }
            assert_eq!(counts, triangles::local_counts(&g), "seed {seed}");
            let cc = clustering_coefficients_from_counts(&g, &counts);
            assert_eq!(cc, triangles::clustering_coefficients(&g));
            let t = kern.triangles_in(&counts);
            assert_eq!(t, triangles::count_brute_force(&g));
            assert!((transitivity_from_count(&g, t) - triangles::transitivity(&g)).abs() < 1e-12);
        }
    }

    #[test]
    fn edge_index_roundtrips() {
        let g = gen::gnp(50, 0.15, 1);
        let idx = EdgeIndex::build(&g);
        assert_eq!(idx.len(), g.m());
        let edges = idx.edges(&g);
        for (e, &(u, v)) in edges.iter().enumerate() {
            assert!(u < v);
            assert_eq!(idx.id(&g, u, v), e);
        }
    }

    #[test]
    fn ktruss_kernel_supports_sum_to_3t() {
        let g = gen::gnp(60, 0.12, 2);
        let kern = KTrussKernel::new(&g);
        let mut sup = kern.identity();
        for als in build_als(&g) {
            sup = kern.merge(sup, kern.compute_als(&g, &als));
        }
        let total: u64 = sup.iter().sum();
        assert_eq!(total, 3 * triangles::count_brute_force(&g));
        assert_eq!(kern.triangles_in(&sup), triangles::count_brute_force(&g));
    }

    #[test]
    fn ktruss_on_complete_graph() {
        // Every edge of K6 is in 4 triangles: the whole graph is a
        // 6-truss, and nothing survives k = 7.
        let g = gen::complete(6);
        let six = k_truss(&g, 6);
        assert_eq!(six.kept, 15);
        assert_eq!(six.peeled, 0);
        let seven = k_truss(&g, 7);
        assert_eq!(seven.kept, 0);
        assert_eq!(seven.peeled, 15);
    }

    #[test]
    fn ktruss_cascade_peels_pendant_triangles() {
        // Two K4s sharing one vertex plus a pendant triangle: k = 4
        // keeps exactly the K4 edges.
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 3; // vertices {0,1,2,6} and {3,4,5,6}
            let vs = [base, base + 1, base + 2, 6];
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((vs[i], vs[j]));
                }
            }
        }
        edges.extend([(7, 8), (8, 9), (7, 9), (6, 7)]); // pendant triangle + bridge
        let g = Graph::from_edges(10, &edges).unwrap();
        let r = k_truss(&g, 4);
        assert_eq!(r.kept, 12, "both K4s survive, triangle and bridge peel");
    }

    #[test]
    fn corruption_is_visible_and_deterministic() {
        let g = gen::gnp(40, 0.15, 3);
        let count = CountKernel;
        let mut c = 7u64;
        count.corrupt(&mut c, 0xFF);
        assert_ne!(c, 7);
        let en = EnumerateKernel;
        let mut e: Vec<[u32; 3]> = vec![[1, 2, 3]];
        let mut e2 = e.clone();
        en.corrupt(&mut e, 0xABCD);
        en.corrupt(&mut e2, 0xABCD);
        assert_ne!(e, vec![[1, 2, 3]]);
        assert_eq!(e, e2, "same mask, same corruption");
        let mut empty: Vec<[u32; 3]> = Vec::new();
        en.corrupt(&mut empty, 0xABCD);
        assert!(!empty.is_empty(), "corruption visible on empty partial");
        let cl = ClusteringKernel::new(&g);
        let mut p = cl.identity();
        cl.corrupt(&mut p, 0x1234);
        assert_ne!(p, cl.identity());
    }

    #[test]
    fn checksum_distinguishes_lists() {
        let a = vec![[0u32, 1, 2], [1, 2, 3]];
        let b = vec![[0u32, 1, 2], [1, 2, 4]];
        assert_ne!(triangle_checksum(&a), triangle_checksum(&b));
        assert_eq!(triangle_checksum(&a), triangle_checksum(&a.clone()));
    }
}
