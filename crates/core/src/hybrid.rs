//! Hybrid shared/global execution (§V, Eq. 6).
//!
//! After Algorithm 1 splits the graph, "the threads in the GPU access
//! data from both shared and global memory": chunks whose adjacency fits
//! the 16/48 KB shared memory are staged there and their ALS run at
//! shared-memory latency (paying bank conflicts, Eq. 9), while boundary
//! ALS (spanning two chunks) and ALS inside oversize chunks read global
//! memory as in [`crate::gpu_exec`].
//!
//! The module also evaluates the paper's Eq. 6 — the *naive* pipeline
//! time `τt = μ·τs + ψg·τg` where shared chunks run 30-at-a-time but
//! global chunks serialize — against the LPT makespan schedule, showing
//! what "an intelligent scheduling of the computations" (§V) buys.

use crate::als::{build_als, Als};
use crate::split::{split_graph_collected, SplitConfig, SplitResult};
use crate::timemodel::{eq6_total_time, CostModel};
use crate::workload::{ChunkKernel, CountKernel};
use trigon_gpu_sim::{
    bank_conflict_degree, warp_transactions, CounterSet, DeviceProfile, DeviceSpec, FaultConfig,
    FaultEvent, FaultOutcome, ProfileData, TransferModel,
};
use trigon_graph::Graph;
use trigon_telemetry::{Collector, Tracer, Track};

/// Where one ALS's adjacency is read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Fully inside a shared-memory-resident chunk.
    Shared {
        /// Index of the chunk in the split result.
        chunk: usize,
    },
    /// Spans a chunk boundary or lives in an oversize chunk.
    Global,
}

/// Configuration for a hybrid run.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Device (shared memory budget, SM count, clocks).
    pub device: DeviceSpec,
    /// Calibration constants.
    pub cost: CostModel,
    /// BFS roots tried by the splitter.
    pub max_roots: usize,
    /// Deterministic fault injection. The hybrid kernel is analytic and
    /// its counts are host-side, so only `xfer` faults are meaningful
    /// here; the [`crate::Analysis`] builder rejects the other kinds.
    pub faults: Option<FaultConfig>,
}

impl HybridConfig {
    /// Hybrid run on a device with defaults.
    #[must_use]
    pub fn new(device: DeviceSpec) -> Self {
        Self {
            device,
            cost: CostModel::default(),
            max_roots: 4,
            faults: None,
        }
    }
}

/// Result of a hybrid shared/global run.
#[derive(Debug, Clone)]
pub struct HybridResult {
    /// Exact triangle count.
    pub triangles: u64,
    /// Combination tests accounted.
    pub tests: u128,
    /// ALS served from shared memory.
    pub shared_als: usize,
    /// ALS served from global memory.
    pub global_als: usize,
    /// Chunks of the underlying split.
    pub split: SplitResult,
    /// Kernel seconds under LPT makespan scheduling of all ALS jobs.
    pub kernel_s: f64,
    /// Kernel seconds under the paper's naive Eq. 6 pipeline (shared
    /// rounds + serialized global chunks).
    pub eq6_s: f64,
    /// End-to-end seconds (LPT kernel + transfer + host + context).
    pub total_s: f64,
    /// Fault/recovery accounting, present iff the run was configured
    /// with faults.
    pub faults: Option<FaultOutcome>,
    /// Counter attribution per ALS and per scheduled SM. The shared
    /// tier's transactions are the chunk staging copies (perfectly
    /// coalesced); its bank-conflict counter carries the Eq. 9 extra
    /// serialized accesses of the access pattern; the global tier prices
    /// the sampled coalescing estimate.
    pub profile: ProfileData,
}

/// Classifies every ALS of `g` against a split result.
#[must_use]
pub fn classify_als(als: &[Als], split: &SplitResult) -> Vec<Placement> {
    als.iter()
        .map(|a| {
            let last_level = if a.second.is_empty() {
                a.first_level
            } else {
                a.first_level + 1
            };
            split
                .chunks
                .iter()
                .enumerate()
                .find(|(_, c)| {
                    c.component == a.component
                        && c.fits_shared
                        && c.levels.0 <= a.first_level
                        && last_level <= c.levels.1
                })
                .map_or(Placement::Global, |(i, _)| Placement::Shared { chunk: i })
        })
        .collect()
}

/// Runs the hybrid pipeline while recording phase timings (`split`,
/// `count`), placement counters, and the shared-memory bank-conflict
/// degree of the kernel's access pattern into `collector`.
#[must_use]
pub fn run_hybrid_collected(
    g: &Graph,
    cfg: &HybridConfig,
    collector: &mut Collector,
) -> HybridResult {
    run_hybrid_traced(g, cfg, collector, &Tracer::disabled())
}

/// Runs the hybrid pipeline like [`run_hybrid_collected`], additionally
/// recording time-resolved spans into `tracer`: host `split` and
/// `count` phase spans, the PCIe transfer span, one simulated-time span
/// per LPT-scheduled job on its SM lane, and `chunk.nodes` /
/// `als.tests` histograms of the §V split and ALS workloads.
#[must_use]
pub fn run_hybrid_traced(
    g: &Graph,
    cfg: &HybridConfig,
    collector: &mut Collector,
    tracer: &Tracer,
) -> HybridResult {
    run_hybrid_workload_traced(g, cfg, &CountKernel, collector, tracer).0
}

/// Runs the hybrid pipeline for an arbitrary [`ChunkKernel`] workload —
/// the generic form of [`run_hybrid_traced`], which it implements with
/// [`CountKernel`]. The timing model is workload-independent (it prices
/// the §V shared/global tiers of the paper's triangle kernel); the
/// workload partial is accumulated host-side per ALS in canonical order
/// and returned unfinalized.
#[must_use]
pub fn run_hybrid_workload_traced<K: ChunkKernel>(
    g: &Graph,
    cfg: &HybridConfig,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> (HybridResult, K::Partial) {
    let spec = &cfg.device;
    tracer.set_device_clock_hz(spec.clock_hz as f64);
    let split_cfg = SplitConfig {
        max_roots: cfg.max_roots,
        ..SplitConfig::for_device(spec)
    };
    let split = {
        let mut span = tracer.span("split", "phase");
        let split = split_graph_collected(g, &split_cfg, collector);
        span.attr("chunks", split.chunks.len());
        span.attr("oversize", split.oversize_count);
        split
    };
    if tracer.enabled() {
        for c in &split.chunks {
            tracer.record("chunk.nodes", c.nodes.len() as f64);
        }
    }
    let count_guard = collector.phase("count");
    let count_span = tracer.span("count", "phase");
    let als = build_als(g);
    let placement = classify_als(&als, &split);

    let warp = spec.warp_size as u128;
    // Sub-job grain: the same 64k-test blocks the exhaustive simulator
    // uses, so one big ALS parallelizes across SMs (each block stages its
    // own shared-memory copy of the chunk, as CUDA blocks do).
    let block_tests: u128 = 128 * 512;
    let mut partial = kernel.identity();
    let mut tests = 0u128;
    let mut jobs_cycles: Vec<u64> = Vec::new();
    // Per-job (ALS index, counter bundle) — attributed to SMs after the
    // LPT schedule lands; the job's tests split evenly across its blocks
    // (remainder to the leading blocks) so totals stay exact.
    let mut job_meta: Vec<(usize, CounterSet)> = Vec::new();
    // Eq. 9 conflict degree of the shared-tier access pattern
    // (consecutive words): the extra serialized accesses beyond the
    // conflict-free cost, per load phase.
    let bank_addrs: Vec<u64> = (0..spec.warp_size as u64).map(|l| l * 4).collect();
    let conflict_extra =
        u64::from(bank_conflict_degree(&bank_addrs, spec.shared_banks).saturating_sub(1));
    let mut tau_shared_total = 0.0f64;
    let mut tau_global_total = 0.0f64;
    let mut shared_n = 0usize;
    for (ai, (a, place)) in als.iter().zip(&placement).enumerate() {
        partial = kernel.merge(partial, kernel.compute_als(g, a));
        let t = a.test_count(3);
        tests += t;
        tracer.record("als.tests", t as f64);
        if t == 0 {
            continue;
        }
        let blocks = t.div_ceil(block_tests).max(1);
        let steps_per_block = t.div_ceil(warp).div_ceil(blocks) as u64;
        let base_tests = t / blocks;
        let rem = t % blocks;
        let job_tests = |b: u64| base_tests + u128::from(u128::from(b) < rem);
        match place {
            Placement::Shared { .. } => {
                shared_n += 1;
                // Each block stages the chunk: coalesced copy of the
                // local S-UTM bits into its SM's shared memory.
                let copy_tx = (a.size_bits() / 8).div_ceil(128) as u64;
                let copy = copy_tx * spec.transaction_service_cycles;
                // Shared-tier steps: combination generation still costs,
                // memory at bank latency. The access pattern (broadcast
                // rows + consecutive columns) is conflict-light; charge
                // the conflict-free Eq. 9 cost per load phase.
                let step_cost =
                    cfg.cost.gpu_step_base_shared_cycles + 3 * spec.shared_latency_cycles;
                let per_block = copy + steps_per_block * step_cost;
                tau_shared_total += spec.cycles_to_seconds(per_block * blocks as u64);
                for b in 0..blocks as u64 {
                    jobs_cycles.push(per_block);
                    let jt = job_tests(b);
                    job_meta.push((
                        ai,
                        CounterSet {
                            tests: jt,
                            instructions: CounterSet::instructions_for_tests(jt),
                            transactions: copy_tx,
                            min_transactions: copy_tx,
                            bank_conflicts: conflict_extra * steps_per_block * 3,
                            compute_cycles: steps_per_block * cfg.cost.gpu_step_base_shared_cycles,
                            mem_cycles: copy + steps_per_block * 3 * spec.shared_latency_cycles,
                            blocks: 1,
                        },
                    ));
                }
            }
            Placement::Global => {
                // Global-tier steps: base cost + derated memory service
                // for the transactions a 3-phase warp step issues, priced
                // with the real coalescing engine on a sample step.
                let est_tx_per_step = estimate_tx_per_step(a, spec);
                let mem_step_cycles = (est_tx_per_step
                    * spec.transaction_service_cycles as f64
                    * cfg.cost.gpu_mem_derate)
                    .round() as u64;
                let step_cost = cfg.cost.gpu_step_base_cycles + mem_step_cycles;
                let per_block = steps_per_block * step_cost;
                tau_global_total += spec.cycles_to_seconds(per_block * blocks as u64);
                let tx_per_block = (est_tx_per_step * steps_per_block as f64).round() as u64;
                for b in 0..blocks as u64 {
                    jobs_cycles.push(per_block);
                    let jt = job_tests(b);
                    job_meta.push((
                        ai,
                        CounterSet {
                            tests: jt,
                            instructions: CounterSet::instructions_for_tests(jt),
                            transactions: tx_per_block,
                            min_transactions: 3 * steps_per_block,
                            bank_conflicts: 0,
                            compute_cycles: steps_per_block * cfg.cost.gpu_step_base_cycles,
                            mem_cycles: steps_per_block * mem_step_cycles,
                            blocks: 1,
                        },
                    ));
                }
            }
        }
    }

    // Intelligent scheduling: LPT over all ALS jobs on the SMs.
    let schedule = trigon_sched::lpt(&jobs_cycles, spec.sm_count);
    let mut profile = ProfileData::new(als.len(), spec.sm_count as usize);
    for ((ai, c), &sm) in job_meta.iter().zip(schedule.assignment.iter()) {
        profile.record(*ai, sm as usize, c);
    }
    profile
        .devices
        .push(DeviceProfile::new(spec, profile.totals.clone()));
    let mut kernel_s = spec.cycles_to_seconds(schedule.makespan()) + spec.kernel_launch_s;

    // The paper's naive Eq. 6 pipeline: average per-tier chunk times.
    let global_n = als.len() - shared_n;
    let tau_s = if shared_n > 0 {
        tau_shared_total / shared_n as f64
    } else {
        0.0
    };
    let tau_g = if global_n > 0 {
        tau_global_total / global_n as f64
    } else {
        0.0
    };
    let eq6_s = eq6_total_time(
        shared_n as u64,
        global_n as u64,
        tau_s,
        tau_g,
        spec.sm_count,
    );

    let layout_bytes: u64 = als.iter().map(|a| (a.size_bits() / 8) as u64 + 1).sum();
    let transfer_model = TransferModel::from_spec(spec);
    let mut faults_outcome = cfg.faults.as_ref().map(|_| FaultOutcome::new());
    let mut transfer_s = transfer_model.transfer_seconds(layout_bytes);
    let mut landed = true;
    // Device timeline: jobs start on their SM lanes once the ALS
    // layouts have crossed PCIe (and, under fault injection, past every
    // failed attempt plus its backoff).
    let kernel_start = if let (Some(fc), Some(out)) = (cfg.faults.as_ref(), faults_outcome.as_mut())
    {
        let t = crate::gpu_exec::transfer_with_faults(
            &transfer_model,
            layout_bytes,
            spec,
            fc,
            out,
            tracer,
        );
        transfer_s = t.seconds;
        landed = t.landed;
        t.end_cycles
    } else if tracer.enabled() {
        trigon_gpu_sim::emit::trace_transfer(
            tracer,
            &transfer_model,
            layout_bytes,
            spec.clock_hz,
            0,
        )
    } else {
        0
    };
    let mut cpu_fallback_s = 0.0;
    if landed {
        if tracer.enabled() {
            trigon_sched::trace_schedule(tracer, &schedule, &jobs_cycles, "kernel", kernel_start);
        }
    } else {
        // Transfer retries exhausted: the kernel never launches; the
        // (already host-exact) count is priced at the CPU path instead.
        let out = faults_outcome
            .as_mut()
            .expect("transfer faults imply a fault config");
        out.run_cpu_fallback = true;
        out.record(FaultEvent::RunCpuFallback);
        tracer.instant_at("recovery.cpu_fallback", Track::Pcie, kernel_start);
        kernel_s = 0.0;
        cpu_fallback_s = cfg.cost.cpu_seconds(g.n(), tests);
    }
    let total_s = kernel_s
        + transfer_s
        + cfg.cost.host_prep_seconds(g.n(), g.m())
        + cfg.cost.gpu_context_init_s
        + cpu_fallback_s;

    drop(count_span);
    drop(count_guard);
    if collector.enabled() {
        trigon_gpu_sim::emit_transfer(collector, &transfer_model, layout_bytes);
        collector.add("hybrid.shared_als", shared_n as u64);
        collector.add("hybrid.global_als", global_n as u64);
        collector.add("gpu.makespan_cycles", schedule.makespan());
        collector.gauge(
            "gpu.sm_utilization",
            trigon_gpu_sim::sm_utilization(&schedule.loads),
        );
        // The shared-tier kernel reads one broadcast row word plus
        // consecutive column words per lane; record its Eq. 9 conflict
        // degree (pricing stays conflict-free — this documents why).
        let addrs: Vec<u64> = (0..spec.warp_size as u64).map(|l| l * 4).collect();
        collector.gauge(
            "shared.bank_conflict_degree",
            f64::from(bank_conflict_degree(&addrs, spec.shared_banks)),
        );
    }

    (
        HybridResult {
            triangles: kernel.triangles_in(&partial),
            tests,
            shared_als: shared_n,
            global_als: global_n,
            split,
            kernel_s,
            eq6_s,
            total_s,
            faults: faults_outcome,
            profile,
        },
        partial,
    )
}

/// Cheap per-ALS estimate of warp-step transactions: one sampled step at
/// the start of the Mixed stream (or FirstOnly when Mixed is empty),
/// priced with the real coalescing engine on an S-UTM-row layout.
fn estimate_tx_per_step(a: &Als, spec: &DeviceSpec) -> f64 {
    use trigon_combin::CrossMode;
    let space = a.space(3);
    let mode = if space.count(CrossMode::Mixed) > 0 {
        CrossMode::Mixed
    } else if space.count(CrossMode::FirstOnly) > 0 {
        CrossMode::FirstOnly
    } else if space.count(CrossMode::SecondOnly) > 0 {
        CrossMode::SecondOnly
    } else {
        return 0.0;
    };
    let mut cur = space.cursor(mode);
    let pitch = u64::from(a.size()).div_ceil(8).next_multiple_of(128);
    let mut lanes: Vec<[u32; 3]> = Vec::with_capacity(32);
    while let Some(c) = cur.current() {
        lanes.push([c[0], c[1], c[2]]);
        if lanes.len() == 32 || !cur.advance() {
            break;
        }
    }
    if lanes.is_empty() {
        return 0.0;
    }
    let mut tx = 0u32;
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let addrs: Vec<u64> = lanes
            .iter()
            .map(|c| u64::from(c[i]) * pitch + u64::from(c[j] / 32) * 4)
            .collect();
        tx += warp_transactions(spec.compute_capability, &addrs, 4).transactions;
    }
    f64::from(tx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_graph::{gen, triangles};

    fn cfg() -> HybridConfig {
        HybridConfig::new(DeviceSpec::c1060())
    }

    fn run_hybrid(g: &Graph, cfg: &HybridConfig) -> HybridResult {
        run_hybrid_collected(g, cfg, &mut Collector::disabled())
    }

    #[test]
    fn counts_are_exact() {
        for g in [
            gen::gnp(200, 0.05, 1),
            gen::community_ring(2000, 150, 0.2, 3, 2),
            gen::disjoint_cliques(3, 40),
        ] {
            let r = run_hybrid(&g, &cfg());
            assert_eq!(r.triangles, triangles::count_edge_iterator(&g));
            assert_eq!(r.tests, crate::count::total_tests(&g));
            assert_eq!(r.shared_als + r.global_als, build_als(&g).len());
        }
    }

    #[test]
    fn deep_graph_mostly_shared() {
        // Community ring: chunks of ~150-vertex communities fit the 16 KB
        // shared memory (512-vertex S-UTM capacity), so most ALS should be
        // staged shared.
        let g = gen::community_ring(3000, 150, 0.2, 3, 4);
        let r = run_hybrid(&g, &cfg());
        assert!(
            r.shared_als > r.global_als,
            "shared {} vs global {}",
            r.shared_als,
            r.global_als
        );
    }

    #[test]
    fn wide_graph_goes_global() {
        // A dense G(n, p) with a >512-vertex middle level cannot stage its
        // dominant ALS in 16 KB shared memory.
        let g = gen::gnp(1000, 16.0 / 1000.0, 5);
        let r = run_hybrid(&g, &cfg());
        assert!(r.global_als >= 1);
        assert!(r.split.oversize_count >= 1);
    }

    #[test]
    fn lpt_beats_eq6_when_globals_serialize() {
        // Eq. 6 serializes the ψg global chunks; LPT overlaps them across
        // SMs — with several global ALS the makespan must win.
        let g = gen::gnp(900, 16.0 / 900.0, 7);
        let r = run_hybrid(&g, &cfg());
        if r.global_als >= 2 {
            assert!(
                r.kernel_s <= r.eq6_s,
                "LPT {:.4}s should not lose to Eq.6 {:.4}s",
                r.kernel_s,
                r.eq6_s
            );
        }
    }

    #[test]
    fn hybrid_beats_all_global_on_deep_graphs() {
        // When most ALS stage in shared memory, the hybrid kernel should
        // beat the all-global simulated kernel (τs < τg).
        use crate::gpu_exec::{run as gpu_run, GpuConfig};
        let g = gen::community_ring(2500, 150, 0.25, 3, 21);
        let h = run_hybrid(&g, &cfg());
        let global = gpu_run(&g, &GpuConfig::optimized(DeviceSpec::c1060()).sampled()).unwrap();
        assert!(h.shared_als > h.global_als);
        assert!(
            h.kernel_s < global.kernel_s,
            "hybrid {:.4}s vs all-global {:.4}s",
            h.kernel_s,
            global.kernel_s
        );
        assert_eq!(h.triangles, global.triangles);
    }

    #[test]
    fn classification_consistency() {
        let g = gen::community_ring(1500, 100, 0.25, 2, 9);
        let split_cfg = SplitConfig::for_device(&DeviceSpec::c1060());
        let split = crate::split::split_graph(&g, &split_cfg);
        let als = build_als(&g);
        for (a, p) in als.iter().zip(classify_als(&als, &split)) {
            if let Placement::Shared { chunk } = p {
                let c = &split.chunks[chunk];
                assert!(c.fits_shared);
                assert_eq!(c.component, a.component);
                // Every ALS vertex is inside the chunk.
                for v in a.first.iter().chain(a.second.iter()) {
                    assert!(c.nodes.binary_search(v).is_ok(), "vertex {v} outside chunk");
                }
            }
        }
    }

    #[test]
    fn fermi_shared_capacity_helps() {
        // 48 KB shared (887-vertex S-UTM) stages strictly more ALS than
        // 16 KB (512) on a workload with mid-sized levels.
        let g = gen::community_ring(4000, 250, 0.2, 3, 11);
        let tesla = run_hybrid(&g, &HybridConfig::new(DeviceSpec::c1060()));
        let fermi = run_hybrid(&g, &HybridConfig::new(DeviceSpec::c2050()));
        assert!(fermi.shared_als >= tesla.shared_als);
        assert_eq!(fermi.triangles, tesla.triangles);
    }

    #[test]
    fn collected_run_records_placement_and_phases() {
        let g = gen::community_ring(1500, 100, 0.2, 2, 3);
        let mut c = Collector::new();
        let r = run_hybrid_collected(&g, &cfg(), &mut c);
        assert_eq!(c.counter("hybrid.shared_als"), r.shared_als as u64);
        assert_eq!(c.counter("hybrid.global_als"), r.global_als as u64);
        assert!(c.phase_total("split") > 0.0);
        assert!(c.phase_total("count") > 0.0);
        assert!(c.counter("xfer.bytes") > 0);
        // Consecutive words over 16 banks: a full warp double-covers the
        // banks (degree 2 on C1060; 1 on the 32-bank Fermi parts).
        assert_eq!(c.gauge_value("shared.bank_conflict_degree"), Some(2.0));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let r = run_hybrid(&g, &cfg());
        assert_eq!(r.triangles, 0);
        assert_eq!(r.shared_als, 0);
        assert_eq!(r.global_als, 0);
    }
}
