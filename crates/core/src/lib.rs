//! # trigon-core
//!
//! The primary contribution of *On Analyzing Large Graphs Using GPUs*
//! (Chatterjee, Radhakrishnan, Antonio — IPDPSW 2013), implemented on the
//! substrates of the sibling crates:
//!
//! * [`capacity`] — §IV capacity planning: the largest graph each storage
//!   model fits in each memory (Tables I–II, Eqs. 1–2);
//! * [`als`] — adjacent level sets: the BFS-derived unit Algorithm 2
//!   counts over;
//! * [`split`] — Algorithm 1: splitting a graph into consecutive-level
//!   chunks sized against shared memory (Eq. 5 root selection,
//!   fragmentation objective);
//! * [`count`] — Algorithm 2 triangle counting on the CPU, both the
//!   faithful combination-testing form and a fast ALS reference;
//! * [`intersect`] — the degree-ordered adjacency-intersection backend
//!   (sorted merge / galloping search / `u64` bitmap kernels) raced
//!   against the paper's combination algorithm, bit-identical per ALS;
//! * [`layout`] — the §X data layouts: one monolithic adjacency matrix
//!   (Fig. 8, camping-prone) vs per-ALS duplicated, partition-aligned
//!   blocks (Fig. 9);
//! * [`gpu_exec`] — the simulated GPU kernel: §VIII-D equal-division
//!   thread grids, coalesced global loads, partition accounting, LPT
//!   block dispatch;
//! * [`hybrid`] — the §V shared/global execution split: ALS inside
//!   shared-memory-resident chunks run at bank latency, the rest from
//!   global memory, scheduled by LPT and compared against Eq. 6;
//! * [`timemodel`] — the §V execution-time model `τt = μ·τs + ψg·τg`
//!   (Eq. 6);
//! * [`kcount`] — the §III extensions: `k`-cliques, `k`-independent sets
//!   and connected subgraphs of size `k`;
//! * [`multi`] — the fleet execution path: ALS sharding across a
//!   multi-device roster (planned by `trigon-fleet`), interconnect
//!   pricing, and the deterministic partial-count reduction;
//! * [`cluster`] — the simulated cluster tier above the fleet: node
//!   partitioning (1D by component vs 2D by edge block), ghost-vertex
//!   materialization, and two-tier interconnect pricing;
//! * [`pipeline`] — one-call end-to-end runs producing the reports the
//!   benchmark harness prints;
//! * [`workload`] — the [`ChunkKernel`] trait: the per-ALS workload
//!   abstraction (count, enumeration, clustering, k-truss) every
//!   executor above is generic over;
//! * [`analysis`] — the [`Run`] builder (aliased as [`Analysis`]), the
//!   single entry point every front end drives, returning the unified
//!   [`RunReport`];
//! * [`report`] — the [`RunReport`] schema and its JSON serialization;
//! * [`error`] — the one workspace [`Error`] type with per-variant CLI
//!   exit codes.

#![deny(missing_docs)]

pub mod als;
pub mod analysis;
pub mod capacity;
pub mod cluster;
pub mod count;
pub mod error;
pub mod gpu_exec;
pub mod gpu_kcount;
pub mod hybrid;
pub mod intersect;
pub mod kcount;
pub mod layout;
pub mod multi;
pub mod pipeline;
pub mod report;
pub mod split;
pub mod timemodel;
pub mod workload;

pub use als::{build_als, Als};
pub use analysis::{Analysis, Method, Run};
pub use capacity::{
    max_graph_adjacency, max_graph_sutm, max_graph_utm, table2, table2_fleet, FleetRow, Table2Row,
};
pub use cluster::{run_cluster, run_cluster_workload};
pub use error::Error;
pub use gpu_exec::{GpuConfig, GpuRunResult, SchedulePolicy, WorkDivision};
pub use gpu_kcount::KCliqueRunResult;
pub use hybrid::{HybridConfig, HybridResult, Placement};
pub use intersect::{IntersectKernel, IntersectStats, OrientedCsr};
pub use layout::{GlobalLayout, LayoutKind};
pub use multi::{run_fleet, run_fleet_workload, run_fleet_workload_with_als};
pub use pipeline::{CountMethod, TriangleReport};
pub use report::{
    ClusterNodeEntry, ClusterSection, Eq6Section, FleetDeviceEntry, FleetSection, GpuSection,
    HybridSection, ProfileSection, RunReport, ServingSection, WorkloadSection,
    RUN_REPORT_SCHEMA_VERSION,
};
pub use split::{split_graph, split_graph_collected, Chunk, SplitConfig, SplitResult};
pub use trigon_fleet::{ClusterSpec, FleetSpec, LinkTier, LossPlan, PartitionStrategy};
pub use trigon_gpu_sim::{CounterSet, DeviceProfile, ProfileData, RooflinePoint};
pub use trigon_telemetry::{
    Clock, Collector, Json, Level, ManualClock, MonotonicClock, TraceSummary, Tracer, Track,
};
pub use workload::{
    ChunkKernel, ClusteringKernel, CountKernel, EnumerateKernel, KTrussKernel, Workload,
};
