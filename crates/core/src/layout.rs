//! Global-memory data layouts (§X-A, Figs. 8–9).
//!
//! The naive implementation stores "a single adjacency matrix for the
//! entire graph" (Fig. 8): rows are packed back to back with no segment
//! alignment, and every ALS's warps read the *same* physical rows for
//! their shared level, so concurrently-active warps queue up on the same
//! partitions (camping) and unaligned rows straddle coalescing segments.
//!
//! The optimized layout (Fig. 9) keeps "relevant data for the adjacent
//! level sets separately in different partitions": one local adjacency
//! block per ALS with the shared level *duplicated*, row pitch padded to
//! the 128-byte coalescing segment, and block bases staggered so block
//! `j` starts in partition `j mod p` — the Eq. 11 mapping
//! `Partition_{i % p} ⇐ W_i`.

use crate::als::Als;

/// Which §X layout the simulated kernel reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Fig. 8: one n×n bit matrix, unaligned pitch, shared rows.
    Monolithic,
    /// Fig. 9: per-ALS duplicated blocks, segment-padded pitch, staggered
    /// partition-aligned bases.
    AlsPartitionAligned,
}

/// Descriptor of one stored adjacency block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDesc {
    /// Byte address of the block base in simulated global memory.
    pub base: u64,
    /// Number of (local) vertices the block covers.
    pub local_n: u32,
    /// Row pitch in bytes.
    pub pitch: u64,
}

impl BlockDesc {
    /// Byte size of the block.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        u64::from(self.local_n) * self.pitch
    }
}

/// A concrete placement of the graph's adjacency data in simulated global
/// memory.
#[derive(Debug, Clone)]
pub struct GlobalLayout {
    kind: LayoutKind,
    /// One per ALS for [`LayoutKind::AlsPartitionAligned`]; a single
    /// whole-graph block for [`LayoutKind::Monolithic`].
    blocks: Vec<BlockDesc>,
    /// Total bytes of simulated global memory consumed.
    total_bytes: u64,
}

/// Coalescing segment size rows are padded to in the optimized layout.
const SEGMENT: u64 = 128;

impl GlobalLayout {
    /// Fig. 8 layout: one `n × n` bit matrix based at address 0, with the
    /// row pitch `cudaMallocPitch` would return — padded to 512 bytes.
    ///
    /// That padding is what makes the naive layout camp: a 512-byte pitch
    /// advances exactly two 256-byte partitions per row, so every row
    /// starts in an *even* partition and half the partitions go unused
    /// (§X's Fig. 6 pathology, same mechanism as the matrix-transpose
    /// study the paper builds on).
    #[must_use]
    pub fn monolithic(n: u32) -> Self {
        let pitch = (u64::from(n).div_ceil(8)).next_multiple_of(512);
        let block = BlockDesc {
            base: 0,
            local_n: n,
            pitch,
        };
        Self {
            kind: LayoutKind::Monolithic,
            total_bytes: block.bytes(),
            blocks: vec![block],
        }
    }

    /// Fig. 9 layout: one local bit-matrix block per ALS (shared level
    /// duplicated by construction), pitch padded to the 128-byte segment,
    /// bases staggered over `partitions` partitions of `partition_width`
    /// bytes.
    #[must_use]
    pub fn als_aligned(als: &[Als], partitions: u32, partition_width: u64) -> Self {
        let mut blocks = Vec::with_capacity(als.len());
        let mut cursor = 0u64;
        for (j, a) in als.iter().enumerate() {
            let local_n = a.size();
            // Segment-aligned for coalescing, but an *odd* multiple of the
            // 128-byte segment: consecutive rows then advance half a
            // partition, cycling through all partitions — the diagonal
            // skew of the matrix-transpose work the paper cites.
            let mut pitch =
                (u64::from(local_n).div_ceil(8)).next_multiple_of(SEGMENT.min(partition_width));
            if (pitch / SEGMENT).is_multiple_of(2) {
                pitch += SEGMENT;
            }
            // Align the base to a partition boundary, then advance until it
            // falls in partition j mod p (Eq. 11 stagger).
            cursor = cursor.next_multiple_of(partition_width);
            while (cursor / partition_width) % u64::from(partitions)
                != (j as u64) % u64::from(partitions)
            {
                cursor += partition_width;
            }
            let block = BlockDesc {
                base: cursor,
                local_n,
                pitch,
            };
            cursor += block.bytes();
            blocks.push(block);
        }
        Self {
            kind: LayoutKind::AlsPartitionAligned,
            blocks,
            total_bytes: cursor,
        }
    }

    /// Builds the layout of `kind` for a graph of `n` vertices and its ALS
    /// list, on a device with the given partition geometry.
    #[must_use]
    pub fn build(
        kind: LayoutKind,
        n: u32,
        als: &[Als],
        partitions: u32,
        partition_width: u64,
    ) -> Self {
        match kind {
            LayoutKind::Monolithic => Self::monolithic(n),
            LayoutKind::AlsPartitionAligned => Self::als_aligned(als, partitions, partition_width),
        }
    }

    /// Which layout this is.
    #[must_use]
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Total simulated global-memory bytes consumed — checked against the
    /// device capacity by the pipeline, and the quantity the paper trades
    /// for speed ("data structures with redundant information").
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Block descriptors.
    #[must_use]
    pub fn blocks(&self) -> &[BlockDesc] {
        &self.blocks
    }

    /// Byte address of the 32-bit word holding adjacency bit `(u, v)` for
    /// a thread working on ALS `als_idx`.
    ///
    /// For the monolithic layout, `u`/`v` must be *global* vertex ids (the
    /// caller maps locals via [`Als::global_id`]); for the per-ALS layout
    /// they are local positions within that ALS.
    #[inline]
    #[must_use]
    pub fn word_addr(&self, als_idx: usize, u: u32, v: u32) -> u64 {
        let b = match self.kind {
            LayoutKind::Monolithic => &self.blocks[0],
            LayoutKind::AlsPartitionAligned => &self.blocks[als_idx],
        };
        debug_assert!(u < b.local_n && v < b.local_n);
        b.base + u64::from(u) * b.pitch + u64::from(v / 32) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::build_als;
    use trigon_graph::gen;

    #[test]
    fn monolithic_geometry() {
        let l = GlobalLayout::monolithic(1200);
        assert_eq!(l.blocks().len(), 1);
        // 1200 bits = 150 bytes → cudaMallocPitch-style 512-byte pitch.
        assert_eq!(l.blocks()[0].pitch, 512);
        assert_eq!(l.total_bytes(), 1200 * 512);
        assert_eq!(l.kind(), LayoutKind::Monolithic);
    }

    #[test]
    fn monolithic_rows_camp_on_even_partitions() {
        // The §X pathology: with a 512-byte pitch and 8×256-byte
        // partitions, every short row starts in an even partition.
        let l = GlobalLayout::monolithic(1200);
        for u in 0..1200u32 {
            let p = (l.word_addr(0, u, 0) / 256) % 8;
            assert_eq!(p % 2, 0, "row {u} in odd partition {p}");
        }
    }

    #[test]
    fn aligned_rows_cycle_all_partitions() {
        // The skewed pitch visits every partition across rows.
        let g = gen::gnp(400, 0.05, 7);
        let als = build_als(&g);
        let l = GlobalLayout::als_aligned(&als, 8, 256);
        let (j, biggest) = als
            .iter()
            .enumerate()
            .max_by_key(|(_, a)| a.size())
            .unwrap();
        assert!(biggest.size() > 32, "workload too small for the check");
        let mut seen = [false; 8];
        for u in 0..biggest.size() {
            let p = ((l.word_addr(j, u, 0) / 256) % 8) as usize;
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "partitions visited: {seen:?}");
    }

    #[test]
    fn monolithic_addresses_distinct_rows() {
        let l = GlobalLayout::monolithic(100);
        let a = l.word_addr(0, 3, 64);
        let b = l.word_addr(0, 3, 65);
        assert_eq!(a, b, "same 32-bit word");
        assert_ne!(l.word_addr(0, 3, 96), a, "next word differs");
        assert_eq!(
            l.word_addr(0, 4, 0) - l.word_addr(0, 3, 0),
            l.blocks()[0].pitch
        );
    }

    #[test]
    fn als_blocks_are_staggered_across_partitions() {
        let g = gen::gnp(300, 0.03, 1);
        let als = build_als(&g);
        let l = GlobalLayout::als_aligned(&als, 8, 256);
        assert_eq!(l.blocks().len(), als.len());
        for (j, b) in l.blocks().iter().enumerate() {
            assert_eq!(b.base % 256, 0, "block {j} base unaligned");
            assert_eq!(
                (b.base / 256) % 8,
                (j as u64) % 8,
                "block {j} not in partition j mod p"
            );
            assert_eq!(b.pitch % 128, 0, "block {j} pitch not segment padded");
        }
        // Blocks must not overlap.
        for w in l.blocks().windows(2) {
            assert!(w[0].base + w[0].bytes() <= w[1].base);
        }
    }

    #[test]
    fn redundant_layout_duplicates_shared_levels() {
        // The Fig. 9 trade: every interior level is stored twice (once as
        // a `second`, once as the next ALS's `first`), so the summed block
        // vertex counts exceed |V| whenever there is more than one ALS.
        let g = gen::gnp(400, 0.02, 3);
        let als = build_als(&g);
        assert!(als.len() > 1, "workload should produce several ALS");
        let l = GlobalLayout::als_aligned(&als, 8, 256);
        let stored: u64 = l.blocks().iter().map(|b| u64::from(b.local_n)).sum();
        assert!(
            stored > u64::from(g.n()),
            "stored {stored} vertices for n = {} — no duplication?",
            g.n()
        );
        // And the duplication is exactly the interior levels.
        let interior: u64 = als
            .iter()
            .filter(|a| !a.is_last)
            .map(|a| u64::from(a.b()))
            .sum();
        assert_eq!(stored, u64::from(g.n()) + interior);
    }

    #[test]
    fn word_addresses_stay_inside_blocks() {
        let g = gen::gnp(200, 0.05, 2);
        let als = build_als(&g);
        let l = GlobalLayout::als_aligned(&als, 8, 256);
        for (j, a) in als.iter().enumerate() {
            let b = l.blocks()[j];
            let n = a.size();
            for u in 0..n {
                for v in 0..n {
                    let addr = l.word_addr(j, u, v);
                    assert!(
                        addr >= b.base && addr < b.base + b.bytes(),
                        "addr escapes block: als {j} ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn build_dispatches() {
        let g = gen::path(10);
        let als = build_als(&g);
        let m = GlobalLayout::build(LayoutKind::Monolithic, 10, &als, 8, 256);
        assert_eq!(m.kind(), LayoutKind::Monolithic);
        let o = GlobalLayout::build(LayoutKind::AlsPartitionAligned, 10, &als, 8, 256);
        assert_eq!(o.kind(), LayoutKind::AlsPartitionAligned);
        assert_eq!(o.blocks().len(), als.len());
    }

    #[test]
    fn empty_als_list() {
        let l = GlobalLayout::als_aligned(&[], 8, 256);
        assert_eq!(l.total_bytes(), 0);
        assert!(l.blocks().is_empty());
    }
}
