//! The [`Run`] builder (aliased as [`Analysis`]) — the one entry point
//! of the pipeline.
//!
//! Every way of running the paper's machinery (CPU baselines, naive and
//! primitive-optimized simulated GPU, sampled fidelity, the hybrid
//! shared/global split, multi-device fleets) crossed with every
//! [`Workload`] (triangle count, k-clique count, clustering +
//! transitivity, k-truss, triangle enumeration) is reached through the
//! same builder, and every run returns the same [`RunReport`]:
//!
//! ```
//! use trigon_core::{Method, Run};
//! use trigon_gpu_sim::DeviceSpec;
//! use trigon_graph::gen;
//!
//! let g = gen::gnp(200, 0.05, 1);
//! let report = Run::new(&g)
//!     .method(Method::GpuOptimized)
//!     .device(DeviceSpec::c1060())
//!     .execute()
//!     .unwrap();
//! assert!(report.count > 0);
//! assert!(report.gpu.unwrap().transactions > 0);
//! ```
//!
//! Selecting a workload reuses the whole §V–§VII execution stack — the
//! per-ALS [`ChunkKernel`] is the only thing that changes:
//!
//! ```
//! use trigon_core::{Run, Workload};
//! use trigon_core::report::WorkloadSection;
//! use trigon_graph::gen;
//!
//! let g = gen::watts_strogatz(100, 4, 0.0, 1); // a lattice: clustering 0.5
//! let report = Run::new(&g)
//!     .workload(Workload::Clustering)
//!     .execute()
//!     .unwrap();
//! match report.workload {
//!     WorkloadSection::Clustering { mean_clustering, .. } => {
//!         assert!((mean_clustering - 0.5).abs() < 1e-12);
//!     }
//!     _ => unreachable!(),
//! }
//! ```
//!
//! The builder is also where the multi-device fleet path is switched
//! on: [`Run::fleet`] routes the GPU methods through
//! [`crate::multi::run_fleet_workload`], and [`Run::device_loss`]
//! injects deterministic device failures into that fleet.

use crate::cluster;
use crate::error::Error;
use crate::gpu_exec::{self, GpuConfig};
use crate::gpu_kcount::run_k_cliques_workload_traced;
use crate::hybrid::{run_hybrid_collected, run_hybrid_workload_traced, HybridConfig};
use crate::multi;
use crate::report::{
    Eq6Section, FaultsSection, GpuSection, HybridSection, ProfileSection, RunReport,
    WorkloadSection,
};
use crate::timemodel::CostModel;
use crate::workload::{
    clustering_coefficients_from_counts, k_truss_from_support, mean_clustering,
    transitivity_from_count, triangle_checksum, ChunkKernel, ClusteringKernel, CountKernel,
    EnumerateKernel, KTrussKernel, Workload,
};
use crate::{count, pipeline};
use trigon_fleet::{ClusterSpec, FleetSpec, LossPlan, PartitionStrategy};
use trigon_gpu_sim::{DeviceSpec, FaultConfig, FaultOutcome};
use trigon_graph::Graph;
use trigon_telemetry::{Collector, Level, Tracer};

/// High-level counting method, the builder's main axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Single-thread CPU, faithful Algorithm 2 combination testing.
    CpuExhaustive,
    /// CPU with the fast per-window edge iterator (exact at any scale).
    CpuFast,
    /// CPU degree-ordered adjacency intersection (merge / galloping /
    /// `u64`-bitmap adaptive kernels; see [`crate::intersect`]).
    /// Triangles only; bit-identical counts to every other method.
    CpuIntersect,
    /// Simulated GPU, the paper's naive implementation (monolithic
    /// layout, round-robin dispatch).
    GpuNaive,
    /// Simulated GPU with the §X/§VI primitives (partition-aligned
    /// layout, LPT dispatch).
    GpuOptimized,
    /// [`Method::GpuOptimized`] at sampled fidelity (large graphs).
    GpuSampled,
    /// §V hybrid shared/global execution over the Algorithm 1 split.
    Hybrid,
    /// The adjacency-intersection kernel on the simulated optimized
    /// device: exact per-ALS op counts priced through the counter
    /// profiler (coalesced row scans, scattered galloping probes,
    /// bitmap bank conflicts). Triangles only.
    GpuSimIntersect,
    /// Simulated-GPU k-clique counting (§III extensions).
    KCliques(u32),
}

impl Method {
    /// Every parameterless method, in canonical order — the list sweeps
    /// (e.g. `repro perf`) derive their strategy axis from, so a new
    /// variant shows up in the head-to-head automatically.
    pub const ALL: [Method; 8] = [
        Method::CpuExhaustive,
        Method::CpuFast,
        Method::CpuIntersect,
        Method::GpuNaive,
        Method::GpuOptimized,
        Method::GpuSampled,
        Method::GpuSimIntersect,
        Method::Hybrid,
    ];

    /// Whether the method's work scales with the *combination space*
    /// (Algorithm 2 candidate enumeration) rather than with edges —
    /// infeasible to execute exhaustively at fig11 scales, which is what
    /// the sweep harness filters on.
    #[must_use]
    pub fn enumerates_combinations(&self) -> bool {
        matches!(
            self,
            Method::CpuExhaustive | Method::GpuNaive | Method::GpuOptimized
        )
    }
    /// Parses a CLI method name.
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] for unknown names.
    pub fn parse(name: &str) -> Result<Method, Error> {
        Ok(match name {
            "cpu" | "cpu-exhaustive" => Method::CpuExhaustive,
            "cpu-fast" => Method::CpuFast,
            "cpu-intersect" | "cpu_intersect" => Method::CpuIntersect,
            "gpu-naive" => Method::GpuNaive,
            "gpu-opt" | "gpu-optimized" => Method::GpuOptimized,
            "gpu-sampled" => Method::GpuSampled,
            "gpu-intersect" | "gpu_sim_intersect" | "gpu-sim-intersect" => Method::GpuSimIntersect,
            "hybrid" => Method::Hybrid,
            other => {
                return Err(Error::bad_config(format!("unknown method {other:?}")));
            }
        })
    }

    /// The canonical CLI name of the method.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Method::CpuExhaustive => "cpu",
            Method::CpuFast => "cpu-fast",
            Method::CpuIntersect => "cpu-intersect",
            Method::GpuNaive => "gpu-naive",
            Method::GpuOptimized => "gpu-opt",
            Method::GpuSampled => "gpu-sampled",
            Method::GpuSimIntersect => "gpu-intersect",
            Method::Hybrid => "hybrid",
            Method::KCliques(_) => "kcliques",
        }
    }

    /// Whether the method runs on the simulated device.
    #[must_use]
    pub fn uses_device(&self) -> bool {
        !matches!(
            self,
            Method::CpuExhaustive | Method::CpuFast | Method::CpuIntersect
        )
    }
}

/// Builder for one pipeline run. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Run<'g> {
    graph: &'g Graph,
    workload: Workload,
    method: Method,
    device: DeviceSpec,
    cost: CostModel,
    gpu_override: Option<GpuConfig>,
    level: Level,
    max_roots: usize,
    threads: Option<usize>,
    tracer: Option<Tracer>,
    faults: Option<FaultConfig>,
    fleet: Option<FleetSpec>,
    device_loss: Option<LossPlan>,
    cluster: Option<ClusterSpec>,
    partition: PartitionStrategy,
    node_loss: Option<LossPlan>,
    prebuilt_als: Option<std::sync::Arc<Vec<crate::als::Als>>>,
}

/// The builder's original name, kept as an alias; [`Run`] is the
/// canonical spelling since the workload generalization.
pub type Analysis<'g> = Run<'g>;

impl<'g> Run<'g> {
    /// Starts a builder with defaults: [`Workload::Triangles`] via
    /// [`Method::CpuFast`], the C1060 device, the default cost model,
    /// and standard telemetry.
    #[must_use]
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            workload: Workload::Triangles,
            method: Method::CpuFast,
            device: DeviceSpec::c1060(),
            cost: CostModel::default(),
            gpu_override: None,
            level: Level::Standard,
            max_roots: 4,
            threads: None,
            tracer: None,
            faults: None,
            fleet: None,
            device_loss: None,
            cluster: None,
            partition: PartitionStrategy::Auto,
            node_loss: None,
            prebuilt_als: None,
        }
    }

    /// Supplies prebuilt ALS artifacts (the output of
    /// [`crate::als::build_als`] for this exact graph, behind an `Arc`
    /// so a registry can share one copy across runs). The CPU, single
    /// simulated-device, and fleet executors then skip the per-run
    /// BFS/`LevelMap`/ALS construction and go straight to dispatch;
    /// counts are bit-identical to a cold run. The hybrid, k-clique,
    /// and cluster paths build their own decomposition and ignore this.
    #[must_use]
    pub fn prebuilt_als(mut self, als: std::sync::Arc<Vec<crate::als::Als>>) -> Self {
        self.prebuilt_als = Some(als);
        self
    }

    /// Selects the workload — what the §VII per-ALS kernel computes.
    /// [`Method::KCliques`] implies [`Workload::KCliques`]; everything
    /// else defaults to [`Workload::Triangles`].
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Selects the counting method.
    #[must_use]
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Caps the CPU worker-thread pool for this run (the simulated-GPU
    /// block sweep and the parallel CPU paths). `execute` runs inside a
    /// dedicated pool of this size; without this call the global pool
    /// (one worker per core) is used.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Selects the simulated device (ignored by the CPU methods).
    #[must_use]
    pub fn device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Overrides the calibration constants.
    #[must_use]
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Supplies a fully explicit [`GpuConfig`] for the GPU methods
    /// (its device and cost take precedence over [`Analysis::device`] /
    /// [`Analysis::cost`]).
    #[must_use]
    pub fn gpu_config(mut self, cfg: GpuConfig) -> Self {
        self.gpu_override = Some(cfg);
        self
    }

    /// Sets the telemetry level. [`Level::Off`] skips all collection —
    /// including the extra Eq. 6 prediction pass for GPU runs — leaving
    /// the corresponding report fields empty.
    #[must_use]
    pub fn telemetry(mut self, level: Level) -> Self {
        self.level = level;
        self
    }

    /// BFS roots the splitter tries (hybrid method).
    #[must_use]
    pub fn max_roots(mut self, max_roots: usize) -> Self {
        self.max_roots = max_roots.max(1);
        self
    }

    /// Enables deterministic fault injection with the given plan and
    /// recovery policy. Only device-backed methods accept faults; the
    /// hybrid method accepts `xfer` faults only (its kernel is analytic
    /// and its counts are host-side, so ECC/abort/stall have nothing to
    /// corrupt). [`Analysis::run`] rejects unsupported combinations with
    /// [`Error::BadConfig`].
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Runs the GPU methods across a multi-device fleet instead of the
    /// single [`Analysis::device`]: ALS shards are planned across the
    /// roster by the outer §VI instance, the interconnect is priced,
    /// and the partial counts reduce deterministically. A one-device
    /// fleet behaves exactly like a plain run on that device. Only the
    /// GPU methods accept a fleet; [`Analysis::run`] rejects the rest
    /// with [`Error::BadConfig`].
    #[must_use]
    pub fn fleet(mut self, fleet: FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Injects deterministic device loss into the fleet run: the plan's
    /// targets die at shard start and their ALS migrate to the
    /// survivors. Requires [`Analysis::fleet`] or [`Analysis::cluster`]
    /// (for a cluster the plan is applied inside every node's fleet).
    #[must_use]
    pub fn device_loss(mut self, loss: LossPlan) -> Self {
        self.device_loss = Some(loss);
        self
    }

    /// Runs the GPU methods across a simulated multi-node cluster: the
    /// node partitioner (1D by component vs 2D by edge block) assigns
    /// every ALS to a node, each node's partition runs through its own
    /// device fleet, and inter-node traffic (partition uplinks,
    /// ghost-vertex exchanges) is priced on the two-tier interconnect.
    /// A one-node cluster behaves exactly like a plain fleet run on
    /// that node's roster. Mutually exclusive with [`Analysis::fleet`];
    /// only the GPU methods accept a cluster.
    #[must_use]
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Selects the cluster partition layout; defaults to
    /// [`PartitionStrategy::Auto`] (predicted communication-volume cost
    /// picks). Ignored without [`Analysis::cluster`].
    #[must_use]
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = strategy;
        self
    }

    /// Injects deterministic node loss into the cluster run: the plan's
    /// targets die at partition time and their ALS migrate to surviving
    /// nodes. Requires [`Analysis::cluster`].
    #[must_use]
    pub fn node_loss(mut self, loss: LossPlan) -> Self {
        self.node_loss = Some(loss);
        self
    }

    /// Supplies an explicit [`Tracer`] for span-level tracing. The run
    /// records into it (when its level allows) and the report returns
    /// it as [`RunReport::tracer`] alongside a [`RunReport::trace`]
    /// summary. Without this call, a tracer is created from the
    /// builder's telemetry level — so `.telemetry(Level::Trace)` alone
    /// turns tracing on.
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Runs the pipeline. Alias of [`Run::execute`], kept as the
    /// pre-workload spelling.
    ///
    /// # Errors
    ///
    /// As [`Run::execute`].
    pub fn run(self) -> Result<RunReport, Error> {
        self.execute()
    }

    /// Runs the configured workload through the configured method and
    /// returns the unified report.
    ///
    /// # Errors
    ///
    /// [`Error::GraphTooLarge`] when a GPU layout exceeds the device,
    /// [`Error::BadConfig`] for invalid configuration (bad block shape,
    /// `k < 2`, zero threads, unsupported workload/method/fault
    /// combinations).
    pub fn execute(self) -> Result<RunReport, Error> {
        match self.threads {
            Some(0) => Err(Error::bad_config("threads must be at least 1")),
            Some(t) => rayon::ThreadPool::new(t).install(|| self.execute_inner()),
            None => self.execute_inner(),
        }
    }

    fn execute_inner(mut self) -> Result<RunReport, Error> {
        // Method::KCliques predates Workload::KCliques; fold it in so
        // both spellings hit the same path.
        let workload = match (self.workload, self.method) {
            (Workload::Triangles, Method::KCliques(k)) => Workload::KCliques(k),
            (w, _) => w,
        };
        match workload {
            Workload::KCliques(k) | Workload::KTruss(k) if k < 2 => {
                return Err(Error::bad_config(format!(
                    "the {} workload needs k >= 2, got {k}",
                    workload.label()
                )));
            }
            Workload::KCliques(_)
                if !self.method.uses_device() || self.method == Method::Hybrid =>
            {
                return Err(Error::bad_config(
                    "the kcount workload runs on the simulated device; pick a \
                     gpu-* method",
                ));
            }
            _ => {}
        }
        if matches!(self.method, Method::CpuIntersect | Method::GpuSimIntersect)
            && !matches!(workload, Workload::Triangles)
        {
            return Err(Error::bad_config(
                "the intersection methods count triangles only; pick a combination \
                 method for other workloads",
            ));
        }
        if let Some(fc) = self.faults.as_ref() {
            let spec = fc.plan.spec();
            match self.method {
                Method::CpuExhaustive | Method::CpuFast | Method::CpuIntersect => {
                    return Err(Error::bad_config(
                        "fault injection requires a simulated-device method (gpu-*, hybrid)",
                    ));
                }
                Method::KCliques(_) => {
                    return Err(Error::bad_config(
                        "fault injection is not supported on the k-clique path",
                    ));
                }
                Method::Hybrid if spec.ecc + spec.abort + spec.stall > 0 => {
                    return Err(Error::bad_config(
                        "hybrid runs support only xfer faults (the hybrid kernel is \
                         analytic; there are no device chunk results to corrupt)",
                    ));
                }
                _ => {}
            }
            if matches!(workload, Workload::KCliques(_)) {
                return Err(Error::bad_config(
                    "fault injection is not supported on the k-clique path",
                ));
            }
        }
        if let Some(fleet) = self.fleet.as_ref() {
            if fleet.is_empty() {
                return Err(Error::bad_config("a fleet needs at least one device"));
            }
            if !matches!(
                self.method,
                Method::GpuNaive
                    | Method::GpuOptimized
                    | Method::GpuSampled
                    | Method::GpuSimIntersect
            ) {
                return Err(Error::bad_config(
                    "a device fleet requires a gpu-* method (the fleet path shards \
                     the simulated kernel)",
                ));
            }
            if matches!(workload, Workload::KCliques(_)) {
                return Err(Error::bad_config(
                    "the kcount workload is single-device; drop the fleet",
                ));
            }
            if self.faults.is_some() && fleet.len() > 1 {
                return Err(Error::bad_config(
                    "chunk-level fault injection is single-device; use a one-device \
                     fleet with it, or --device-loss for fleet-level faults",
                ));
            }
        } else if self.device_loss.is_some() && self.cluster.is_none() {
            return Err(Error::bad_config(
                "device loss requires a device fleet (or cluster) to lose devices from",
            ));
        }
        if let Some(cluster) = self.cluster.as_ref() {
            if cluster.is_empty() {
                return Err(Error::bad_config("a cluster needs at least one node"));
            }
            if self.fleet.is_some() {
                return Err(Error::bad_config(
                    "a cluster and a fleet are mutually exclusive; the cluster spec \
                     already carries each node's device roster",
                ));
            }
            if !matches!(
                self.method,
                Method::GpuNaive
                    | Method::GpuOptimized
                    | Method::GpuSampled
                    | Method::GpuSimIntersect
            ) {
                return Err(Error::bad_config(
                    "a cluster requires a gpu-* method (the cluster path shards \
                     the simulated kernel across nodes)",
                ));
            }
            if matches!(workload, Workload::KCliques(_)) {
                return Err(Error::bad_config(
                    "the kcount workload is single-device; drop the cluster",
                ));
            }
            if self.faults.is_some() && cluster.nodes().iter().any(|f| f.len() > 1) {
                return Err(Error::bad_config(
                    "chunk-level fault injection on a cluster needs single-device \
                     nodes; use --node-loss or --device-loss for coarser faults",
                ));
            }
        } else if self.node_loss.is_some() {
            return Err(Error::bad_config(
                "node loss requires a cluster to lose nodes from",
            ));
        }
        let tracer = self
            .tracer
            .take()
            .unwrap_or_else(|| Tracer::with_level(self.level));
        let mut collector = Collector::with_clock(self.level, tracer.clock());
        let g = self.graph;
        let t0 = collector.clock().now_ns();
        let mut run_span = tracer.span("run", "run");
        run_span.attr("method", self.method.label());
        run_span.attr("n", u64::from(g.n()));
        run_span.attr("m", g.m() as u64);
        let device_name =
            self.method
                .uses_device()
                .then(|| match (self.cluster.as_ref(), self.fleet.as_ref()) {
                    (Some(c), _) => c.to_string(),
                    (None, Some(f)) if f.len() > 1 => f.to_string(),
                    (None, Some(f)) => f.devices()[0].name.to_string(),
                    (None, None) => self
                        .gpu_override
                        .as_ref()
                        .map_or(self.device.name, |c| c.device.name)
                        .to_string(),
                });

        let mut report = match workload {
            Workload::Triangles => {
                if matches!(self.method, Method::CpuIntersect | Method::GpuSimIntersect) {
                    // Same Partial, different per-ALS compute: the
                    // intersection kernel rides the identical executors.
                    self.run_method_kernel(
                        &crate::intersect::IntersectKernel,
                        true,
                        &mut collector,
                        &tracer,
                    )?
                    .0
                } else {
                    self.run_method_kernel(&CountKernel, true, &mut collector, &tracer)?
                        .0
                }
            }
            Workload::KCliques(k) => {
                // The widened C(k,2)-test kernel has its own executor
                // (combination spaces of order k); CountKernel rides it.
                let cfg = self.gpu_config_for(match self.method {
                    Method::KCliques(_) => Method::GpuOptimized,
                    m => m,
                })?;
                let (r, _) = run_k_cliques_workload_traced(
                    g,
                    &cfg,
                    k,
                    &CountKernel,
                    &mut collector,
                    &tracer,
                )?;
                let mut report = self.base_report(r.cliques, r.tests, r.total_s);
                report.kind = "cliques".into();
                report.k = k;
                report.workload = WorkloadSection::KCount { k };
                report.gpu = Some(GpuSection {
                    transactions: r.transactions,
                    camping_factor: 1.0, // not modeled on the k-clique path
                    kernel_cycles: collector.counter("gpu.makespan_cycles"),
                    kernel_s: r.kernel_s,
                    transfer_s: collector.phase_total("xfer"),
                    host_s: self.cost.host_prep_seconds(g.n(), g.m()),
                    context_s: self.cost.gpu_context_init_s,
                    blocks: r.blocks,
                    layout_bytes: collector.counter("xfer.bytes"),
                    makespan_cycles: collector.counter("gpu.makespan_cycles"),
                    sm_utilization: collector.gauge_value("gpu.sm_utilization").unwrap_or(1.0),
                    schedule_imbalance: collector
                        .gauge_value("gpu.schedule_imbalance")
                        .unwrap_or(1.0),
                });
                report.profile = Some(ProfileSection::new(r.profile));
                report
            }
            Workload::Clustering => {
                let kern = ClusteringKernel::new(g);
                let (mut report, partial) =
                    self.run_method_kernel(&kern, false, &mut collector, &tracer)?;
                let cc = clustering_coefficients_from_counts(g, &partial);
                report.workload = WorkloadSection::Clustering {
                    vertices: cc.len(),
                    mean_clustering: mean_clustering(&cc),
                    transitivity: transitivity_from_count(g, report.count),
                };
                report
            }
            Workload::KTruss(k) => {
                let kern = KTrussKernel::new(g);
                let (mut report, partial) =
                    self.run_method_kernel(&kern, false, &mut collector, &tracer)?;
                let peel = k_truss_from_support(g, kern.index(), &partial, k);
                report.kind = "ktruss_edges".into();
                report.k = k;
                report.count = peel.kept;
                report.workload = WorkloadSection::KTruss {
                    k,
                    edges_initial: g.m() as u64,
                    edges_kept: peel.kept,
                    edges_peeled: peel.peeled,
                };
                report
            }
            Workload::Enumerate => {
                let kern = EnumerateKernel;
                let (mut report, mut partial) =
                    self.run_method_kernel(&kern, false, &mut collector, &tracer)?;
                kern.finalize(&mut partial);
                report.workload = WorkloadSection::Enumerate {
                    triangles: partial.len() as u64,
                    checksum: triangle_checksum(&partial),
                };
                report
            }
        };

        drop(run_span);
        report.device = device_name;
        report.wall_s = collector.clock().now_ns().saturating_sub(t0) as f64 / 1e9;
        report.telemetry = collector;
        report.trace = tracer.enabled().then(|| tracer.summary());
        report.tracer = tracer;
        Ok(report)
    }

    /// Runs `kernel` through the configured method (everything except
    /// the widened k-clique executor), assembling the method-side report
    /// sections; the workload arms of [`Run::execute`] overlay their own
    /// `workload`/`kind`/`count` afterwards.
    fn run_method_kernel<K: ChunkKernel>(
        &self,
        kernel: &K,
        with_eq6: bool,
        collector: &mut Collector,
        tracer: &Tracer,
    ) -> Result<(RunReport, K::Partial), Error> {
        let g = self.graph;
        match self.method {
            Method::CpuExhaustive | Method::CpuFast | Method::CpuIntersect => {
                let cm = match self.method {
                    Method::CpuExhaustive => pipeline::CountMethod::CpuExhaustive,
                    Method::CpuIntersect => pipeline::CountMethod::CpuIntersect,
                    _ => pipeline::CountMethod::CpuFast,
                };
                let (r, partial) = match self.prebuilt_als.as_deref() {
                    Some(als) => pipeline::run_workload_traced_with_als(
                        g, als, cm, &self.cost, kernel, collector, tracer,
                    )?,
                    None => {
                        pipeline::run_workload_traced(g, cm, &self.cost, kernel, collector, tracer)?
                    }
                };
                let mut report = self.base_report(r.triangles, r.tests, r.modeled_s);
                report.profile = Some(ProfileSection::new(r.profile));
                Ok((report, partial))
            }
            Method::GpuNaive
            | Method::GpuOptimized
            | Method::GpuSampled
            | Method::GpuSimIntersect => {
                let mut cfg = self.gpu_config_for(self.method)?;
                let mut fleet_section = None;
                let mut cluster_section = None;
                let (r, partial) = match (self.cluster.as_ref(), self.fleet.as_ref()) {
                    (Some(spec), _) => {
                        cfg.device = spec.nodes()[0].devices()[0].clone();
                        let (r, partial, section) = cluster::run_cluster_workload(
                            g,
                            spec,
                            &cfg,
                            self.partition,
                            self.node_loss,
                            self.device_loss,
                            kernel,
                            collector,
                            tracer,
                        )?;
                        cluster_section = Some(section);
                        (r, partial)
                    }
                    (None, Some(fleet)) => {
                        cfg.device = fleet.devices()[0].clone();
                        let (r, partial, section) = match self.prebuilt_als.as_deref() {
                            Some(als) => multi::run_fleet_workload_with_als(
                                g,
                                als,
                                fleet,
                                &cfg,
                                self.device_loss,
                                kernel,
                                collector,
                                tracer,
                            )?,
                            None => multi::run_fleet_workload(
                                g,
                                fleet,
                                &cfg,
                                self.device_loss,
                                kernel,
                                collector,
                                tracer,
                            )?,
                        };
                        fleet_section = Some(section);
                        (r, partial)
                    }
                    (None, None) => match self.prebuilt_als.as_deref() {
                        Some(als) => gpu_exec::run_workload_traced_with_als(
                            g, als, &cfg, kernel, collector, tracer,
                        )?,
                        None => gpu_exec::run_workload_traced(g, &cfg, kernel, collector, tracer)?,
                    },
                };
                // Eq. 6 models one device; skip the prediction for real
                // multi-device fleets and clusters.
                let one_device = self.fleet.as_ref().is_none_or(|f| f.len() == 1)
                    && self.cluster.as_ref().is_none_or(|c| c.total_devices() == 1);
                let eq6 = if with_eq6 && one_device {
                    self.eq6_prediction(r.kernel_s, &cfg)
                } else {
                    None
                };
                let mut report = self.base_report(r.triangles, r.tests, r.total_s);
                report.gpu = Some(GpuSection {
                    transactions: r.transactions,
                    camping_factor: r.camping_factor,
                    kernel_cycles: r.kernel_cycles,
                    kernel_s: r.kernel_s,
                    transfer_s: r.transfer_s,
                    host_s: r.host_s,
                    context_s: r.context_s,
                    blocks: r.blocks,
                    layout_bytes: r.layout_bytes,
                    makespan_cycles: r.makespan_cycles,
                    sm_utilization: r.sm_utilization,
                    schedule_imbalance: r.schedule_imbalance,
                });
                report.eq6 = eq6;
                report.faults = faults_section(cfg.faults.as_ref(), r.faults.as_ref());
                report.fleet = fleet_section;
                report.cluster = cluster_section;
                report.profile = Some(ProfileSection::new(r.profile));
                Ok((report, partial))
            }
            Method::Hybrid => {
                let cfg = HybridConfig {
                    device: self.device.clone(),
                    cost: self.cost,
                    max_roots: self.max_roots,
                    faults: self.faults,
                };
                let (r, partial) = run_hybrid_workload_traced(g, &cfg, kernel, collector, tracer);
                let mut report = self.base_report(r.triangles, r.tests, r.total_s);
                report.faults = faults_section(cfg.faults.as_ref(), r.faults.as_ref());
                report.hybrid = Some(HybridSection {
                    shared_als: r.shared_als,
                    global_als: r.global_als,
                    chunks: r.split.chunks.len(),
                    oversize_chunks: r.split.oversize_count,
                    bank_conflict_degree: collector
                        .gauge_value("shared.bank_conflict_degree")
                        .unwrap_or(1.0),
                });
                report.eq6 = Some(Eq6Section::new(r.eq6_s, r.kernel_s));
                report.profile = Some(ProfileSection::new(r.profile));
                Ok((report, partial))
            }
            Method::KCliques(_) => unreachable!("folded into Workload::KCliques"),
        }
    }

    /// The effective GPU configuration for a GPU-backed method.
    fn gpu_config_for(&self, method: Method) -> Result<GpuConfig, Error> {
        let mut cfg = match &self.gpu_override {
            Some(cfg) => cfg.clone(),
            None => match method {
                Method::GpuNaive => GpuConfig::naive(self.device.clone()),
                Method::GpuSampled => GpuConfig::optimized(self.device.clone()).sampled(),
                Method::GpuSimIntersect => GpuConfig::intersect(self.device.clone()),
                _ => GpuConfig::optimized(self.device.clone()),
            },
        };
        // A substrate override (layout/schedule/block shape) must not
        // silently swap the algorithm back to combination testing.
        if method == Method::GpuSimIntersect {
            cfg.mode = gpu_exec::FidelityMode::Intersect;
        }
        cfg.cost = self.cost;
        if self.faults.is_some() {
            cfg.faults = self.faults;
        }
        if cfg.threads_per_block == 0 || !cfg.threads_per_block.is_multiple_of(cfg.device.warp_size)
        {
            return Err(Error::bad_config(format!(
                "threads_per_block {} must be a positive multiple of the warp size {}",
                cfg.threads_per_block, cfg.device.warp_size
            )));
        }
        Ok(cfg)
    }

    /// Eq. 6 prediction for a pure-GPU run: the pipeline time the paper's
    /// model assigns this graph's Algorithm 1 split on this device,
    /// against the simulated kernel seconds. Skipped (None) when
    /// telemetry is off — it costs an extra analytic pass.
    fn eq6_prediction(&self, simulated_kernel_s: f64, cfg: &GpuConfig) -> Option<Eq6Section> {
        if self.level == Level::Off {
            return None;
        }
        let hybrid_cfg = HybridConfig {
            device: cfg.device.clone(),
            cost: self.cost,
            max_roots: self.max_roots,
            faults: None,
        };
        let est = run_hybrid_collected(self.graph, &hybrid_cfg, &mut Collector::disabled());
        Some(Eq6Section::new(est.eq6_s, simulated_kernel_s))
    }

    fn base_report(&self, count: u64, tests: u128, modeled_s: f64) -> RunReport {
        RunReport {
            method: self.method.label().to_string(),
            device: None,
            n: self.graph.n(),
            m: self.graph.m(),
            kind: "triangles".into(),
            k: 3,
            workload: WorkloadSection::Triangles,
            count,
            tests,
            modeled_s,
            wall_s: 0.0,
            gpu: None,
            hybrid: None,
            eq6: None,
            faults: None,
            fleet: None,
            cluster: None,
            profile: None,
            serving: None,
            trace: None,
            telemetry: Collector::disabled(),
            tracer: Tracer::disabled(),
        }
    }
}

/// Builds the report's faults section from the applied config and the
/// executor's outcome (both present iff the run injected).
fn faults_section(
    fc: Option<&FaultConfig>,
    outcome: Option<&FaultOutcome>,
) -> Option<FaultsSection> {
    let (fc, o) = fc.zip(outcome)?;
    Some(FaultsSection::from_outcome(
        fc.plan.spec().to_string(),
        fc.plan.seed(),
        fc.recovery,
        o,
    ))
}

/// Convenience check used by examples: the exact triangle count via the
/// fast CPU path (no report).
#[must_use]
pub fn quick_triangle_count(g: &Graph) -> u64 {
    count::als_fast(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_graph::{gen, triangles};

    #[test]
    fn builder_methods_agree_with_reference() {
        let g = gen::gnp(120, 0.08, 6);
        let expect = triangles::count_edge_iterator(&g);
        for m in Method::ALL {
            let r = Analysis::new(&g).method(m).run().unwrap();
            assert_eq!(r.count, expect, "{m:?}");
            assert_eq!(r.method, m.label());
            assert!(r.modeled_s > 0.0, "{m:?}");
            assert_eq!(r.kind, "triangles");
        }
    }

    #[test]
    fn prebuilt_als_runs_are_bit_identical_to_cold() {
        let g = gen::gnp(150, 0.06, 8);
        let als = std::sync::Arc::new(crate::als::build_als(&g));
        for m in Method::ALL {
            let cold = Analysis::new(&g).method(m).run().unwrap();
            let warm = Analysis::new(&g)
                .method(m)
                .prebuilt_als(als.clone())
                .run()
                .unwrap();
            assert_eq!(cold.count, warm.count, "{m:?}");
            assert_eq!(cold.tests, warm.tests, "{m:?}");
            assert_eq!(cold.modeled_s, warm.modeled_s, "{m:?}");
        }
        // The fleet path accepts the same prebuilt artifacts.
        let fleet = FleetSpec::parse("2xC2050").unwrap();
        let cold = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .fleet(fleet.clone())
            .run()
            .unwrap();
        let warm = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .fleet(fleet)
            .prebuilt_als(als)
            .run()
            .unwrap();
        assert_eq!(cold.count, warm.count);
        assert_eq!(
            cold.fleet.unwrap().makespan_cycles,
            warm.fleet.unwrap().makespan_cycles
        );
    }

    #[test]
    fn gpu_report_is_fully_populated() {
        let g = gen::gnp(300, 0.05, 2);
        let r = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .device(DeviceSpec::c1060())
            .run()
            .unwrap();
        let gpu = r.gpu.expect("gpu section");
        assert!(gpu.transactions > 0);
        assert!(gpu.camping_factor >= 1.0);
        assert!(gpu.makespan_cycles > 0);
        assert!(gpu.sm_utilization > 0.0 && gpu.sm_utilization <= 1.0 + 1e-9);
        let eq6 = r.eq6.expect("eq6 section");
        assert!(eq6.predicted_s > 0.0);
        assert!(eq6.simulated_s > 0.0);
        assert_eq!(r.device.as_deref(), Some("C1060"));
        assert!(r.telemetry.counter("gpu.transactions") > 0);
        assert!(r.telemetry.phase_total("count") > 0.0);
    }

    #[test]
    fn hybrid_report_has_placement_and_eq6() {
        let g = gen::community_ring(1500, 100, 0.2, 2, 5);
        let r = Analysis::new(&g).method(Method::Hybrid).run().unwrap();
        let h = r.hybrid.expect("hybrid section");
        assert!(h.shared_als + h.global_als > 0);
        assert!(h.chunks > 0);
        let eq6 = r.eq6.expect("eq6 section");
        assert!(eq6.predicted_s > 0.0);
        assert!(r.telemetry.phase_total("split") > 0.0);
    }

    #[test]
    fn kcliques_counts_and_reports() {
        let g = gen::gnp(40, 0.25, 1);
        let r = Analysis::new(&g).method(Method::KCliques(4)).run().unwrap();
        assert_eq!(r.count, crate::kcount::count_k_cliques(&g, 4));
        assert_eq!(r.kind, "cliques");
        assert_eq!(r.k, 4);
        let gpu = r.gpu.expect("gpu section");
        assert!(gpu.transactions > 0);
        assert!(gpu.makespan_cycles > 0);
    }

    #[test]
    fn trace_level_produces_spans_and_summary() {
        let g = gen::gnp(150, 0.06, 4);
        let r = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .telemetry(Level::Trace)
            .run()
            .unwrap();
        let trace = r.trace.expect("trace summary");
        assert!(trace.spans > 0);
        assert!(trace.host_busy_s >= 0.0);
        let dev = trace.device.expect("device timeline");
        assert!(dev.sms > 0);
        assert!(dev.makespan_cycles > 0);
        assert!(r.tracer.enabled());
        assert!(r.tracer.span_count() > 0);
    }

    #[test]
    fn standard_level_records_no_trace() {
        let g = gen::gnp(80, 0.08, 1);
        let r = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .run()
            .unwrap();
        assert!(r.trace.is_none());
        assert_eq!(r.tracer.span_count(), 0);
    }

    #[test]
    fn telemetry_off_still_counts() {
        let g = gen::gnp(100, 0.08, 3);
        let r = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .telemetry(Level::Off)
            .run()
            .unwrap();
        assert_eq!(r.count, triangles::count_edge_iterator(&g));
        assert!(r.eq6.is_none(), "eq6 pass is skipped when telemetry is off");
        assert_eq!(r.telemetry.counter("gpu.transactions"), 0);
        assert!(r.gpu.is_some(), "gpu section comes from the run result");
    }

    #[test]
    fn bad_configs_are_errors_not_panics() {
        let g = gen::path(4);
        let mut cfg = GpuConfig::naive(DeviceSpec::c1060());
        cfg.threads_per_block = 48;
        let err = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .gpu_config(cfg)
            .run()
            .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = Analysis::new(&g)
            .method(Method::KCliques(1))
            .run()
            .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn too_large_graph_maps_to_error() {
        let mut dev = DeviceSpec::c1060();
        dev.global_mem_bytes = 64;
        let g = gen::gnp(100, 0.1, 1);
        let err = Analysis::new(&g)
            .method(Method::GpuNaive)
            .device(dev)
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::GraphTooLarge { .. }));
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn method_parse_roundtrips() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.label()).unwrap(), m);
        }
        // The underscore spellings from the issue tracker also parse.
        assert_eq!(
            Method::parse("cpu_intersect").unwrap(),
            Method::CpuIntersect
        );
        assert_eq!(
            Method::parse("gpu_sim_intersect").unwrap(),
            Method::GpuSimIntersect
        );
        assert!(Method::parse("doulion").is_err());
        assert!(Method::parse("").is_err());
    }
}
