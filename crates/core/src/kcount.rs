//! §III extensions: counting `k`-cliques, `k`-independent sets and
//! connected subgraphs of size `k`.
//!
//! The paper's earlier work (its reference \[5\]) counts these with the
//! same BFS-tree trick Algorithm 2 uses for triangles, "considering nodes
//! only in k adjacent levels in the BFS-tree":
//!
//! * a **`k`-clique** is complete, so its vertices span at most *two*
//!   adjacent levels — the triangle machinery generalizes verbatim
//!   (ALS + mode discipline, `k` instead of 3);
//! * a **connected subgraph of size `k`** spans at most `k` consecutive
//!   levels — windows of `k` levels with "at least one vertex in the
//!   window's first level" visit each candidate exactly once;
//! * a **`k`-independent set** has no edges, hence no level locality: the
//!   BFS restriction does not apply and the count enumerates the full
//!   `C(n, k)` space with §VIII-D equal division. (The paper claims the
//!   BFS trick for independent sets too; that only holds per connected
//!   subgraph constraint, so we document the deviation here and in
//!   DESIGN.md.)

use crate::als::build_als;
use trigon_combin::{CrossMode, LexCombinations};
use trigon_graph::{connected_components, BfsTree, Graph};

/// Counts `k`-cliques via the ALS machinery (each clique spans ≤ 2
/// adjacent BFS levels).
///
/// # Panics
///
/// Panics if `k < 2` (a 1-clique is a vertex; use `g.n()`).
#[must_use]
pub fn count_k_cliques(g: &Graph, k: u32) -> u64 {
    assert!(k >= 2, "k-cliques need k ≥ 2");
    let mut total = 0u64;
    for als in build_als(g) {
        let space = als.space(k);
        let mut modes = vec![CrossMode::FirstOnly, CrossMode::Mixed];
        if als.is_last {
            modes.push(CrossMode::SecondOnly);
        }
        for mode in modes {
            let mut cur = space.cursor(mode);
            while let Some(c) = cur.current() {
                if is_clique_local(g, &als, c) {
                    total += 1;
                }
                if !cur.advance() {
                    break;
                }
            }
        }
    }
    total
}

fn is_clique_local(g: &Graph, als: &crate::als::Als, c: &[u32]) -> bool {
    for i in 0..c.len() {
        for j in i + 1..c.len() {
            if !als.edge(g, c[i], c[j]) {
                return false;
            }
        }
    }
    true
}

/// Counts connected induced-edge subgraphs on `k` vertices (vertex sets
/// whose induced subgraph is connected), using `k`-consecutive-level
/// windows with the "≥ 1 vertex in the first window level" discipline.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn count_connected_subgraphs(g: &Graph, k: u32) -> u64 {
    assert!(k >= 1, "k must be positive");
    let mut total = 0u64;
    for comp in connected_components(g) {
        let tree = BfsTree::new(g, comp[0]);
        let levels = tree.levels();
        for start in 0..levels.len() {
            // Window: levels start .. start+k (exclusive), clamped.
            let end = (start + k as usize).min(levels.len());
            let first: &[u32] = &levels[start];
            let rest: Vec<u32> = levels[start + 1..end].iter().flatten().copied().collect();
            let a = first.len() as u32;
            let n = a + rest.len() as u32;
            if n < k {
                continue;
            }
            // The §III window space: k-subsets touching the first level.
            let space = trigon_combin::WindowSpace::new(a, n, k);
            let global = |p: u32| -> u32 {
                if p < a {
                    first[p as usize]
                } else {
                    rest[(p - a) as usize]
                }
            };
            let mut cur = space.cursor();
            let mut verts = Vec::with_capacity(k as usize);
            while let Some(c) = cur.current() {
                verts.clear();
                verts.extend(c.iter().map(|&p| global(p)));
                if induced_connected(g, &verts) {
                    total += 1;
                }
                if !cur.advance() {
                    break;
                }
            }
        }
    }
    total
}

/// Whether the induced subgraph on `verts` is connected (DFS on ≤ k
/// vertices).
fn induced_connected(g: &Graph, verts: &[u32]) -> bool {
    if verts.is_empty() {
        return false;
    }
    if verts.len() == 1 {
        return true;
    }
    let mut visited = vec![false; verts.len()];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut seen = 1usize;
    while let Some(i) = stack.pop() {
        for (j, vis) in visited.iter_mut().enumerate() {
            if !*vis && g.has_edge(verts[i], verts[j]) {
                *vis = true;
                seen += 1;
                stack.push(j);
            }
        }
    }
    seen == verts.len()
}

/// Counts `k`-independent sets by full enumeration of `C(n, k)` (no BFS
/// locality applies — see the module docs).
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn count_k_independent_sets(g: &Graph, k: u32) -> u64 {
    assert!(k >= 1, "k must be positive");
    let mut total = 0u64;
    let mut lex = LexCombinations::new(g.n(), k);
    'outer: while let Some(c) = lex.next_ref() {
        for i in 0..c.len() {
            for j in i + 1..c.len() {
                if g.has_edge(c[i], c[j]) {
                    continue 'outer;
                }
            }
        }
        total += 1;
    }
    total
}

/// Brute-force references over the full `C(n, k)` space, for validation.
pub mod brute {
    use super::induced_connected;
    use trigon_combin::LexCombinations;
    use trigon_graph::Graph;

    /// Brute-force `k`-clique count.
    #[must_use]
    pub fn k_cliques(g: &Graph, k: u32) -> u64 {
        let mut total = 0u64;
        let mut lex = LexCombinations::new(g.n(), k);
        'outer: while let Some(c) = lex.next_ref() {
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    if !g.has_edge(c[i], c[j]) {
                        continue 'outer;
                    }
                }
            }
            total += 1;
        }
        total
    }

    /// Brute-force connected-subgraph count.
    #[must_use]
    pub fn connected_subgraphs(g: &Graph, k: u32) -> u64 {
        let mut total = 0u64;
        let mut lex = LexCombinations::new(g.n(), k);
        while let Some(c) = lex.next_ref() {
            if induced_connected(g, c) {
                total += 1;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_combin::binom;
    use trigon_graph::gen;

    #[test]
    fn cliques_in_complete_graph() {
        let g = gen::complete(8);
        for k in 2..=5u32 {
            assert_eq!(
                count_k_cliques(&g, k),
                binom(8, u64::from(k)) as u64,
                "k = {k}"
            );
        }
    }

    #[test]
    fn k3_cliques_are_triangles() {
        for seed in 0..4u64 {
            let g = gen::gnp(50, 0.15, seed);
            assert_eq!(
                count_k_cliques(&g, 3),
                trigon_graph::triangles::count_edge_iterator(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn cliques_match_brute_force() {
        for seed in 0..3u64 {
            let g = gen::gnp(28, 0.3, seed);
            for k in 2..=4u32 {
                assert_eq!(
                    count_k_cliques(&g, k),
                    brute::k_cliques(&g, k),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn k2_cliques_are_edges() {
        let g = gen::gnp(40, 0.2, 7);
        assert_eq!(count_k_cliques(&g, 2), g.m() as u64);
    }

    #[test]
    fn connected_subgraphs_match_brute_force() {
        for seed in 0..3u64 {
            let g = gen::gnp(16, 0.25, seed);
            for k in 1..=4u32 {
                assert_eq!(
                    count_connected_subgraphs(&g, k),
                    brute::connected_subgraphs(&g, k),
                    "seed {seed} k {k}"
                );
            }
        }
        // A deep graph exercises real windowing.
        let p = gen::path(12);
        for k in 1..=4u32 {
            // Connected k-subsets of a path are its k-windows: n - k + 1.
            assert_eq!(
                count_connected_subgraphs(&p, k),
                u64::from(12 - k + 1),
                "k {k}"
            );
        }
    }

    #[test]
    fn connected_subgraphs_on_disconnected_graph() {
        let g = gen::disjoint_cliques(2, 5);
        // Each K5: all C(5,j) subsets are connected.
        assert_eq!(count_connected_subgraphs(&g, 3), 2 * binom(5, 3) as u64);
        assert_eq!(count_connected_subgraphs(&g, 5), 2);
        // No size-3 connected set spans the two cliques.
        assert_eq!(count_connected_subgraphs(&g, 1), 10);
    }

    #[test]
    fn independent_sets_known_values() {
        // Complete graph: only k = 1 sets.
        let kg = gen::complete(6);
        assert_eq!(count_k_independent_sets(&kg, 1), 6);
        assert_eq!(count_k_independent_sets(&kg, 2), 0);
        // Edgeless graph: all C(n, k).
        let e = Graph::from_edges(7, &[]).unwrap();
        assert_eq!(count_k_independent_sets(&e, 3), binom(7, 3) as u64);
        // Complete bipartite K_{3,3}: independent pairs live within parts.
        let b = gen::complete_bipartite(3, 3);
        assert_eq!(count_k_independent_sets(&b, 2), 6); // C(3,2)·2
        assert_eq!(count_k_independent_sets(&b, 3), 2); // each whole part
    }

    #[test]
    fn independent_sets_complement_duality() {
        // IS of size k in G = cliques of size k in the complement.
        let g = gen::gnp(14, 0.4, 2);
        let mut comp_edges = Vec::new();
        for u in 0..14u32 {
            for v in u + 1..14 {
                if !g.has_edge(u, v) {
                    comp_edges.push((u, v));
                }
            }
        }
        let comp = Graph::from_edges(14, &comp_edges).unwrap();
        for k in 2..=4u32 {
            assert_eq!(
                count_k_independent_sets(&g, k),
                brute::k_cliques(&comp, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn single_vertex_and_empty() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(count_connected_subgraphs(&g, 1), 1);
        assert_eq!(count_k_independent_sets(&g, 1), 1);
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(count_connected_subgraphs(&empty, 2), 0);
        assert_eq!(count_k_independent_sets(&empty, 1), 0);
        assert_eq!(count_k_cliques(&empty, 2), 0);
    }
}
