//! End-to-end pipeline: graph → BFS/ALS → count, with modeled timing —
//! the entry point the examples and the benchmark harness drive.

use crate::als::Als;
use crate::count;
use crate::error::Error;
use crate::gpu_exec::{self, GpuConfig, GpuRunResult};
use crate::timemodel::CostModel;
use crate::workload::{compute_als_by_walk, ChunkKernel};
use trigon_gpu_sim::{CounterSet, ProfileData};
use trigon_graph::Graph;
use trigon_telemetry::{Collector, Tracer};

/// Which implementation counts the triangles.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // GpuConfig is the common case; boxing would only obscure it
pub enum CountMethod {
    /// The paper's single-thread CPU baseline: faithful Algorithm 2
    /// combination testing. Modeled time = host prep + per-test CPU model.
    CpuExhaustive,
    /// The same ALS decomposition with the fast per-window edge iterator.
    /// Exact at any scale; modeled time still prices the *paper's*
    /// combination-testing CPU implementation (`total_tests`), since this
    /// path exists to make big runs feasible, not to model a different
    /// machine.
    CpuFast,
    /// Degree-ordered adjacency intersection per ALS window (see
    /// [`crate::intersect`]): merge/gallop/bitmap adaptive kernels,
    /// bit-identical counts. `tests` and the modeled time price the
    /// *intersection operations* — the head-to-head the combination
    /// algorithm is raced against.
    CpuIntersect,
    /// Simulated GPU (naive or optimized — see [`GpuConfig`]).
    GpuSim(GpuConfig),
}

/// Outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct TriangleReport {
    /// Vertices.
    pub n: u32,
    /// Edges.
    pub m: usize,
    /// Exact triangle count.
    pub triangles: u64,
    /// Algorithm 2 combination tests (performed or accounted) — or, for
    /// the intersection methods, adjacency-intersection operations.
    pub tests: u128,
    /// Modeled seconds on the paper's hardware (CPU model or GPU sim).
    pub modeled_s: f64,
    /// Actual wall-clock seconds this Rust process spent.
    pub wall_s: f64,
    /// GPU detail when the method was [`CountMethod::GpuSim`].
    pub gpu: Option<GpuRunResult>,
    /// Counter attribution per adjacent level set. CPU methods carry
    /// the host-side test/instruction counters (no SM or memory axis);
    /// GPU methods carry the full simulator profile.
    pub profile: ProfileData,
}

/// The host-executor profile: per-ALS test and instruction counters.
/// CPU runs have no SM, transaction, or cycle axis, but the per-chunk
/// `tests` attribution is the same exact quantity the GPU path prices —
/// the cross-executor invariant the profiler tests pin.
fn cpu_profile(als: &[Als]) -> ProfileData {
    let mut profile = ProfileData::new(als.len(), 0);
    for (i, a) in als.iter().enumerate() {
        let tests = a.test_count(3);
        profile.record_als(
            i,
            &CounterSet {
                tests,
                instructions: CounterSet::instructions_for_tests(tests),
                blocks: 1,
                ..CounterSet::default()
            },
        );
    }
    profile
}

/// Runs the full pipeline for an arbitrary [`ChunkKernel`] workload,
/// recording phase timings and simulator counters into `collector` and
/// time-resolved spans into `tracer` (host `count` span for CPU methods,
/// the full device timeline for GPU methods, and an `als.tests`
/// histogram of per-window workloads on the CPU fast path).
///
/// Returns the timing/count report together with the merged — but *not*
/// finalized — workload partial; the caller runs [`ChunkKernel::finalize`]
/// once after any further (e.g. fleet) merging.
///
/// # Errors
///
/// [`Error::GraphTooLarge`] for GPU runs on graphs exceeding the device.
pub fn run_workload_traced<K: ChunkKernel>(
    g: &Graph,
    method: CountMethod,
    cost: &CostModel,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(TriangleReport, K::Partial), Error> {
    run_workload_impl(g, None, method, cost, kernel, collector, tracer)
}

/// [`run_workload_traced`] over caller-supplied prebuilt ALS — the
/// artifact-cache entry point the serving registry and the benchmark
/// sweeps use to skip the per-run BFS/`LevelMap`/ALS construction. The
/// slice must be exactly what [`crate::als::build_als`] produces for
/// `g` (same order); counts are then bit-identical to the cold path.
///
/// # Errors
///
/// [`Error::GraphTooLarge`] for GPU runs on graphs exceeding the device.
pub fn run_workload_traced_with_als<K: ChunkKernel>(
    g: &Graph,
    als: &[Als],
    method: CountMethod,
    cost: &CostModel,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(TriangleReport, K::Partial), Error> {
    run_workload_impl(g, Some(als), method, cost, kernel, collector, tracer)
}

#[allow(clippy::too_many_lines)]
fn run_workload_impl<K: ChunkKernel>(
    g: &Graph,
    prebuilt: Option<&[Als]>,
    method: CountMethod,
    cost: &CostModel,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(TriangleReport, K::Partial), Error> {
    // Reuse the caller's ALS when supplied, else build per run. The
    // binding lives here so the borrow outlives every arm below.
    let mut built: Vec<Als> = Vec::new();
    fn als_for<'a>(g: &Graph, prebuilt: Option<&'a [Als]>, built: &'a mut Vec<Als>) -> &'a [Als] {
        match prebuilt {
            Some(a) => a,
            None => {
                *built = crate::als::build_als(g);
                built
            }
        }
    }
    let t0 = collector.clock().now_ns();
    let (partial, tests, modeled_s, gpu, profile) = match method {
        CountMethod::CpuExhaustive => {
            let (partial, profile) = {
                let _p = collector.phase("count");
                let _s = tracer.span("count", "phase");
                let als = als_for(g, prebuilt, &mut built);
                let partial = als.iter().fold(kernel.identity(), |acc, a| {
                    kernel.merge(acc, compute_als_by_walk(kernel, g, a))
                });
                (partial, cpu_profile(als))
            };
            let tests = count::total_tests(g);
            let modeled = cost.host_prep_seconds(g.n(), g.m()) + cost.cpu_seconds(g.n(), tests);
            (partial, tests, modeled, None, profile)
        }
        CountMethod::CpuFast => {
            let (partial, tests, profile) = {
                let _p = collector.phase("count");
                let _s = tracer.span("count", "phase");
                let als = als_for(g, prebuilt, &mut built);
                let partial = als.iter().fold(kernel.identity(), |acc, a| {
                    kernel.merge(acc, kernel.compute_als(g, a))
                });
                let tests = count::total_tests(g);
                if tracer.enabled() {
                    for a in als {
                        tracer.record("als.tests", a.test_count(3) as f64);
                    }
                }
                (partial, tests, cpu_profile(als))
            };
            let modeled = cost.host_prep_seconds(g.n(), g.m()) + cost.cpu_seconds(g.n(), tests);
            (partial, tests, modeled, None, profile)
        }
        CountMethod::CpuIntersect => {
            let (partial, ops, profile) = {
                let _p = collector.phase("count");
                let _s = tracer.span("count", "phase");
                let als = als_for(g, prebuilt, &mut built);
                let mut profile = ProfileData::new(als.len(), 0);
                let mut partial = kernel.identity();
                let mut ops = 0u128;
                for (i, a) in als.iter().enumerate() {
                    let stats = crate::intersect::als_stats(g, a);
                    let als_ops = u128::from(stats.ops());
                    ops += als_ops;
                    profile.record_als(
                        i,
                        &CounterSet {
                            tests: als_ops,
                            instructions: CounterSet::instructions_for_intersect_ops(als_ops),
                            blocks: 1,
                            ..CounterSet::default()
                        },
                    );
                    partial = kernel.merge(partial, kernel.compute_als(g, a));
                    if tracer.enabled() {
                        tracer.record("als.intersect_ops", als_ops as f64);
                    }
                }
                (partial, ops, profile)
            };
            let modeled = cost.host_prep_seconds(g.n(), g.m()) + cost.cpu_seconds(g.n(), ops);
            (partial, ops, modeled, None, profile)
        }
        CountMethod::GpuSim(mut cfg) => {
            cfg.cost = *cost;
            let (r, partial) = match prebuilt {
                Some(als) => {
                    gpu_exec::run_workload_traced_with_als(g, als, &cfg, kernel, collector, tracer)?
                }
                None => gpu_exec::run_workload_traced(g, &cfg, kernel, collector, tracer)?,
            };
            let tests = r.tests;
            let total_s = r.total_s;
            let profile = r.profile.clone();
            (partial, tests, total_s, Some(r), profile)
        }
    };
    let triangles = kernel.triangles_in(&partial);
    if collector.enabled() {
        collector.add("pipeline.tests", u64::try_from(tests).unwrap_or(u64::MAX));
        collector.add("pipeline.triangles", triangles);
    }
    Ok((
        TriangleReport {
            n: g.n(),
            m: g.m(),
            triangles,
            tests,
            modeled_s,
            wall_s: collector.clock().now_ns().saturating_sub(t0) as f64 / 1e9,
            gpu,
            profile,
        },
        partial,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CountKernel;
    use trigon_gpu_sim::DeviceSpec;
    use trigon_graph::{gen, triangles};

    fn count_triangles(g: &Graph, method: CountMethod) -> Result<TriangleReport, Error> {
        run_workload_traced(
            g,
            method,
            &CostModel::default(),
            &CountKernel,
            &mut Collector::disabled(),
            &Tracer::disabled(),
        )
        .map(|(r, _)| r)
    }

    #[test]
    fn all_methods_agree_on_counts() {
        let g = gen::gnp(120, 0.08, 6);
        let expect = triangles::count_edge_iterator(&g);
        let methods = [
            CountMethod::CpuExhaustive,
            CountMethod::CpuFast,
            CountMethod::CpuIntersect,
            CountMethod::GpuSim(GpuConfig::naive(DeviceSpec::c1060())),
            CountMethod::GpuSim(GpuConfig::optimized(DeviceSpec::c1060())),
            CountMethod::GpuSim(GpuConfig::optimized(DeviceSpec::c1060()).sampled()),
        ];
        for m in methods {
            let label = format!("{m:?}");
            let r = count_triangles(&g, m).unwrap();
            assert_eq!(r.triangles, expect, "{label}");
            assert!(r.modeled_s > 0.0);
            assert!(r.wall_s >= 0.0);
        }
    }

    #[test]
    fn cpu_paths_report_same_workload() {
        let g = gen::gnp(90, 0.1, 1);
        let a = count_triangles(&g, CountMethod::CpuExhaustive).unwrap();
        let b = count_triangles(&g, CountMethod::CpuFast).unwrap();
        assert_eq!(a.tests, b.tests);
        assert_eq!(a.triangles, b.triangles);
        assert!((a.modeled_s - b.modeled_s).abs() < 1e-12);
    }

    #[test]
    fn gpu_wins_at_size_cpu_wins_small_fig10_shape() {
        // The Fig. 10 crossover: at n = 200 the CPU model wins (context
        // overhead); at n = 1000 the GPU wins clearly.
        let small = gen::gnp(200, 16.0 / 200.0, 3);
        let cs = count_triangles(&small, CountMethod::CpuExhaustive).unwrap();
        let gs = count_triangles(
            &small,
            CountMethod::GpuSim(GpuConfig::optimized(DeviceSpec::c1060())),
        )
        .unwrap();
        assert!(cs.modeled_s < gs.modeled_s, "CPU should win at n=200");

        let big = gen::gnp(1000, 16.0 / 1000.0, 3);
        let cb = count_triangles(&big, CountMethod::CpuFast).unwrap();
        let gb = count_triangles(
            &big,
            CountMethod::GpuSim(GpuConfig::optimized(DeviceSpec::c1060())),
        )
        .unwrap();
        let speedup = cb.modeled_s / gb.modeled_s;
        assert!(
            (2.0..12.0).contains(&speedup),
            "n=1000 speedup {speedup} out of band"
        );
    }

    #[test]
    fn error_propagates() {
        let mut dev = DeviceSpec::c1060();
        dev.global_mem_bytes = 64;
        let g = gen::gnp(100, 0.1, 1);
        assert!(count_triangles(&g, CountMethod::GpuSim(GpuConfig::naive(dev))).is_err());
    }
}
