//! The unified [`RunReport`]: everything one pipeline run knows about
//! itself, in one schema.
//!
//! A report carries the graph stats, the method/device configuration,
//! the counting result, and — for simulated-GPU runs — the memory-system
//! accounting the paper's primitives act on: coalescing transactions,
//! the partition-camping factor (Eq. 10), per-SM makespan and
//! utilization (§VI), PCIe transfer, and the Eq. 6 predicted pipeline
//! time against the simulated one. The attached telemetry
//! [`Collector`] adds scoped phase wall times (`split`, `layout`,
//! `dispatch`, `count`) and every counter the lower layers emitted.
//!
//! Serialization is the hand-rolled JSON of `trigon-telemetry`
//! ([`RunReport::to_json`]); the schema is pinned by a golden key-path
//! test, not by values, so timings may vary freely between runs.

use trigon_gpu_sim::{CounterSet, FaultOutcome, ProfileData};
use trigon_telemetry::{registry, Collector, Json, TraceSummary, Tracer};

/// Version of the JSON schema [`RunReport::to_json`] emits. Bump when
/// key paths change shape.
///
/// History: 1 = initial telemetry schema; 2 = added the `trace`
/// section ([`TraceSummary`]) and per-partition `partition.*.p{i}`
/// counters; 3 = added the `faults` section ([`FaultsSection`])
/// summarizing fault injection and recovery; 4 = added the `fleet`
/// section ([`FleetSection`]) for multi-device runs; 5 = added the
/// always-present `workload` section ([`WorkloadSection`]) carrying
/// per-workload results (clustering, k-truss, enumeration); 6 = added
/// the `profile` section ([`ProfileSection`]) with per-counter totals,
/// derived metrics, the per-ALS hotspot table, and per-device roofline
/// points; 7 = added the `cluster` section ([`ClusterSection`]) for
/// simulated multi-node runs; 8 = added the `serving` section
/// ([`ServingSection`]) for queries dispatched by the `trigon serve`
/// registry (cache hit/miss, queue wait, batch amortization, admission
/// verdict).
pub const RUN_REPORT_SCHEMA_VERSION: u32 = 8;

/// Workload-specific result detail — the schema-v5 `workload` section,
/// present on every report. The count-style workloads carry only their
/// identity (the count itself lives in `result.count`); the analytic
/// workloads carry their derived quantities.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSection {
    /// Plain triangle count.
    Triangles,
    /// `k`-clique count.
    KCount {
        /// Clique order.
        k: u32,
    },
    /// Per-vertex clustering coefficients + global transitivity.
    Clustering {
        /// Vertices the coefficient vector covers.
        vertices: usize,
        /// Mean clustering coefficient.
        mean_clustering: f64,
        /// Global transitivity `3T / wedges`.
        transitivity: f64,
    },
    /// `k`-truss decomposition.
    KTruss {
        /// Truss order.
        k: u32,
        /// Edges before peeling.
        edges_initial: u64,
        /// Edges surviving in the `k`-truss.
        edges_kept: u64,
        /// Edges peeled away.
        edges_peeled: u64,
    },
    /// Triangle enumeration.
    Enumerate {
        /// Triangles listed.
        triangles: u64,
        /// Order-independent FNV-1a checksum of the sorted triple list.
        checksum: u64,
    },
}

impl WorkloadSection {
    /// The canonical workload name (`result.kind`'s sibling).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSection::Triangles => "triangles",
            WorkloadSection::KCount { .. } => "kcount",
            WorkloadSection::Clustering { .. } => "clustering",
            WorkloadSection::KTruss { .. } => "ktruss",
            WorkloadSection::Enumerate { .. } => "enumerate",
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("name", Json::from(self.name()));
        match *self {
            WorkloadSection::Triangles => {}
            WorkloadSection::KCount { k } => {
                o.set("k", Json::from(u64::from(k)));
            }
            WorkloadSection::Clustering {
                vertices,
                mean_clustering,
                transitivity,
            } => {
                o.set("vertices", Json::from(vertices));
                o.set("mean_clustering", Json::from(mean_clustering));
                o.set("transitivity", Json::from(transitivity));
            }
            WorkloadSection::KTruss {
                k,
                edges_initial,
                edges_kept,
                edges_peeled,
            } => {
                o.set("k", Json::from(u64::from(k)));
                o.set("edges_initial", Json::from(edges_initial));
                o.set("edges_kept", Json::from(edges_kept));
                o.set("edges_peeled", Json::from(edges_peeled));
            }
            WorkloadSection::Enumerate {
                triangles,
                checksum,
            } => {
                o.set("triangles", Json::from(triangles));
                o.set("checksum", Json::from(checksum));
            }
        }
        o
    }
}

/// GPU-simulator detail of a run (absent for pure-CPU methods).
#[derive(Debug, Clone)]
pub struct GpuSection {
    /// Global-memory transactions issued by the kernel (coalescing
    /// output, Table III).
    pub transactions: u64,
    /// Phase-weighted partition-camping factor (Eq. 10; 1.0 = none).
    pub camping_factor: f64,
    /// Simulated kernel cycles.
    pub kernel_cycles: u64,
    /// Kernel seconds.
    pub kernel_s: f64,
    /// Host→device PCIe transfer seconds.
    pub transfer_s: f64,
    /// Host-side preparation seconds (BFS, Algorithm 1, layout).
    pub host_s: f64,
    /// One-time context/allocation seconds.
    pub context_s: f64,
    /// Thread blocks dispatched.
    pub blocks: usize,
    /// Bytes of device global memory the layout used.
    pub layout_bytes: u64,
    /// Makespan of the block dispatch in base cycles (§VI).
    pub makespan_cycles: u64,
    /// Mean-load / makespan SM utilization (1.0 = perfectly balanced).
    pub sm_utilization: f64,
    /// Makespan imbalance of the schedule (1.0 = perfect).
    pub schedule_imbalance: f64,
}

/// Hybrid shared/global placement detail (present for hybrid runs).
#[derive(Debug, Clone)]
pub struct HybridSection {
    /// ALS served from shared memory.
    pub shared_als: usize,
    /// ALS served from global memory.
    pub global_als: usize,
    /// Chunks produced by Algorithm 1.
    pub chunks: usize,
    /// Chunks too large for shared memory.
    pub oversize_chunks: usize,
    /// Eq. 9 bank-conflict degree of the shared-tier access pattern
    /// (1.0 = conflict-free).
    pub bank_conflict_degree: f64,
}

/// Fault-injection and recovery summary (present when the run was
/// configured with `--faults` / [`crate::Analysis::faults`]).
#[derive(Debug, Clone)]
pub struct FaultsSection {
    /// Canonical `kind:count` form of the requested plan.
    pub spec: String,
    /// Seed the fault targets derive from.
    pub seed: u64,
    /// Whether recovery ran (false = negative-control mode).
    pub recovery: bool,
    /// ECC corruptions actually injected.
    pub injected_ecc: u32,
    /// Transfer failures actually injected.
    pub injected_xfer: u32,
    /// Kernel aborts actually injected.
    pub injected_abort: u32,
    /// SM stalls actually injected.
    pub injected_stall: u32,
    /// Failed transfer attempts that were retried.
    pub transfer_retries: u32,
    /// Chunk re-executions.
    pub chunk_retries: u32,
    /// Chunks moved off stalled SMs.
    pub reassigned_chunks: u64,
    /// Chunks recomputed on the host after exhausting retries.
    pub cpu_fallback_chunks: u64,
    /// Whether the whole run degraded to the CPU path.
    pub run_cpu_fallback: bool,
    /// SMs that stalled.
    pub stalled_sms: u32,
    /// Total retry backoff paid, in device cycles.
    pub backoff_cycles: u64,
    /// Length of the ordered fault/recovery event log.
    pub events: usize,
}

impl FaultsSection {
    /// Builds the section from the executor's [`FaultOutcome`] plus the
    /// plan identity (canonical spec string, seed, recovery flag).
    #[must_use]
    pub fn from_outcome(spec: String, seed: u64, recovery: bool, o: &FaultOutcome) -> Self {
        Self {
            spec,
            seed,
            recovery,
            injected_ecc: o.injected.ecc,
            injected_xfer: o.injected.xfer,
            injected_abort: o.injected.abort,
            injected_stall: o.injected.stall,
            transfer_retries: o.transfer_retries,
            chunk_retries: o.chunk_retries,
            reassigned_chunks: o.reassigned_chunks,
            cpu_fallback_chunks: o.cpu_fallback_chunks,
            run_cpu_fallback: o.run_cpu_fallback,
            stalled_sms: o.stalled_sms,
            backoff_cycles: o.backoff_cycles,
            events: o.events.len(),
        }
    }
}

/// One device's share of a multi-device fleet run.
///
/// Cycle figures are in *that device's* clock domain; for homogeneous
/// fleets (the `repro fleet` sweep) the domains coincide and the
/// section-level maxima are exact makespans.
#[derive(Debug, Clone)]
pub struct FleetDeviceEntry {
    /// Table I model name.
    pub device: String,
    /// Whether the injected loss plan killed this device at shard start.
    pub lost: bool,
    /// Adjacent level sets the device ended up executing.
    pub als: usize,
    /// Summed §VI job weight (ALS S-UTM bits) of those sets.
    pub weight: u64,
    /// Bytes of the shard's global-memory layout.
    pub layout_bytes: u64,
    /// Contended H2D upload cycles (link contention included).
    pub h2d_cycles: u64,
    /// D2D boundary-exchange cycles received by this device.
    pub d2d_cycles: u64,
    /// Simulated kernel cycles of the shard.
    pub kernel_cycles: u64,
    /// End of the device's timeline: `h2d + d2d + kernel` cycles.
    pub end_cycles: u64,
    /// The shard's partial triangle count.
    pub triangles: u64,
}

/// Multi-device fleet summary (present when the run was configured with
/// `--devices` / [`crate::Analysis::fleet`]).
#[derive(Debug, Clone)]
pub struct FleetSection {
    /// Canonical fleet spec (`"2xC2050,1xC1060"`).
    pub spec: String,
    /// Devices in the roster.
    pub devices: usize,
    /// Devices the loss plan killed.
    pub lost_devices: usize,
    /// ALS jobs migrated off lost devices (online Graham reshard).
    pub reassigned_als: usize,
    /// Concurrent H2D links the contention model priced.
    pub links: usize,
    /// Outer §VI makespan: max per-device `end_cycles`.
    pub makespan_cycles: u64,
    /// Summed per-device kernel cycles (compute, no transfers).
    pub compute_cycles: u64,
    /// Summed contended H2D cycles.
    pub h2d_cycles: u64,
    /// Summed D2D boundary-exchange cycles.
    pub d2d_cycles: u64,
    /// Max / mean per-device `end_cycles` over devices that ran
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Per-device detail, in canonical device-index order.
    pub per_device: Vec<FleetDeviceEntry>,
}

/// One node of a simulated cluster run.
///
/// Cycle quantities are measured on the node's own primary clock (its
/// first device); comparisons across nodes are therefore meaningful for
/// homogeneous rosters and approximate otherwise, exactly like
/// [`FleetDeviceEntry`] one level down.
#[derive(Debug, Clone)]
pub struct ClusterNodeEntry {
    /// Canonical fleet spec of the node's device roster.
    pub fleet: String,
    /// Whether the node-loss plan killed this node at partition time.
    pub lost: bool,
    /// Adjacent level sets the node ended up executing.
    pub als: usize,
    /// Summed §VI job weight (ALS S-UTM bits) of those sets.
    pub weight: u64,
    /// Bytes of the node's aggregate global-memory layout.
    pub layout_bytes: u64,
    /// Contended inter-node partition-upload cycles.
    pub uplink_cycles: u64,
    /// Ghost-vertex exchange cycles received by this node.
    pub ghost_cycles: u64,
    /// Ghost/surrogate vertices materialized on this node.
    pub ghost_vertices: u64,
    /// Bytes of ghost adjacency received by this node.
    pub ghost_bytes: u64,
    /// The node's internal fleet makespan (intra-node H2D/D2D + kernels).
    pub fleet_makespan_cycles: u64,
    /// End of the node's timeline: `uplink + ghost + fleet makespan`.
    pub end_cycles: u64,
    /// The node's partial triangle count.
    pub triangles: u64,
}

/// Simulated cluster summary — the schema-v7 `cluster` section, present
/// when the run was configured with `--cluster` /
/// [`crate::Analysis::cluster`].
///
/// Describes the third scheduling level: the node partitioner's layout
/// choice (1D by component vs 2D by edge block), the predicted
/// communication-volume costs that drove it, and the inter-node traffic
/// (partition uplinks, ghost-vertex exchanges) priced on the two-tier
/// interconnect.
#[derive(Debug, Clone)]
pub struct ClusterSection {
    /// Canonical cluster spec (`"4x(2xC2050)"`).
    pub spec: String,
    /// Nodes in the roster.
    pub nodes: usize,
    /// Total devices across every node.
    pub devices: usize,
    /// Layout the partitioner used: `"1d"` or `"2d"`.
    pub strategy: String,
    /// Whether the cost model chose the layout (request was `auto`).
    pub auto: bool,
    /// Predicted cost of the 1D-by-component layout, in cycles.
    pub predicted_one_d_cycles: u64,
    /// Predicted cost of the 2D-by-edge-block layout, in cycles.
    pub predicted_two_d_cycles: u64,
    /// Nodes the loss plan killed.
    pub lost_nodes: usize,
    /// ALS jobs migrated off lost nodes (online Graham reshard).
    pub reassigned_als: usize,
    /// Concurrent uplinks the inter-node contention model priced.
    pub links: usize,
    /// Inter-node fabric class (`"IB-QDR"`, `"10GbE"`).
    pub inter_tier: String,
    /// Cluster makespan: max per-node `end_cycles`.
    pub makespan_cycles: u64,
    /// Summed per-node fleet makespans (compute + intra-node traffic).
    pub compute_cycles: u64,
    /// Summed contended partition-upload cycles.
    pub uplink_cycles: u64,
    /// Summed ghost-vertex exchange cycles.
    pub ghost_cycles: u64,
    /// Total ghost/surrogate vertices materialized across nodes.
    pub ghost_vertices: u64,
    /// Total ghost adjacency bytes moved over the inter-node tier.
    pub ghost_bytes: u64,
    /// Max / mean per-node `end_cycles` over nodes that ran.
    pub imbalance: f64,
    /// Per-node detail, in canonical node-index order.
    pub per_node: Vec<ClusterNodeEntry>,
}

/// Simulated performance-counter profile — the schema-v6 `profile`
/// section, present on every run that executed work.
///
/// Carries the run's [`ProfileData`]: counter totals (in the canonical
/// [`registry::COUNTERS`] order), the derived metrics of
/// [`registry::DERIVED`], the top-[`ProfileSection::HOTSPOT_N`] per-ALS
/// hotspot table, and one roofline point per device. All quantities are
/// exact integers (or pure functions of them), priced at simulation
/// time — bit-identical across executors, thread widths, and fault
/// plans.
#[derive(Debug, Clone)]
pub struct ProfileSection {
    /// The full attribution data (per-ALS, per-SM, totals, devices).
    pub data: ProfileData,
}

impl ProfileSection {
    /// ALS rows the serialized hotspot table keeps (hottest first).
    pub const HOTSPOT_N: usize = 8;

    /// Wraps the executor's attribution data.
    #[must_use]
    pub fn new(data: ProfileData) -> Self {
        Self { data }
    }

    /// Resolves a raw counter name against `c` (registry lookup).
    fn counter_value(c: &CounterSet, name: &str) -> f64 {
        match name {
            "tests" => c.tests as f64,
            "instructions" => c.instructions as f64,
            "transactions" => c.transactions as f64,
            "min_transactions" => c.min_transactions as f64,
            "bank_conflicts" => c.bank_conflicts as f64,
            "compute_cycles" => c.compute_cycles as f64,
            "mem_cycles" => c.mem_cycles as f64,
            "blocks" => c.blocks as f64,
            _ => 0.0,
        }
    }

    /// One counter bundle as a JSON object, in canonical registry order.
    fn counters_json(c: &CounterSet) -> Json {
        let mut o = Json::object();
        o.set(
            "tests",
            u64::try_from(c.tests).map_or(Json::Float(c.tests as f64), Json::from),
        );
        o.set("instructions", Json::from(c.instructions));
        o.set("transactions", Json::from(c.transactions));
        o.set("min_transactions", Json::from(c.min_transactions));
        o.set("bank_conflicts", Json::from(c.bank_conflicts));
        o.set("compute_cycles", Json::from(c.compute_cycles));
        o.set("mem_cycles", Json::from(c.mem_cycles));
        o.set("blocks", Json::from(c.blocks));
        o
    }

    /// Serializes the section: totals, derived metrics, hotspots,
    /// per-device rooflines.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("counters", Self::counters_json(&self.data.totals));

        let totals = &self.data.totals;
        let get = |name: &str| Self::counter_value(totals, name);
        let mut derived = Json::object();
        for d in registry::DERIVED {
            derived.set(d.name, Json::from(d.eval(&get)));
        }
        o.set("derived", derived);

        o.set("als", Json::from(self.data.per_als.len()));
        o.set("sms", Json::from(self.data.per_sm.len()));
        o.set(
            "hotspots",
            Json::Array(
                self.data
                    .hotspots(Self::HOTSPOT_N)
                    .into_iter()
                    .map(|i| {
                        let c = &self.data.per_als[i];
                        let mut h = Json::object();
                        h.set("als", Json::from(i));
                        h.set(
                            "tests",
                            u64::try_from(c.tests).map_or(Json::Float(c.tests as f64), Json::from),
                        );
                        h.set("transactions", Json::from(c.transactions));
                        h.set("cycles", Json::from(c.cycles()));
                        h.set(
                            "coalescing_efficiency",
                            Json::from(c.coalescing_efficiency()),
                        );
                        h
                    })
                    .collect(),
            ),
        );

        o.set(
            "per_device",
            Json::Array(
                self.data
                    .devices
                    .iter()
                    .map(|d| {
                        let mut e = Json::object();
                        e.set("device", Json::from(d.device.as_str()));
                        e.set("counters", Self::counters_json(&d.counters));
                        let mut r = Json::object();
                        r.set(
                            "compute_roof_ops_s",
                            Json::from(d.roofline.compute_roof_ops_s),
                        );
                        r.set("mem_roof_bytes_s", Json::from(d.roofline.mem_roof_bytes_s));
                        r.set("ridge_ops_byte", Json::from(d.roofline.ridge_ops_byte));
                        r.set(
                            "intensity_ops_byte",
                            Json::from(d.roofline.intensity_ops_byte),
                        );
                        r.set("achieved_ops_s", Json::from(d.roofline.achieved_ops_s));
                        r.set("bound", Json::from(d.roofline.bound));
                        e.set("roofline", r);
                        e
                    })
                    .collect(),
            ),
        );
        o
    }
}

/// Per-request serving detail — the schema-v8 `serving` section, present
/// when the run was dispatched through the `trigon serve` graph
/// registry rather than a one-shot invocation.
///
/// Records what the serving tier did on top of the run itself: the
/// Eqs. 1–2 admission verdict and execution target, the result- and
/// artifact-cache outcomes for the (graph, device, method) key, time
/// spent in the bounded admission queue, and how the batch the request
/// rode in amortized the simulated H2D upload.
#[derive(Debug, Clone)]
pub struct ServingSection {
    /// Registry name of the graph the query ran against.
    pub graph: String,
    /// Admission verdict: `"admit"` (the graph fits the primary device
    /// under Eq. 2) or `"route"` (the device rejected it and the query
    /// ran on the pooled fleet roster instead).
    pub verdict: String,
    /// Where the query executed: a device name or a fleet spec.
    pub target: String,
    /// Result-cache outcome: `"hit"` (an identical earlier query's
    /// report was replayed without executing) or `"miss"`.
    pub cache: String,
    /// Artifact-cache outcome for the (graph, device, method) key:
    /// `"hit"` (`LevelMap`/ALS reused) or `"miss"` (built and cached).
    pub artifacts: String,
    /// Seconds the request waited for a slot in the bounded queue.
    pub queue_wait_s: f64,
    /// Number of queries in the batch this request was dispatched with
    /// (1 = unbatched).
    pub batch_size: u64,
    /// Zero-based position of this request within its batch.
    pub batch_index: u64,
    /// Simulated H2D transfer seconds charged to this request: the
    /// batch's single upload divided across its queries.
    pub h2d_share_s: f64,
}

impl ServingSection {
    /// Serializes the section — also used by the serving front end to
    /// patch a replayed (result-cache hit) report with the current
    /// request's serving detail.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::object();
        o.set("graph", Json::from(self.graph.as_str()));
        o.set("verdict", Json::from(self.verdict.as_str()));
        o.set("target", Json::from(self.target.as_str()));
        o.set("cache", Json::from(self.cache.as_str()));
        o.set("artifacts", Json::from(self.artifacts.as_str()));
        o.set("queue_wait_s", Json::from(self.queue_wait_s));
        o.set("batch_size", Json::from(self.batch_size));
        o.set("batch_index", Json::from(self.batch_index));
        o.set("h2d_share_s", Json::from(self.h2d_share_s));
        o
    }
}

/// The paper's Eq. 6 execution-time model against the simulation.
#[derive(Debug, Clone)]
pub struct Eq6Section {
    /// Eq. 6 pipeline seconds predicted from the graph's split
    /// (`τt = μ·τs + ψg·τg`).
    pub predicted_s: f64,
    /// Kernel seconds the simulator actually produced.
    pub simulated_s: f64,
    /// `predicted_s / simulated_s`.
    pub ratio: f64,
}

impl Eq6Section {
    /// Builds the section, deriving the ratio (0 when the simulated time
    /// is zero).
    #[must_use]
    pub fn new(predicted_s: f64, simulated_s: f64) -> Self {
        let ratio = if simulated_s > 0.0 {
            predicted_s / simulated_s
        } else {
            0.0
        };
        Self {
            predicted_s,
            simulated_s,
            ratio,
        }
    }
}

/// The unified run report every [`crate::Analysis`] run produces.
#[derive(Debug)]
pub struct RunReport {
    /// Method label (`cpu`, `cpu-fast`, `cpu-intersect`, `gpu-naive`,
    /// `gpu-opt`, `gpu-sampled`, `gpu-intersect`, `hybrid`,
    /// `kcliques`).
    pub method: String,
    /// Simulated device name, when the method uses one.
    pub device: Option<String>,
    /// Vertices.
    pub n: u32,
    /// Edges.
    pub m: usize,
    /// What was counted: `"triangles"`, `"cliques"`, or
    /// `"ktruss_edges"`.
    pub kind: String,
    /// Subgraph order (3 for triangles).
    pub k: u32,
    /// The exact count.
    pub count: u64,
    /// Workload-specific result detail.
    pub workload: WorkloadSection,
    /// Algorithm 2 combination tests performed or accounted.
    pub tests: u128,
    /// Modeled seconds on the paper's hardware.
    pub modeled_s: f64,
    /// Wall-clock seconds this process actually spent.
    pub wall_s: f64,
    /// GPU-simulator detail.
    pub gpu: Option<GpuSection>,
    /// Hybrid placement detail.
    pub hybrid: Option<HybridSection>,
    /// Eq. 6 predicted-vs-simulated comparison.
    pub eq6: Option<Eq6Section>,
    /// Fault-injection/recovery summary (runs configured with faults).
    pub faults: Option<FaultsSection>,
    /// Multi-device fleet summary (runs configured with a fleet).
    pub fleet: Option<FleetSection>,
    /// Simulated cluster summary (runs configured with a cluster).
    pub cluster: Option<ClusterSection>,
    /// Performance-counter profile (per-ALS/per-SM/per-device
    /// attribution); present whenever the executor produced one.
    pub profile: Option<ProfileSection>,
    /// Serving-tier detail (admission verdict, cache outcomes, queue
    /// wait, batch amortization) when the run was dispatched by
    /// `trigon serve`.
    pub serving: Option<ServingSection>,
    /// Trace summary (span counts, critical path, per-SM busy/idle,
    /// histogram quantiles) when the run traced at `Level::Trace`.
    pub trace: Option<TraceSummary>,
    /// Raw telemetry gathered during the run.
    pub telemetry: Collector,
    /// The full tracer (empty unless the run traced at `Level::Trace`);
    /// export with [`Tracer::to_chrome_trace`].
    pub tracer: Tracer,
}

impl RunReport {
    /// Serializes the report. Key order is fixed; the `tests` count is
    /// emitted as an integer when it fits `u64`, else as a float.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.set(
            "schema_version",
            Json::from(u64::from(RUN_REPORT_SCHEMA_VERSION)),
        );

        let mut graph = Json::object();
        graph.set("n", Json::from(u64::from(self.n)));
        graph.set("m", Json::from(self.m));
        root.set("graph", graph);

        let mut config = Json::object();
        config.set("method", Json::from(self.method.as_str()));
        config.set(
            "device",
            self.device.as_deref().map_or(Json::Null, Json::from),
        );
        root.set("config", config);

        let mut result = Json::object();
        result.set("kind", Json::from(self.kind.as_str()));
        result.set("k", Json::from(u64::from(self.k)));
        result.set("count", Json::from(self.count));
        result.set(
            "tests",
            u64::try_from(self.tests).map_or(Json::Float(self.tests as f64), Json::from),
        );
        root.set("result", result);

        root.set("workload", self.workload.to_json());

        let mut timing = Json::object();
        timing.set("modeled_s", Json::from(self.modeled_s));
        timing.set("wall_s", Json::from(self.wall_s));
        root.set("timing", timing);

        root.set(
            "gpu",
            self.gpu.as_ref().map_or(Json::Null, |g| {
                let mut o = Json::object();
                o.set("transactions", Json::from(g.transactions));
                o.set("camping_factor", Json::from(g.camping_factor));
                o.set("kernel_cycles", Json::from(g.kernel_cycles));
                o.set("kernel_s", Json::from(g.kernel_s));
                o.set("transfer_s", Json::from(g.transfer_s));
                o.set("host_s", Json::from(g.host_s));
                o.set("context_s", Json::from(g.context_s));
                o.set("blocks", Json::from(g.blocks));
                o.set("layout_bytes", Json::from(g.layout_bytes));
                o.set("makespan_cycles", Json::from(g.makespan_cycles));
                o.set("sm_utilization", Json::from(g.sm_utilization));
                o.set("schedule_imbalance", Json::from(g.schedule_imbalance));
                o
            }),
        );

        root.set(
            "hybrid",
            self.hybrid.as_ref().map_or(Json::Null, |h| {
                let mut o = Json::object();
                o.set("shared_als", Json::from(h.shared_als));
                o.set("global_als", Json::from(h.global_als));
                o.set("chunks", Json::from(h.chunks));
                o.set("oversize_chunks", Json::from(h.oversize_chunks));
                o.set("bank_conflict_degree", Json::from(h.bank_conflict_degree));
                o
            }),
        );

        root.set(
            "eq6",
            self.eq6.as_ref().map_or(Json::Null, |e| {
                let mut o = Json::object();
                o.set("predicted_s", Json::from(e.predicted_s));
                o.set("simulated_s", Json::from(e.simulated_s));
                o.set("ratio", Json::from(e.ratio));
                o
            }),
        );

        root.set(
            "faults",
            self.faults.as_ref().map_or(Json::Null, |f| {
                let mut o = Json::object();
                o.set("spec", Json::from(f.spec.as_str()));
                o.set("seed", Json::from(f.seed));
                o.set("recovery", Json::from(f.recovery));
                let mut injected = Json::object();
                injected.set("ecc", Json::from(u64::from(f.injected_ecc)));
                injected.set("xfer", Json::from(u64::from(f.injected_xfer)));
                injected.set("abort", Json::from(u64::from(f.injected_abort)));
                injected.set("stall", Json::from(u64::from(f.injected_stall)));
                o.set("injected", injected);
                o.set(
                    "transfer_retries",
                    Json::from(u64::from(f.transfer_retries)),
                );
                o.set("chunk_retries", Json::from(u64::from(f.chunk_retries)));
                o.set("reassigned_chunks", Json::from(f.reassigned_chunks));
                o.set("cpu_fallback_chunks", Json::from(f.cpu_fallback_chunks));
                o.set("run_cpu_fallback", Json::from(f.run_cpu_fallback));
                o.set("stalled_sms", Json::from(u64::from(f.stalled_sms)));
                o.set("backoff_cycles", Json::from(f.backoff_cycles));
                o.set("events", Json::from(f.events));
                o
            }),
        );

        root.set(
            "fleet",
            self.fleet.as_ref().map_or(Json::Null, |f| {
                let mut o = Json::object();
                o.set("spec", Json::from(f.spec.as_str()));
                o.set("devices", Json::from(f.devices));
                o.set("lost_devices", Json::from(f.lost_devices));
                o.set("reassigned_als", Json::from(f.reassigned_als));
                o.set("links", Json::from(f.links));
                o.set("makespan_cycles", Json::from(f.makespan_cycles));
                o.set("compute_cycles", Json::from(f.compute_cycles));
                o.set("h2d_cycles", Json::from(f.h2d_cycles));
                o.set("d2d_cycles", Json::from(f.d2d_cycles));
                o.set("imbalance", Json::from(f.imbalance));
                o.set(
                    "per_device",
                    Json::Array(
                        f.per_device
                            .iter()
                            .map(|d| {
                                let mut e = Json::object();
                                e.set("device", Json::from(d.device.as_str()));
                                e.set("lost", Json::from(d.lost));
                                e.set("als", Json::from(d.als));
                                e.set("weight", Json::from(d.weight));
                                e.set("layout_bytes", Json::from(d.layout_bytes));
                                e.set("h2d_cycles", Json::from(d.h2d_cycles));
                                e.set("d2d_cycles", Json::from(d.d2d_cycles));
                                e.set("kernel_cycles", Json::from(d.kernel_cycles));
                                e.set("end_cycles", Json::from(d.end_cycles));
                                e.set("triangles", Json::from(d.triangles));
                                e
                            })
                            .collect(),
                    ),
                );
                o
            }),
        );

        root.set(
            "cluster",
            self.cluster.as_ref().map_or(Json::Null, |c| {
                let mut o = Json::object();
                o.set("spec", Json::from(c.spec.as_str()));
                o.set("nodes", Json::from(c.nodes));
                o.set("devices", Json::from(c.devices));
                o.set("strategy", Json::from(c.strategy.as_str()));
                o.set("auto", Json::from(c.auto));
                o.set(
                    "predicted_one_d_cycles",
                    Json::from(c.predicted_one_d_cycles),
                );
                o.set(
                    "predicted_two_d_cycles",
                    Json::from(c.predicted_two_d_cycles),
                );
                o.set("lost_nodes", Json::from(c.lost_nodes));
                o.set("reassigned_als", Json::from(c.reassigned_als));
                o.set("links", Json::from(c.links));
                o.set("inter_tier", Json::from(c.inter_tier.as_str()));
                o.set("makespan_cycles", Json::from(c.makespan_cycles));
                o.set("compute_cycles", Json::from(c.compute_cycles));
                o.set("uplink_cycles", Json::from(c.uplink_cycles));
                o.set("ghost_cycles", Json::from(c.ghost_cycles));
                o.set("ghost_vertices", Json::from(c.ghost_vertices));
                o.set("ghost_bytes", Json::from(c.ghost_bytes));
                o.set("imbalance", Json::from(c.imbalance));
                o.set(
                    "per_node",
                    Json::Array(
                        c.per_node
                            .iter()
                            .map(|n| {
                                let mut e = Json::object();
                                e.set("fleet", Json::from(n.fleet.as_str()));
                                e.set("lost", Json::from(n.lost));
                                e.set("als", Json::from(n.als));
                                e.set("weight", Json::from(n.weight));
                                e.set("layout_bytes", Json::from(n.layout_bytes));
                                e.set("uplink_cycles", Json::from(n.uplink_cycles));
                                e.set("ghost_cycles", Json::from(n.ghost_cycles));
                                e.set("ghost_vertices", Json::from(n.ghost_vertices));
                                e.set("ghost_bytes", Json::from(n.ghost_bytes));
                                e.set("fleet_makespan_cycles", Json::from(n.fleet_makespan_cycles));
                                e.set("end_cycles", Json::from(n.end_cycles));
                                e.set("triangles", Json::from(n.triangles));
                                e
                            })
                            .collect(),
                    ),
                );
                o
            }),
        );

        root.set(
            "profile",
            self.profile
                .as_ref()
                .map_or(Json::Null, ProfileSection::to_json),
        );

        root.set(
            "serving",
            self.serving
                .as_ref()
                .map_or(Json::Null, ServingSection::to_json),
        );

        root.set(
            "trace",
            self.trace
                .as_ref()
                .map_or(Json::Null, TraceSummary::to_json),
        );

        root.set("telemetry", self.telemetry.to_json());
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            method: "gpu-opt".into(),
            device: Some("C1060".into()),
            n: 10,
            m: 20,
            kind: "triangles".into(),
            k: 3,
            count: 7,
            workload: WorkloadSection::Triangles,
            tests: 120,
            modeled_s: 0.5,
            wall_s: 0.01,
            gpu: Some(GpuSection {
                transactions: 99,
                camping_factor: 1.5,
                kernel_cycles: 1000,
                kernel_s: 0.4,
                transfer_s: 0.01,
                host_s: 0.02,
                context_s: 0.35,
                blocks: 3,
                layout_bytes: 4096,
                makespan_cycles: 900,
                sm_utilization: 0.9,
                schedule_imbalance: 1.1,
            }),
            hybrid: None,
            eq6: Some(Eq6Section::new(0.5, 0.4)),
            faults: None,
            fleet: None,
            cluster: None,
            profile: Some(ProfileSection::new({
                let mut p = ProfileData::new(2, 1);
                p.record(
                    0,
                    0,
                    &CounterSet {
                        tests: 120,
                        instructions: CounterSet::instructions_for_tests(120),
                        transactions: 99,
                        min_transactions: 33,
                        bank_conflicts: 0,
                        compute_cycles: 600,
                        mem_cycles: 400,
                        blocks: 3,
                    },
                );
                p.devices.push(trigon_gpu_sim::DeviceProfile::new(
                    &trigon_gpu_sim::DeviceSpec::c1060(),
                    p.totals.clone(),
                ));
                p
            })),
            serving: None,
            trace: None,
            telemetry: Collector::new(),
            tracer: Tracer::disabled(),
        }
    }

    #[test]
    fn json_has_the_top_level_sections() {
        let j = sample().to_json();
        for key in [
            "schema_version",
            "graph",
            "config",
            "result",
            "workload",
            "timing",
            "gpu",
            "hybrid",
            "eq6",
            "faults",
            "fleet",
            "cluster",
            "profile",
            "serving",
            "trace",
            "telemetry",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("hybrid"), Some(&Json::Null));
        assert_eq!(j.get("serving"), Some(&Json::Null));
        assert_eq!(j.get("faults"), Some(&Json::Null));
        assert_eq!(j.get("fleet"), Some(&Json::Null));
        assert_eq!(j.get("cluster"), Some(&Json::Null));
        assert_eq!(j.get("trace"), Some(&Json::Null));
        assert_eq!(j.get("result").unwrap().get("count"), Some(&Json::UInt(7)));
    }

    #[test]
    fn profile_section_serializes_counters_derived_and_roofline() {
        let j = sample().to_json();
        let p = j.get("profile").unwrap();
        let counters = p.get("counters").unwrap();
        for d in registry::COUNTERS {
            assert!(counters.get(d.name).is_some(), "missing counter {}", d.name);
        }
        assert_eq!(counters.get("transactions"), Some(&Json::UInt(99)));
        let derived = p.get("derived").unwrap();
        for d in registry::DERIVED {
            assert!(derived.get(d.name).is_some(), "missing derived {}", d.name);
        }
        assert_eq!(
            derived.get("coalescing_efficiency"),
            Some(&Json::Float(33.0 / 99.0))
        );
        match p.get("hotspots") {
            Some(Json::Array(hs)) => {
                assert_eq!(hs.len(), 1, "one ALS carried work");
                assert_eq!(hs[0].get("als"), Some(&Json::UInt(0)));
                assert_eq!(hs[0].get("cycles"), Some(&Json::UInt(1000)));
            }
            other => panic!("expected hotspot array, got {other:?}"),
        }
        match p.get("per_device") {
            Some(Json::Array(ds)) => {
                assert_eq!(ds.len(), 1);
                assert_eq!(ds[0].get("device"), Some(&Json::from("C1060")));
                let r = ds[0].get("roofline").unwrap();
                assert!(r.get("bound").is_some());
                assert!(r.get("ridge_ops_byte").is_some());
            }
            other => panic!("expected per_device array, got {other:?}"),
        }
    }

    #[test]
    fn huge_test_counts_fall_back_to_float() {
        let mut r = sample();
        r.tests = u128::from(u64::MAX) + 10;
        let j = r.to_json();
        match j.get("result").unwrap().get("tests") {
            Some(Json::Float(f)) => assert!(*f > 1e19),
            other => panic!("expected float tests, got {other:?}"),
        }
    }

    #[test]
    fn eq6_ratio_guards_zero() {
        let e = Eq6Section::new(1.0, 0.0);
        assert_eq!(e.ratio, 0.0);
        let e = Eq6Section::new(1.0, 2.0);
        assert_eq!(e.ratio, 0.5);
    }
}
