//! Adjacent level sets (ALS) — the unit Algorithm 2 counts over.
//!
//! Fig. 3 of the paper groups a BFS tree's levels pairwise:
//! `ALS_i = (L_i, L_{i+1})`. Because every edge of the graph joins the
//! same or adjacent BFS levels, every triangle lives inside exactly one
//! ALS's vertex set, and the `GenNxtComb` mode discipline (first level
//! only / mixed / second level only on the last set) visits each
//! candidate combination exactly once across all sets.

use std::sync::Arc;
use trigon_combin::{CrossMode, TwoLevelSpace};
use trigon_graph::storage::BitMatrix;
use trigon_graph::{BfsTree, Graph, LevelMap};

/// One adjacent level set of a BFS tree, with its local adjacency.
///
/// Local vertex positions follow the `trigon-combin` convention: the
/// first level occupies `0 … a-1`, the second `a … a+b-1`.
#[derive(Debug, Clone)]
pub struct Als {
    /// Which consecutive pair this is (`i` for `(L_i, L_{i+1})`), counted
    /// per component in pipeline order.
    pub index: usize,
    /// Connected component this ALS belongs to (index in
    /// `connected_components` order).
    pub component: usize,
    /// BFS level of the first set within its component's tree.
    pub first_level: u32,
    /// Global vertex ids of the first level (sorted).
    pub first: Vec<u32>,
    /// Global vertex ids of the second level (sorted); empty when the
    /// component has a single BFS level.
    pub second: Vec<u32>,
    /// Sorted merge of `first ∪ second`, built once at construction so
    /// counting loops never rebuild-and-sort the window per call.
    pub window: Vec<u32>,
    /// Whether this is the last ALS of its component — only then does
    /// Algorithm 2 issue the `secondLvl` scan.
    pub is_last: bool,
    /// Shared per-graph BFS placement map (component, level, in-level
    /// rank per vertex) answering window/first-level membership in O(1).
    pub levels: Arc<LevelMap>,
    /// Local adjacency over `first ∪ second` (bit matrix, local ids).
    /// Materialized only when `size() ≤ LOCAL_MATRIX_MAX` — for the huge
    /// level sets of 100k-node graphs a dense local matrix would dwarf the
    /// host RAM; the counting paths fall back to the global CSR there.
    pub local: Option<BitMatrix>,
}

/// Largest ALS for which the dense local bit matrix is materialized
/// (4096² bits = 2 MiB per ALS).
pub const LOCAL_MATRIX_MAX: u32 = 4096;

impl Als {
    /// First-level size `a`.
    #[must_use]
    pub fn a(&self) -> u32 {
        self.first.len() as u32
    }

    /// Second-level size `b`.
    #[must_use]
    pub fn b(&self) -> u32 {
        self.second.len() as u32
    }

    /// Total local vertices `a + b`.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.a() + self.b()
    }

    /// The sorted window `first ∪ second` (global ids), precomputed.
    #[inline]
    #[must_use]
    pub fn window(&self) -> &[u32] {
        &self.window
    }

    /// O(1): is global vertex `v` in this ALS's first level?
    #[inline]
    #[must_use]
    pub fn in_first(&self, v: u32) -> bool {
        self.levels
            .is_at(v, self.component as u32, self.first_level)
    }

    /// O(1): is global vertex `v` in this ALS's second level?
    #[inline]
    #[must_use]
    pub fn in_second(&self, v: u32) -> bool {
        !self.second.is_empty()
            && self
                .levels
                .is_at(v, self.component as u32, self.first_level + 1)
    }

    /// O(1): is global vertex `v` anywhere in this ALS's window?
    #[inline]
    #[must_use]
    pub fn in_window(&self, v: u32) -> bool {
        self.in_first(v) || self.in_second(v)
    }

    /// O(1): local position of global vertex `v` in this ALS, or `None`
    /// when `v` is outside the window. Replaces the two binary searches
    /// the dense-matrix construction used to pay per adjacency probe.
    #[inline]
    #[must_use]
    pub fn local_of(&self, v: u32) -> Option<u32> {
        if self.in_first(v) {
            Some(self.levels.rank_of(v))
        } else if self.in_second(v) {
            Some(self.a() + self.levels.rank_of(v))
        } else {
            None
        }
    }

    /// The `GenNxtComb` mode streams Algorithm 2 issues for this ALS:
    /// `firstLvl`, `bothLvls`, and — on the component's last set only —
    /// `secondLvl`. Returned as a static slice so hot loops pay no
    /// allocation per ALS.
    #[inline]
    #[must_use]
    pub fn modes(&self) -> &'static [CrossMode] {
        const ALL: [CrossMode; 3] = [
            CrossMode::FirstOnly,
            CrossMode::Mixed,
            CrossMode::SecondOnly,
        ];
        if self.is_last {
            &ALL
        } else {
            &ALL[..2]
        }
    }

    /// The `k`-combination space over this ALS.
    #[must_use]
    pub fn space(&self, k: u32) -> TwoLevelSpace {
        TwoLevelSpace::new(self.a(), self.b(), k)
    }

    /// Global id of local position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ size()`.
    #[inline]
    #[must_use]
    pub fn global_id(&self, p: u32) -> u32 {
        let a = self.a();
        if p < a {
            self.first[p as usize]
        } else {
            self.second[(p - a) as usize]
        }
    }

    /// Whether the local pair `(p, q)` is an edge, answered from the dense
    /// local matrix when materialized, else from the global graph.
    #[inline]
    #[must_use]
    pub fn edge(&self, g: &Graph, p: u32, q: u32) -> bool {
        use trigon_graph::AdjacencyStorage;
        match &self.local {
            Some(m) => m.has_edge(p, q),
            None => g.has_edge(self.global_id(p), self.global_id(q)),
        }
    }

    /// Whether the local pair `(p, q)` is an edge (dense local matrix
    /// only).
    ///
    /// # Panics
    ///
    /// Panics when the local matrix was not materialized (ALS larger than
    /// [`LOCAL_MATRIX_MAX`]); use [`Als::edge`] for the general path.
    #[inline]
    #[must_use]
    pub fn local_edge(&self, p: u32, q: u32) -> bool {
        use trigon_graph::AdjacencyStorage;
        self.local
            .as_ref()
            .expect("local matrix not materialized for this ALS size")
            .has_edge(p, q)
    }

    /// Number of triangle tests Algorithm 2 performs on this ALS:
    /// `C(a,3) + mixed + (last ? C(b,3) : 0)`.
    #[must_use]
    pub fn test_count(&self, k: u32) -> u128 {
        let s = self.space(k);
        self.modes().iter().map(|&m| s.count(m)).sum()
    }

    /// S-UTM bit footprint of the local adjacency — the job size used for
    /// §VI makespan scheduling and the Eq. 3 shared-memory check.
    #[must_use]
    pub fn size_bits(&self) -> u128 {
        let n = u128::from(self.size());
        n * n.saturating_sub(1) / 2
    }
}

/// Builds the ALS of one BFS tree (one component): `depth - 1` sets, or a
/// single degenerate set when the component has one level. `index` is
/// assigned starting from `base_index`. The shared `levels` map must
/// already have this tree recorded under `component`
/// ([`LevelMap::record_tree`]).
#[must_use]
pub fn build_als_for_tree(
    g: &Graph,
    tree: &BfsTree,
    base_index: usize,
    component: usize,
    levels_map: &Arc<LevelMap>,
) -> Vec<Als> {
    let levels = tree.levels();
    let mut out = Vec::new();
    if levels.is_empty() {
        return out;
    }
    if levels.len() == 1 {
        out.push(make_als(
            g,
            base_index,
            component,
            0,
            &levels[0],
            &[],
            true,
            levels_map,
        ));
        return out;
    }
    for i in 0..levels.len() - 1 {
        let is_last = i + 2 == levels.len();
        out.push(make_als(
            g,
            base_index + i,
            component,
            i as u32,
            &levels[i],
            &levels[i + 1],
            is_last,
            levels_map,
        ));
    }
    out
}

/// Builds the full ALS list of a graph: BFS forest rooted at each
/// component's smallest vertex, one shared [`LevelMap`] for O(1)
/// membership, then per-tree ALS construction.
#[must_use]
pub fn build_als(g: &Graph) -> Vec<Als> {
    let comps = trigon_graph::connected_components(g);
    let mut trees = Vec::with_capacity(comps.len());
    let mut map = LevelMap::new(g.n());
    for (ci, comp) in comps.iter().enumerate() {
        let tree = BfsTree::new(g, comp[0]);
        map.record_tree(&tree, ci as u32);
        trees.push(tree);
    }
    let map = Arc::new(map);
    let mut out = Vec::new();
    for (ci, tree) in trees.iter().enumerate() {
        let base = out.len();
        out.extend(build_als_for_tree(g, tree, base, ci, &map));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn make_als(
    g: &Graph,
    index: usize,
    component: usize,
    first_level: u32,
    first: &[u32],
    second: &[u32],
    is_last: bool,
    levels_map: &Arc<LevelMap>,
) -> Als {
    let a = first.len() as u32;
    let n = a + second.len() as u32;
    // Merge the two sorted, disjoint level sets once; counting loops
    // iterate this instead of rebuilding it per call.
    let mut window = Vec::with_capacity(n as usize);
    let (mut i, mut j) = (0usize, 0usize);
    while i < first.len() && j < second.len() {
        if first[i] < second[j] {
            window.push(first[i]);
            i += 1;
        } else {
            window.push(second[j]);
            j += 1;
        }
    }
    window.extend_from_slice(&first[i..]);
    window.extend_from_slice(&second[j..]);

    let second_level = first_level + 1;
    let local = (n <= LOCAL_MATRIX_MAX).then(|| {
        // Local-id lookup via the shared level map: O(1) per probe.
        let mut m = BitMatrix::new(n);
        let local_of = |v: u32| -> Option<u32> {
            if levels_map.is_at(v, component as u32, first_level) {
                Some(levels_map.rank_of(v))
            } else if !second.is_empty() && levels_map.is_at(v, component as u32, second_level) {
                Some(a + levels_map.rank_of(v))
            } else {
                None
            }
        };
        for (pos, &v) in first.iter().chain(second.iter()).enumerate() {
            for &w in g.neighbors(v) {
                if let Some(q) = local_of(w) {
                    if (pos as u32) < q {
                        m.set_edge(pos as u32, q);
                    }
                }
            }
        }
        m
    });
    Als {
        index,
        component,
        first_level,
        first: first.to_vec(),
        second: second.to_vec(),
        window,
        is_last,
        levels: Arc::clone(levels_map),
        local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_combin::binom;
    use trigon_graph::gen;

    #[test]
    fn path_graph_als_chain() {
        let g = gen::path(5);
        let als = build_als(&g);
        assert_eq!(als.len(), 4);
        for (i, a) in als.iter().enumerate() {
            assert_eq!(a.index, i);
            assert_eq!(a.a(), 1);
            assert_eq!(a.b(), 1);
            assert_eq!(a.is_last, i == 3);
            assert!(a.local_edge(0, 1));
        }
    }

    #[test]
    fn single_level_component() {
        // Isolated vertices: each component is one level, one degenerate ALS.
        let g = Graph::from_edges(3, &[]).unwrap();
        let als = build_als(&g);
        assert_eq!(als.len(), 3);
        for a in &als {
            assert_eq!(a.a(), 1);
            assert_eq!(a.b(), 0);
            assert!(a.is_last);
            assert_eq!(a.test_count(3), 0);
        }
    }

    #[test]
    fn complete_graph_two_levels() {
        // K_n from any root: L0 = {root}, L1 = rest — one ALS.
        let g = gen::complete(7);
        let als = build_als(&g);
        assert_eq!(als.len(), 1);
        let a = &als[0];
        assert_eq!(a.a(), 1);
        assert_eq!(a.b(), 6);
        assert!(a.is_last);
        // Test count = C(7,3) (every combination touches some mode).
        assert_eq!(a.test_count(3), binom(7, 3));
    }

    #[test]
    fn local_edges_mirror_global() {
        let g = gen::gnp(60, 0.1, 5);
        for als in build_als(&g) {
            let n = als.size();
            assert!(als.local.is_some(), "small ALS must materialize");
            for p in 0..n {
                for q in 0..n {
                    let gp = als.global_id(p);
                    let gq = als.global_id(q);
                    assert_eq!(
                        als.local_edge(p, q),
                        g.has_edge(gp, gq),
                        "als {} local ({p},{q}) global ({gp},{gq})",
                        als.index
                    );
                    assert_eq!(als.edge(&g, p, q), als.local_edge(p, q));
                }
            }
        }
    }

    #[test]
    fn oversized_als_falls_back_to_graph() {
        // A star bigger than LOCAL_MATRIX_MAX: level 1 holds n-1 vertices,
        // so the single ALS exceeds the dense-matrix threshold.
        let n = LOCAL_MATRIX_MAX + 10;
        let g = gen::star(n);
        let als = build_als(&g);
        assert_eq!(als.len(), 1);
        assert!(als[0].local.is_none());
        // edge() still answers correctly through the CSR.
        assert!(als[0].edge(&g, 0, 1)); // center to first leaf
        assert!(!als[0].edge(&g, 1, 2)); // two leaves
    }

    #[test]
    fn als_covers_every_level_pair_once() {
        let g = gen::gnp(80, 0.05, 9);
        let comps = trigon_graph::connected_components(&g);
        let als = build_als(&g);
        // Count ALS per component = max(depth - 1, 1).
        let mut expect = 0usize;
        for comp in &comps {
            let tree = BfsTree::new(&g, comp[0]);
            expect += (tree.depth() - 1).max(1);
        }
        assert_eq!(als.len(), expect);
        // First levels chain: als[i].second == als[i+1].first within a
        // component (the §X-A shared level that must be duplicated).
        for w in als.windows(2) {
            if !w[0].is_last {
                assert_eq!(w[0].second, w[1].first);
            }
        }
    }

    #[test]
    fn test_count_matches_mode_sum() {
        use trigon_combin::CrossMode;
        let g = gen::gnp(50, 0.1, 2);
        for als in build_als(&g) {
            let s = als.space(3);
            let mut want = s.count(CrossMode::FirstOnly) + s.count(CrossMode::Mixed);
            if als.is_last {
                want += s.count(CrossMode::SecondOnly);
            }
            assert_eq!(als.test_count(3), want);
        }
    }

    #[test]
    fn size_bits_is_sutm() {
        let g = gen::complete(10);
        let als = build_als(&g);
        assert_eq!(als[0].size_bits(), 45); // 10·9/2
    }

    #[test]
    fn fig3_level_grouping() {
        // The paper's Fig. 3: a 20-node BFS tree with levels
        // {0}, {1,2}, {3..8}, {9..13}, {14..19}, grouped pairwise into
        // adjacent level sets for triangle counting.
        let mut edges = vec![(0u32, 1), (0, 2)];
        // Level 2: 3..=8, children of 1 and 2.
        for v in 3..=8u32 {
            edges.push((if v % 2 == 1 { 1 } else { 2 }, v));
        }
        // Level 3: 9..=13, children of 3..=7.
        for (i, v) in (9..=13u32).enumerate() {
            edges.push((3 + i as u32, v));
        }
        // Level 4: 14..=19, children of 9..=13 (one parent gets two).
        for (i, v) in (14..=19u32).enumerate() {
            edges.push((9 + (i as u32).min(4), v));
        }
        let g = Graph::from_edges(20, &edges).unwrap();
        let als = build_als(&g);
        assert_eq!(als.len(), 4, "five levels pair into four ALS");
        let shapes: Vec<(u32, u32)> = als.iter().map(|a| (a.a(), a.b())).collect();
        assert_eq!(shapes, vec![(1, 2), (2, 6), (6, 5), (5, 6)]);
        assert!(als[3].is_last);
        assert!(als[..3].iter().all(|a| !a.is_last));
        // A tree has no triangles; Algorithm 2 must agree.
        assert_eq!(crate::count::cpu_exhaustive(&g).triangles, 0);
    }

    #[test]
    fn window_and_membership_queries() {
        for seed in 0..4u64 {
            let g = gen::gnp(60, 0.1, seed);
            for als in build_als(&g) {
                // The precomputed window is the sorted merge of both levels.
                let mut want: Vec<u32> = als.first.iter().chain(&als.second).copied().collect();
                want.sort_unstable();
                assert_eq!(als.window(), &want[..], "seed {seed} als {}", als.index);
                // O(1) probes agree with the level vectors for every vertex.
                for v in 0..g.n() {
                    assert_eq!(als.in_first(v), als.first.binary_search(&v).is_ok());
                    assert_eq!(als.in_second(v), als.second.binary_search(&v).is_ok());
                    assert_eq!(als.in_window(v), als.in_first(v) || als.in_second(v));
                    let want_local =
                        als.first
                            .binary_search(&v)
                            .ok()
                            .map(|i| i as u32)
                            .or_else(|| {
                                als.second
                                    .binary_search(&v)
                                    .ok()
                                    .map(|i| als.a() + i as u32)
                            });
                    assert_eq!(als.local_of(v), want_local, "seed {seed} v {v}");
                }
                // local_of inverts global_id over the whole window.
                for local in 0..als.window().len() as u32 {
                    assert_eq!(als.local_of(als.global_id(local)), Some(local));
                }
            }
        }
    }

    #[test]
    fn modes_match_position() {
        let g = gen::gnp(50, 0.1, 7);
        for als in build_als(&g) {
            let m = als.modes();
            assert_eq!(m[0], trigon_combin::CrossMode::FirstOnly);
            assert_eq!(m[1], trigon_combin::CrossMode::Mixed);
            assert_eq!(m.len(), if als.is_last { 3 } else { 2 });
        }
    }

    #[test]
    fn global_ids_partition_component() {
        let g = gen::gnp(40, 0.15, 3);
        let als = build_als(&g);
        // Within one component, each level appears as `first` exactly once
        // or as the final `second` — union over (first ∪ last second) = V.
        let mut seen = std::collections::BTreeSet::new();
        for a in &als {
            for &v in &a.first {
                seen.insert(v);
            }
            if a.is_last {
                for &v in &a.second {
                    seen.insert(v);
                }
            }
        }
        assert_eq!(seen.len() as u32, g.n());
    }
}
