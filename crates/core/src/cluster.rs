//! Simulated cluster execution: the third §VI scheduling level.
//!
//! A [`ClusterSpec`] names a roster of nodes, each node a fleet of
//! devices behind one PCIe root. Execution stacks three schedulers:
//!
//! 1. **partitioner across nodes** — [`trigon_fleet::plan_cluster`]
//!    chooses 1D-by-component or 2D-by-edge-block from a predicted
//!    communication-volume cost model and assigns every ALS to a node;
//! 2. **LPT across a node's devices** — each node's partition runs
//!    through [`multi::run_fleet_workload_with_als`], the unchanged
//!    fleet layer;
//! 3. **per-SM schedule** — the single-device §VI dispatch, untouched.
//!
//! Correctness rests on the same ALS exactness theorem as the fleet
//! layer: both layouts partition the ALS list, a partition of the ALS
//! list is a partition of the triangles, and the per-node partials
//! reduce (canonical node order) to a total **bit-identical to the
//! serial count** regardless of node count, layout, faults, or loss.
//! Ghost/surrogate vertices change only the priced communication, never
//! the counted set — each node re-reads the shared BFS level from its
//! own partition upload, and the ghost exchange pays for that
//! materialization on the simulated timeline.
//!
//! A cluster of **one** node delegates verbatim to
//! [`multi::run_fleet_workload`] — trace and report (minus the
//! `cluster` section) byte-identical to a plain fleet run, the same
//! collapse discipline the fleet layer applies to one device.

use crate::als::{build_als, Als};
use crate::gpu_exec::{GpuConfig, GpuError, GpuRunResult};
use crate::multi;
use crate::report::{ClusterNodeEntry, ClusterSection, FleetSection};
use crate::workload::{ChunkKernel, CountKernel};
use trigon_fleet::{
    plan_cluster, reassign_lost_nodes, ClusterJob, ClusterSpec, Interconnect, LossPlan,
    PartitionStrategy,
};
use trigon_gpu_sim::{FaultOutcome, ProfileData};
use trigon_graph::Graph;
use trigon_telemetry::{AttrValue, Collector, Level, Tracer, Track};

/// Runs the simulated triangle count across a cluster of nodes.
///
/// Convenience form of [`run_cluster_workload`] with [`CountKernel`].
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when some node's devices cannot hold its
/// partition.
#[allow(clippy::too_many_arguments)]
pub fn run_cluster(
    g: &Graph,
    cluster: &ClusterSpec,
    base: &GpuConfig,
    strategy: PartitionStrategy,
    node_loss: Option<LossPlan>,
    device_loss: Option<LossPlan>,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, ClusterSection), GpuError> {
    run_cluster_workload(
        g,
        cluster,
        base,
        strategy,
        node_loss,
        device_loss,
        &CountKernel,
        collector,
        tracer,
    )
    .map(|(r, _, section)| (r, section))
}

/// Runs an arbitrary [`ChunkKernel`] workload across a cluster.
///
/// `strategy` selects the node layout (`Auto` lets the cost model
/// decide); `node_loss` kills whole nodes at partition time (orphaned
/// ALS migrate to surviving nodes via the online Graham step);
/// `device_loss` is forwarded to every node's fleet run (single-device
/// nodes are unaffected — a loss plan never kills the last survivor).
///
/// The per-node partials are merged in canonical node-index order via
/// [`ChunkKernel::merge`] but *not* finalized; the caller runs
/// [`ChunkKernel::finalize`] once on the returned partial.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when some node's devices cannot hold its
/// partition.
#[allow(clippy::too_many_arguments)]
pub fn run_cluster_workload<K: ChunkKernel>(
    g: &Graph,
    cluster: &ClusterSpec,
    base: &GpuConfig,
    strategy: PartitionStrategy,
    node_loss: Option<LossPlan>,
    device_loss: Option<LossPlan>,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, K::Partial, ClusterSection), GpuError> {
    let nodes = cluster.nodes();
    let lost = node_loss
        .map(|l| l.targets(nodes.len()))
        .unwrap_or_default();

    if nodes.len() == 1 {
        // One node, and LossPlan::targets never kills the last survivor:
        // delegate verbatim so the trace and report stay byte-identical
        // to a plain fleet run on that node's roster.
        debug_assert!(lost.is_empty());
        let (r, partial, fs) =
            multi::run_fleet_workload(g, &nodes[0], base, device_loss, kernel, collector, tracer)?;
        let section = single_node_section(cluster, strategy, &fs, &r);
        return Ok((r, partial, section));
    }

    // Per-node device offsets into the cluster-global device index space
    // (node n, local device d → lane offsets[n] + d).
    let offsets: Vec<u32> = {
        let mut v = Vec::with_capacity(nodes.len());
        let mut acc = 0u32;
        for f in nodes {
            v.push(acc);
            acc += f.len() as u32;
        }
        v
    };
    let node_clock = |n: usize| nodes[n].devices()[0].clock_hz;
    let net = Interconnect::cluster_default();
    let clock0 = node_clock(0);
    tracer.set_device_clock_hz(clock0 as f64);

    // ---- Level 1: partition ALS across nodes. ----
    let (als, jobs, mut plan) = {
        let _p = collector.phase("plan");
        let mut span = tracer.span("plan", "phase");
        span.attr("nodes", nodes.len());
        let als = build_als(g);
        let jobs = cluster_jobs(&als);
        let plan = plan_cluster(&jobs, &cluster.node_speeds(), &net, clock0, strategy);
        (als, jobs, plan)
    };

    // ---- Node loss: reshard orphans onto survivors (online Graham). ----
    let mut reassigned = 0;
    if !lost.is_empty() {
        for &n in &lost {
            tracer.instant_at("cluster.node_lost", Track::DevicePcie(offsets[n]), 0);
        }
        reassigned = reassign_lost_nodes(&mut plan, &jobs, &lost);
    }

    let alive: Vec<bool> = (0..nodes.len()).map(|n| !lost.contains(&n)).collect();
    let active: Vec<usize> = (0..nodes.len())
        .filter(|&n| alive[n] && plan.assignment.contains(&n))
        .collect();
    let links = active.len().max(1);

    // ---- Ghost/surrogate vertices: a component cut across nodes
    // materializes its shared BFS level on the downstream node, paid as
    // a point-to-point exchange over the inter-node tier. ----
    let mut ghost_cycles_in = vec![0u64; nodes.len()];
    let mut ghost_bytes_in = vec![0u64; nodes.len()];
    let mut ghost_vertices_in = vec![0u64; nodes.len()];
    for j in 1..als.len() {
        if als[j].component != als[j - 1].component {
            continue;
        }
        let (src, dst) = (plan.assignment[j - 1], plan.assignment[j]);
        if src == dst {
            continue;
        }
        ghost_cycles_in[dst] += net.ghost_cycles(jobs[j].ghost_bytes, node_clock(dst));
        ghost_bytes_in[dst] += jobs[j].ghost_bytes;
        ghost_vertices_in[dst] += jobs[j].ghost_vertices;
    }

    // ---- Level 2+3: run each node's partition through the fleet layer. ----
    struct NodeRun {
        node: usize,
        als: usize,
        weight: u64,
        result: GpuRunResult,
        fleet: FleetSection,
        uplink_cycles: u64,
        ghost_cycles: u64,
        end_cycles: u64,
    }
    let dispatch_guard = collector.phase("dispatch");
    let dispatch_span = tracer.span("dispatch", "phase");
    let mut runs: Vec<NodeRun> = Vec::with_capacity(active.len());
    let mut partials: Vec<K::Partial> = Vec::with_capacity(active.len());
    for &n in &active {
        let node_als: Vec<Als> = als
            .iter()
            .enumerate()
            .filter(|&(j, _)| plan.assignment[j] == n)
            .map(|(_, a)| a.clone())
            .collect();
        let sub = if tracer.enabled() {
            Tracer::with_clock(Level::Trace, tracer.clock())
        } else {
            Tracer::disabled()
        };
        let (r, node_partial, fs) = multi::run_fleet_workload_with_als(
            g,
            &node_als,
            &nodes[n],
            base,
            device_loss,
            kernel,
            &mut Collector::disabled(),
            &sub,
        )?;
        partials.push(node_partial);

        let clock = node_clock(n);
        let uplink = net.uplink_cycles(r.layout_bytes, links, clock);
        let ghost = ghost_cycles_in[n];
        let shift = uplink + ghost;
        if tracer.enabled() {
            let lane = Track::DevicePcie(offsets[n]);
            tracer.device_span(
                "node uplink",
                "cluster",
                lane,
                0,
                uplink,
                &[
                    ("bytes", AttrValue::UInt(r.layout_bytes)),
                    ("links", AttrValue::UInt(links as u64)),
                    ("tier", AttrValue::from(net.inter.name)),
                ],
            );
            if ghost > 0 {
                tracer.device_span(
                    "ghost exchange",
                    "cluster",
                    lane,
                    uplink,
                    ghost,
                    &[
                        ("bytes", AttrValue::UInt(ghost_bytes_in[n])),
                        ("vertices", AttrValue::UInt(ghost_vertices_in[n])),
                        ("tier", AttrValue::from(net.inter.name)),
                    ],
                );
            }
            harvest_node_trace(tracer, &sub, offsets[n], shift);
        }
        let end_cycles = shift + fs.makespan_cycles;
        runs.push(NodeRun {
            node: n,
            als: node_als.len(),
            weight: plan.loads[n],
            result: r,
            fleet: fs,
            uplink_cycles: uplink,
            ghost_cycles: ghost,
            end_cycles,
        });
    }
    drop(dispatch_span);
    drop(dispatch_guard);

    // ---- Deterministic reduction, canonical node-index order. ----
    let partial = partials
        .into_iter()
        .fold(kernel.identity(), |acc, p| kernel.merge(acc, p));
    let triangles = kernel.triangles_in(&partial);
    let tests: u128 = runs.iter().map(|r| r.result.tests).sum();

    // ---- Cluster section + aggregate result. ----
    let makespan_cycles = runs.iter().map(|r| r.end_cycles).max().unwrap_or(0);
    let uplink_sum: u64 = runs.iter().map(|r| r.uplink_cycles).sum();
    let ghost_sum: u64 = runs.iter().map(|r| r.ghost_cycles).sum();
    let compute_sum: u64 = runs.iter().map(|r| r.fleet.makespan_cycles).sum();
    let mean_end = if runs.is_empty() {
        0.0
    } else {
        runs.iter().map(|r| r.end_cycles as f64).sum::<f64>() / runs.len() as f64
    };
    let imbalance = if mean_end > 0.0 {
        makespan_cycles as f64 / mean_end
    } else {
        1.0
    };
    let per_node: Vec<ClusterNodeEntry> = (0..nodes.len())
        .map(|n| {
            let run = runs.iter().find(|r| r.node == n);
            ClusterNodeEntry {
                fleet: nodes[n].to_string(),
                lost: lost.contains(&n),
                als: run.map_or(0, |r| r.als),
                weight: run.map_or(0, |r| r.weight),
                layout_bytes: run.map_or(0, |r| r.result.layout_bytes),
                uplink_cycles: run.map_or(0, |r| r.uplink_cycles),
                ghost_cycles: run.map_or(0, |r| r.ghost_cycles),
                ghost_vertices: run.map_or(0, |_| ghost_vertices_in[n]),
                ghost_bytes: run.map_or(0, |_| ghost_bytes_in[n]),
                fleet_makespan_cycles: run.map_or(0, |r| r.fleet.makespan_cycles),
                end_cycles: run.map_or(0, |r| r.end_cycles),
                triangles: run.map_or(0, |r| r.result.triangles),
            }
        })
        .collect();
    let section = ClusterSection {
        spec: cluster.to_string(),
        nodes: nodes.len(),
        devices: cluster.total_devices(),
        strategy: plan.strategy.label().to_string(),
        auto: plan.auto,
        predicted_one_d_cycles: plan.predicted_one_d_cycles,
        predicted_two_d_cycles: plan.predicted_two_d_cycles,
        lost_nodes: lost.len(),
        reassigned_als: reassigned,
        links,
        inter_tier: net.inter.name.to_string(),
        makespan_cycles,
        compute_cycles: compute_sum,
        uplink_cycles: uplink_sum,
        ghost_cycles: ghost_sum,
        ghost_vertices: ghost_vertices_in.iter().sum(),
        ghost_bytes: ghost_bytes_in.iter().sum(),
        imbalance,
        per_node,
    };

    if collector.enabled() {
        collector.add("cluster.nodes", nodes.len() as u64);
        collector.add("cluster.devices", cluster.total_devices() as u64);
        collector.add("cluster.lost", lost.len() as u64);
        collector.add("cluster.reassigned_als", reassigned as u64);
        collector.add("cluster.uplink_cycles", uplink_sum);
        collector.add("cluster.ghost_cycles", ghost_sum);
        collector.add("cluster.ghost_vertices", ghost_vertices_in.iter().sum());
        collector.add("cluster.makespan_cycles", makespan_cycles);
        collector.add(
            "cluster.strategy_2d",
            u64::from(plan.strategy == PartitionStrategy::TwoD),
        );
        collector.gauge("cluster.imbalance", imbalance);
    }

    // ---- Aggregate GpuRunResult (same conventions as the fleet layer,
    // one level up: maxima over nodes for critical-path quantities,
    // kernel-cycle-weighted means for utilization). ----
    let kernel_weight: u64 = runs
        .iter()
        .map(|r| r.result.kernel_cycles)
        .sum::<u64>()
        .max(1);
    let kernel_cycle_sum: u64 = runs.iter().map(|r| r.result.kernel_cycles).sum();
    let camping_factor = if kernel_cycle_sum > 0 {
        runs.iter()
            .map(|r| r.result.camping_factor * r.result.kernel_cycles as f64)
            .sum::<f64>()
            / kernel_weight as f64
    } else {
        1.0
    };
    let sm_utilization = if kernel_cycle_sum > 0 {
        runs.iter()
            .map(|r| r.result.sm_utilization * r.result.kernel_cycles as f64)
            .sum::<f64>()
            / kernel_weight as f64
    } else {
        1.0
    };
    let kernel_cycles = runs
        .iter()
        .map(|r| r.result.kernel_cycles)
        .max()
        .unwrap_or(0);
    let kernel_s = runs
        .iter()
        .map(|r| r.result.kernel_s)
        .fold(0.0f64, f64::max);
    // The cluster's transfer critical path: slowest node's contended
    // uplink + ghost exchange (its clock domain) + its internal fleet
    // transfer path.
    let transfer_s = runs
        .iter()
        .map(|r| {
            nodes[r.node].devices()[0].cycles_to_seconds(r.uplink_cycles + r.ghost_cycles)
                + r.result.transfer_s
        })
        .fold(0.0f64, f64::max);
    let host_s = base.cost.host_prep_seconds(g.n(), g.m());
    let context_s = base.cost.gpu_context_init_s;

    // ---- Aggregate profile: node-local ALS indices remap to global
    // through the same assignment filter order that built node_als;
    // per-SM counters merge index-wise; per-device entries concatenate
    // in ascending node order. ----
    let n_sm = runs
        .iter()
        .map(|r| r.result.profile.per_sm.len())
        .max()
        .unwrap_or(0);
    let mut profile = ProfileData::new(als.len(), n_sm);
    for r in &runs {
        let globals: Vec<usize> = (0..als.len())
            .filter(|&j| plan.assignment[j] == r.node)
            .collect();
        for (local, c) in r.result.profile.per_als.iter().enumerate() {
            if let Some(&gj) = globals.get(local) {
                profile.record_als(gj, c);
            }
        }
        for (i, c) in r.result.profile.per_sm.iter().enumerate() {
            profile.per_sm[i].merge(c);
        }
        profile
            .devices
            .extend(r.result.profile.devices.iter().cloned());
    }

    let faults = merge_fault_outcomes(runs.iter().map(|r| r.result.faults.as_ref()));

    let aggregate = GpuRunResult {
        triangles,
        tests,
        transactions: runs.iter().map(|r| r.result.transactions).sum(),
        camping_factor,
        kernel_cycles,
        kernel_s,
        transfer_s,
        host_s,
        context_s,
        total_s: kernel_s + transfer_s + host_s + context_s,
        blocks: runs.iter().map(|r| r.result.blocks).sum(),
        layout_bytes: runs.iter().map(|r| r.result.layout_bytes).sum(),
        schedule_imbalance: imbalance,
        makespan_cycles,
        sm_utilization,
        faults,
        profile,
    };
    Ok((aggregate, partial, section))
}

/// Reduces every ALS to its cluster job: §VI weight, byte footprint,
/// component id, and the ghost payload owed iff the partitioner
/// separates it from its same-component predecessor (the shared BFS
/// level's vertices and S-UTM adjacency bytes).
fn cluster_jobs(als: &[Als]) -> Vec<ClusterJob> {
    als.iter()
        .enumerate()
        .map(|(j, a)| {
            let bits = a.size_bits();
            // Compute proxy: Algorithm 2 runs ~C(|A|,2)·|B| combination
            // tests per ALS. The raw bit footprint underprices compute
            // on small graphs, which made the cost model favour 1D (no
            // communication) even when 2D's split was far faster.
            let pairs = u128::from(a.a()) * u128::from(a.a().saturating_sub(1)) / 2;
            let tests = (pairs * u128::from(a.b().max(1))).max(1);
            let (ghost_vertices, ghost_bytes) = if j > 0 && als[j - 1].component == a.component {
                let shared = u64::from(a.a());
                (shared, shared * shared.saturating_sub(1) / 2 / 8 + 1)
            } else {
                (0, 0)
            };
            ClusterJob {
                weight: u64::try_from(tests).unwrap_or(u64::MAX),
                bytes: u64::try_from(bits / 8 + 1).unwrap_or(u64::MAX),
                component: u32::try_from(a.component).unwrap_or(u32::MAX),
                ghost_vertices,
                ghost_bytes,
            }
        })
        .collect()
}

/// Re-emits a node sub-trace onto the cluster-global device lanes: the
/// node's devices occupy lanes `offset..offset+len`, and everything
/// shifts by `shift` cycles (past the node's partition uplink and ghost
/// exchange). Single-device nodes traced on the plain `Sm`/`Pcie` lanes
/// map onto lane `offset`; multi-device nodes traced on `DeviceSm`/
/// `DevicePcie` lanes map by offset. Host-track spans are dropped — the
/// cluster path emits its own phases; histograms merge.
fn harvest_node_trace(tracer: &Tracer, sub: &Tracer, offset: u32, shift: u64) {
    for s in sub.spans() {
        let track = match s.track {
            Track::Sm(i) => Track::DeviceSm(offset, i),
            Track::Pcie => Track::DevicePcie(offset),
            Track::DeviceSm(d, i) => Track::DeviceSm(offset + d, i),
            Track::DevicePcie(d) => Track::DevicePcie(offset + d),
            Track::Host => continue,
        };
        let args: Vec<(&str, AttrValue)> = s
            .args
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        tracer.device_span(&s.name, &s.cat, track, s.start + shift, s.dur, &args);
    }
    for i in sub.instants() {
        let track = match i.track {
            Track::Sm(m) => Track::DeviceSm(offset, m),
            Track::Pcie => Track::DevicePcie(offset),
            Track::DeviceSm(d, m) => Track::DeviceSm(offset + d, m),
            Track::DevicePcie(d) => Track::DevicePcie(offset + d),
            Track::Host => continue,
        };
        tracer.instant_at(&i.name, track, i.at + shift);
    }
    for c in sub.counters() {
        let track = match c.track {
            Track::Sm(m) => Track::DeviceSm(offset, m),
            Track::DeviceSm(d, m) => Track::DeviceSm(offset + d, m),
            _ => continue,
        };
        tracer.counter(&c.name, track, c.at + shift, c.value);
    }
    tracer.absorb_histograms(sub);
}

/// Folds per-node fault outcomes into one cluster-level outcome:
/// injected counts and recovery counters sum, the event logs
/// concatenate in node order, and the CPU-fallback flag ORs.
fn merge_fault_outcomes<'a, I>(outcomes: I) -> Option<FaultOutcome>
where
    I: Iterator<Item = Option<&'a FaultOutcome>>,
{
    let mut merged: Option<FaultOutcome> = None;
    for o in outcomes.flatten() {
        let m = merged.get_or_insert_with(FaultOutcome::new);
        m.injected.ecc += o.injected.ecc;
        m.injected.xfer += o.injected.xfer;
        m.injected.abort += o.injected.abort;
        m.injected.stall += o.injected.stall;
        m.transfer_retries += o.transfer_retries;
        m.chunk_retries += o.chunk_retries;
        m.reassigned_chunks += o.reassigned_chunks;
        m.cpu_fallback_chunks += o.cpu_fallback_chunks;
        m.run_cpu_fallback |= o.run_cpu_fallback;
        m.stalled_sms += o.stalled_sms;
        m.backoff_cycles += o.backoff_cycles;
        m.events.extend(o.events.iter().cloned());
    }
    merged
}

/// The cluster section of a one-node cluster: derived from the verbatim
/// fleet result (no inter-node traffic, no ghosts, trivially 1D).
fn single_node_section(
    cluster: &ClusterSpec,
    strategy: PartitionStrategy,
    fs: &FleetSection,
    r: &GpuRunResult,
) -> ClusterSection {
    let als: usize = fs.per_device.iter().map(|d| d.als).sum();
    let weight: u64 = fs.per_device.iter().map(|d| d.weight).sum();
    ClusterSection {
        spec: cluster.to_string(),
        nodes: 1,
        devices: cluster.total_devices(),
        strategy: PartitionStrategy::OneD.label().to_string(),
        auto: strategy == PartitionStrategy::Auto,
        predicted_one_d_cycles: 0,
        predicted_two_d_cycles: 0,
        lost_nodes: 0,
        reassigned_als: 0,
        links: 1,
        inter_tier: Interconnect::cluster_default().inter.name.to_string(),
        makespan_cycles: fs.makespan_cycles,
        compute_cycles: fs.makespan_cycles,
        uplink_cycles: 0,
        ghost_cycles: 0,
        ghost_vertices: 0,
        ghost_bytes: 0,
        imbalance: 1.0,
        per_node: vec![ClusterNodeEntry {
            fleet: fs.spec.clone(),
            lost: false,
            als,
            weight,
            layout_bytes: r.layout_bytes,
            uplink_cycles: 0,
            ghost_cycles: 0,
            ghost_vertices: 0,
            ghost_bytes: 0,
            fleet_makespan_cycles: fs.makespan_cycles,
            end_cycles: fs.makespan_cycles,
            triangles: r.triangles,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_gpu_sim::DeviceSpec;
    use trigon_graph::{gen, triangles};

    fn cluster(spec: &str) -> ClusterSpec {
        ClusterSpec::parse(spec).unwrap()
    }

    fn count_on(
        g: &Graph,
        spec: &str,
        strategy: PartitionStrategy,
        node_loss: Option<LossPlan>,
    ) -> (GpuRunResult, ClusterSection) {
        let base = GpuConfig::optimized(DeviceSpec::c2050());
        run_cluster(
            g,
            &cluster(spec),
            &base,
            strategy,
            node_loss,
            None,
            &mut Collector::disabled(),
            &Tracer::disabled(),
        )
        .unwrap()
    }

    #[test]
    fn cluster_counts_match_serial_across_rosters_and_layouts() {
        let g = gen::community_ring(1200, 100, 0.25, 2, 7);
        let expect = triangles::count_edge_iterator(&g);
        for spec in ["1x(1xC2050)", "2x(2xC2050)", "4x(1xC2050)", "8x(1xC1060)"] {
            for strategy in [
                PartitionStrategy::Auto,
                PartitionStrategy::OneD,
                PartitionStrategy::TwoD,
            ] {
                let (r, section) = count_on(&g, spec, strategy, None);
                assert_eq!(r.triangles, expect, "{spec} {strategy:?}");
                assert_eq!(
                    section
                        .per_node
                        .iter()
                        .fold(0u64, |acc, n| acc.wrapping_add(n.triangles)),
                    expect,
                    "{spec} {strategy:?} partials"
                );
            }
        }
    }

    #[test]
    fn node_loss_reshards_and_keeps_the_count() {
        let g = gen::community_ring(900, 90, 0.3, 2, 3);
        let expect = triangles::count_edge_iterator(&g);
        let (r, section) = count_on(
            &g,
            "4x(1xC2050)",
            PartitionStrategy::Auto,
            Some(LossPlan::new(2, 13)),
        );
        assert_eq!(r.triangles, expect);
        assert_eq!(section.lost_nodes, 2);
        assert!(section.reassigned_als > 0);
        for n in &section.per_node {
            if n.lost {
                assert_eq!(n.als, 0, "lost nodes run nothing");
                assert_eq!(n.triangles, 0);
            }
        }
    }

    #[test]
    fn more_nodes_shorten_the_cluster_makespan() {
        let g = gen::community_ring(2400, 120, 0.25, 2, 4);
        let (_, one) = count_on(&g, "1x(1xC2050)", PartitionStrategy::Auto, None);
        let (_, eight) = count_on(&g, "8x(1xC2050)", PartitionStrategy::Auto, None);
        assert!(
            eight.makespan_cycles < one.makespan_cycles,
            "8 nodes {} !< 1 node {}",
            eight.makespan_cycles,
            one.makespan_cycles
        );
        assert!(eight.uplink_cycles > 0);
    }

    #[test]
    fn two_d_on_one_component_pays_ghosts() {
        // One connected component: 1D cannot split it, 2D must, so the
        // 2D layout materializes ghost vertices while 1D by construction
        // has none.
        let g = gen::gnp(400, 0.04, 5);
        let expect = triangles::count_edge_iterator(&g);
        let (r2, s2) = count_on(&g, "4x(1xC2050)", PartitionStrategy::TwoD, None);
        assert_eq!(r2.triangles, expect);
        assert_eq!(s2.strategy, "2d");
        assert!(s2.ghost_vertices > 0, "cut component must ghost");
        assert!(s2.ghost_cycles > 0);
        let (r1, s1) = count_on(&g, "4x(1xC2050)", PartitionStrategy::OneD, None);
        assert_eq!(r1.triangles, expect);
        assert_eq!(s1.ghost_vertices, 0, "whole components never ghost");
    }

    #[test]
    fn one_node_cluster_matches_plain_fleet_bitwise() {
        let g = gen::gnp(300, 0.05, 3);
        let base = GpuConfig::optimized(DeviceSpec::c2050());
        let fleet = trigon_fleet::FleetSpec::parse("2xC2050").unwrap();
        let (fr, _, _) = multi::run_fleet_workload(
            &g,
            &fleet,
            &base,
            None,
            &CountKernel,
            &mut Collector::disabled(),
            &Tracer::disabled(),
        )
        .unwrap();
        let (cr, section) = count_on(&g, "1x(2xC2050)", PartitionStrategy::Auto, None);
        assert_eq!(cr.triangles, fr.triangles);
        assert_eq!(cr.kernel_cycles, fr.kernel_cycles);
        assert_eq!(cr.makespan_cycles, fr.makespan_cycles);
        assert_eq!(cr.layout_bytes, fr.layout_bytes);
        assert_eq!(section.uplink_cycles, 0);
        assert_eq!(section.ghost_cycles, 0);
    }

    #[test]
    fn cluster_trace_lands_on_global_device_lanes() {
        let g = gen::community_ring(600, 100, 0.3, 2, 6);
        let tracer = Tracer::new();
        let base = GpuConfig::optimized(DeviceSpec::c2050());
        run_cluster(
            &g,
            &cluster("2x(2xC2050)"),
            &base,
            PartitionStrategy::TwoD,
            None,
            None,
            &mut Collector::disabled(),
            &tracer,
        )
        .unwrap();
        let spans = tracer.spans();
        assert!(
            spans
                .iter()
                .any(|s| matches!(s.track, Track::DeviceSm(d, _) if d >= 2)),
            "second node's devices must land on lanes >= 2"
        );
        assert!(
            spans.iter().any(|s| s.name == "node uplink"),
            "uplink spans priced on the inter-node tier"
        );
        assert!(
            !spans
                .iter()
                .any(|s| matches!(s.track, Track::Sm(_) | Track::Pcie)),
            "no spans may leak onto the single-device lanes"
        );
        // Kernel spans start at or after their node's uplink.
        for s in &spans {
            if let Track::DeviceSm(d, _) = s.track {
                let lane = Track::DevicePcie(if d < 2 { 0 } else { 2 });
                let up = spans
                    .iter()
                    .find(|p| p.track == lane && p.name == "node uplink")
                    .expect("uplink span");
                assert!(s.start >= up.dur, "kernel before uplink finished");
            }
        }
    }
}
