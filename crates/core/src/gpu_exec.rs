//! The simulated GPU combination kernel — triangle counting and every
//! other [`ChunkKernel`] workload.
//!
//! This module executes Algorithm 2 the way the paper's CUDA kernel does
//! — §VIII-D equal work division over the per-ALS combination spaces,
//! warp lanes taking consecutive combination indices — while pricing
//! every global-memory access through `trigon-gpu-sim`:
//!
//! 1. each warp *step* tests up to 32 consecutive combinations; its three
//!    adjacency loads per lane are coalesced per the device's compute
//!    capability ([`trigon_gpu_sim::coalesce`]) under the chosen §X data
//!    [`LayoutKind`];
//! 2. transactions accumulate per block into partition histograms;
//!    concurrently-scheduled blocks (one per SM, §VI makespan dispatch)
//!    share the partitions, so each *phase* pays a camping factor
//!    (`max_queue / ideal`, Eq. 10) on its memory cycles;
//! 3. per-step compute cost and end-to-end overheads (PCIe transfer,
//!    context creation, host-side Algorithms 1 prep) come from the
//!    documented [`CostModel`] calibration.
//!
//! Two fidelity modes: [`FidelityMode::Exhaustive`] walks every
//! combination (exact traces — used for the 200–1200-node Figs. 10/12),
//! [`FidelityMode::Sampled`] prices deterministic sample warps and scales
//! by the exact combinatorial workload counts (used for the 5k–100k-node
//! Fig. 11, where exhaustive enumeration is infeasible for *any*
//! implementation; triangle counts there come from the exact fast ALS
//! path).

use crate::als::{build_als, Als};
use crate::layout::{GlobalLayout, LayoutKind};
use crate::timemodel::CostModel;
use crate::workload::{ChunkKernel, CountKernel};
use rayon::prelude::*;
use std::collections::VecDeque;
use trigon_combin::{equal_division, CrossMode};
use trigon_gpu_sim::{
    camping_cycles, emit, warp_transactions, CounterSet, DeviceProfile, DeviceSpec, FaultConfig,
    FaultEvent, FaultOutcome, PartitionTraffic, ProfileData, TransferModel,
};
use trigon_graph::{Graph, Xoshiro256pp};
use trigon_telemetry::{AttrValue, Collector, Tracer, Track};

/// Block→SM dispatch policy (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Block `i` to SM `i mod sm_count` — the naive strawman.
    RoundRobin,
    /// Graham list scheduling in block order.
    Greedy,
    /// Longest Processing Time first — the paper-motivated heuristic.
    Lpt,
}

/// How combination tests are carved into thread blocks (§VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkDivision {
    /// Strategy D: combinadics equal division — fixed-size contiguous
    /// blocks over the mode streams (`FirstOnly`, `Mixed`,
    /// `SecondOnly`).
    EqualBlocks,
    /// Strategy C: one block per *leading element* over the equivalent
    /// lex streams (`AtLeastOneFirst` replaces `FirstOnly ∪ Mixed`).
    /// Early blocks own `C(n−1, k−1)`-sized workloads — the §VIII-C
    /// imbalance, visible in the resulting schedule makespan.
    LeadingElement,
}

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityMode {
    /// Enumerate and price every combination (exact; small graphs).
    Exhaustive,
    /// Price `sample_steps` deterministic warp-steps per (ALS, mode) and
    /// scale by exact workload counts; count triangles via the fast ALS
    /// path. Exact counts, modeled timing.
    Sampled {
        /// Warp-steps sampled per combination stream.
        sample_steps: u32,
    },
    /// The degree-ordered adjacency-intersection kernel (see
    /// [`crate::intersect`]): per-ALS merge/gallop/bitmap operation
    /// counts priced as warp steps, coalesced row-scan transactions,
    /// scattered galloping probes, and bitmap shared-memory bank
    /// conflicts. Exact counts (bit-identical to the combination
    /// pipeline), modeled timing.
    Intersect,
}

/// Full configuration of a simulated GPU run.
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Device to simulate.
    pub device: DeviceSpec,
    /// §X data layout.
    pub layout: LayoutKind,
    /// Dispatch policy.
    pub schedule: SchedulePolicy,
    /// Fidelity mode.
    pub mode: FidelityMode,
    /// Threads per block (multiple of the warp size).
    pub threads_per_block: u32,
    /// Target combination tests per thread (sets the block grain).
    pub tests_per_thread: u32,
    /// §VIII work-division strategy.
    pub division: WorkDivision,
    /// Calibration constants.
    pub cost: CostModel,
    /// Deterministic fault injection + recovery policy. `None` (the
    /// default) runs the perfect device; `Some` routes dispatch through
    /// the fault-aware executor — which emits a byte-identical trace
    /// when the plan injects nothing.
    pub faults: Option<FaultConfig>,
}

impl GpuConfig {
    /// The paper's *naive* GPU implementation: monolithic layout,
    /// round-robin dispatch.
    #[must_use]
    pub fn naive(device: DeviceSpec) -> Self {
        Self {
            device,
            layout: LayoutKind::Monolithic,
            schedule: SchedulePolicy::RoundRobin,
            mode: FidelityMode::Exhaustive,
            threads_per_block: 128,
            tests_per_thread: 512,
            division: WorkDivision::EqualBlocks,
            cost: CostModel::default(),
            faults: None,
        }
    }

    /// The paper's primitive-optimized implementation: per-ALS
    /// partition-aligned layout, LPT dispatch.
    #[must_use]
    pub fn optimized(device: DeviceSpec) -> Self {
        Self {
            layout: LayoutKind::AlsPartitionAligned,
            schedule: SchedulePolicy::Lpt,
            ..Self::naive(device)
        }
    }

    /// Switches to sampled fidelity (large graphs).
    #[must_use]
    pub fn sampled(mut self) -> Self {
        self.mode = FidelityMode::Sampled { sample_steps: 64 };
        self
    }

    /// The adjacency-intersection kernel on the optimized substrate
    /// (partition-aligned layout, LPT dispatch, intersect fidelity).
    #[must_use]
    pub fn intersect(device: DeviceSpec) -> Self {
        Self {
            mode: FidelityMode::Intersect,
            ..Self::optimized(device)
        }
    }

    /// Enables deterministic fault injection with the given plan and
    /// recovery policy.
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Errors from a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// The layout does not fit the device's global memory (Eq. 1 check).
    GraphTooLarge {
        /// Bytes the layout needs.
        needed: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::GraphTooLarge { needed, capacity } => write!(
                f,
                "adjacency layout needs {needed} bytes but device holds {capacity}"
            ),
        }
    }
}

impl std::error::Error for GpuError {}

/// Result of one simulated GPU run.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Triangles found (exact in both fidelity modes).
    pub triangles: u64,
    /// Combination tests performed/accounted.
    pub tests: u128,
    /// Global-memory transactions issued (scaled in sampled mode).
    pub transactions: u64,
    /// Mean camping factor across phases, weighted by phase memory cycles
    /// (1.0 = perfectly spread partitions).
    pub camping_factor: f64,
    /// Kernel cycles (sum of phase cycles).
    pub kernel_cycles: u64,
    /// Kernel seconds (cycles at the core clock + launch overhead).
    pub kernel_s: f64,
    /// Host→device transfer seconds for the layout bytes.
    pub transfer_s: f64,
    /// Host-side prep (BFS + Algorithm 1 + layout) seconds, modeled.
    pub host_s: f64,
    /// One-time context/allocation seconds.
    pub context_s: f64,
    /// End-to-end modeled seconds.
    pub total_s: f64,
    /// Thread blocks simulated (pseudo-blocks in sampled mode).
    pub blocks: usize,
    /// Bytes of simulated global memory the layout consumed.
    pub layout_bytes: u64,
    /// Makespan imbalance of the block schedule (1.0 = perfect).
    pub schedule_imbalance: f64,
    /// Makespan of the block dispatch in base (pre-camping) cycles.
    pub makespan_cycles: u64,
    /// Mean-load / makespan utilization of the SMs (1.0 = perfectly
    /// balanced dispatch).
    pub sm_utilization: f64,
    /// Fault/recovery accounting, present iff the run was configured
    /// with [`GpuConfig::faults`] (an empty plan still yields an — all
    /// zero — outcome).
    pub faults: Option<FaultOutcome>,
    /// Per-ALS / per-SM counter attribution. Counters are priced at
    /// simulation time and attributed by the *scheduled* assignment, so
    /// the profile is bit-identical across thread widths and under any
    /// fault plan.
    pub profile: ProfileData,
}

/// One simulated block's accumulated costs plus its workload partial.
#[derive(Debug, Clone)]
struct BlockSim<P> {
    als_idx: usize,
    compute_cycles: u64,
    mem_base_cycles: u64,
    transactions: u64,
    min_transactions: u64,
    traffic: PartitionTraffic,
    partial: P,
    tests: u128,
    /// Shared-memory bank conflicts (bitmap intersection rows; 0 for the
    /// combination kernels, which keep combinadic state in registers).
    bank_conflicts: u64,
    /// Whether `tests` counts intersection ops (instruction pricing
    /// differs) rather than combination tests.
    intersect: bool,
}

impl<P> BlockSim<P> {
    /// The block's profiler counter bundle (everything priced at
    /// simulation time — nothing here depends on dispatch or faults).
    fn counters(&self) -> CounterSet {
        CounterSet {
            tests: self.tests,
            instructions: if self.intersect {
                CounterSet::instructions_for_intersect_ops(self.tests)
            } else {
                CounterSet::instructions_for_tests(self.tests)
            },
            transactions: self.transactions,
            min_transactions: self.min_transactions,
            bank_conflicts: self.bank_conflicts,
            compute_cycles: self.compute_cycles,
            mem_cycles: self.mem_base_cycles,
            blocks: 1,
        }
    }
}

/// A unit of work: a contiguous slice of one (ALS, mode) stream.
#[derive(Debug, Clone, Copy)]
struct BlockWork {
    als_idx: usize,
    mode: CrossMode,
    start: u128,
    len: u128,
}

/// Runs the simulated kernel end to end.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the layout exceeds the device memory.
pub fn run(g: &Graph, cfg: &GpuConfig) -> Result<GpuRunResult, GpuError> {
    run_collected(g, cfg, &mut Collector::disabled())
}

/// Runs the simulated kernel end to end, recording phase timings
/// (`layout`, `count`, `dispatch`), simulator counters, and partition
/// traffic into `collector`.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the layout exceeds the device memory.
pub fn run_collected(
    g: &Graph,
    cfg: &GpuConfig,
    collector: &mut Collector,
) -> Result<GpuRunResult, GpuError> {
    run_workload_traced(g, cfg, &CountKernel, collector, &Tracer::disabled()).map(|(r, _)| r)
}

/// Runs the simulated kernel for an arbitrary [`ChunkKernel`] workload,
/// recording phase timings and — through `tracer` — a time-resolved
/// trace: host phase spans (`layout`, `count`, `dispatch`), a PCIe
/// transfer span, one simulated-time span per block on its assigned SM
/// lane (with transaction and partition-camping attributes), and
/// `block.cycles` / `block.transactions` histograms.
///
/// Returns the run result plus the fully-merged workload partial
/// (reduced in canonical block order; **not** yet
/// [finalized](ChunkKernel::finalize) — callers that stop merging here
/// finalize it themselves).
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the layout exceeds the device memory.
pub fn run_workload_traced<K: ChunkKernel>(
    g: &Graph,
    cfg: &GpuConfig,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, K::Partial), GpuError> {
    assert!(
        cfg.threads_per_block >= cfg.device.warp_size
            && cfg.threads_per_block.is_multiple_of(cfg.device.warp_size),
        "threads_per_block must be a positive multiple of the warp size"
    );
    tracer.set_device_clock_hz(cfg.device.clock_hz as f64);
    let (als, layout) = {
        let _p = collector.phase("layout");
        let mut span = tracer.span("layout", "phase");
        span.attr("kind", format!("{:?}", cfg.layout));
        let als = build_als(g);
        let layout = GlobalLayout::build(
            cfg.layout,
            g.n(),
            &als,
            cfg.device.partitions,
            cfg.device.partition_width,
        );
        (als, layout)
    };
    run_prepared(g, &als, layout, cfg, kernel, collector, tracer)
}

/// Runs the simulated workload kernel like [`run_workload_traced`], but
/// over a caller-supplied ALS slice instead of the graph's full
/// decomposition — the entry point a multi-device fleet uses to run one
/// *shard* (the subset of adjacent level sets assigned to one device).
/// The layout is built over exactly these sets, so the Eq. 1 capacity
/// check applies per shard.
///
/// # Errors
///
/// [`GpuError::GraphTooLarge`] when the shard's layout exceeds the
/// device memory.
pub fn run_workload_traced_with_als<K: ChunkKernel>(
    g: &Graph,
    als: &[Als],
    cfg: &GpuConfig,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, K::Partial), GpuError> {
    assert!(
        cfg.threads_per_block >= cfg.device.warp_size
            && cfg.threads_per_block.is_multiple_of(cfg.device.warp_size),
        "threads_per_block must be a positive multiple of the warp size"
    );
    tracer.set_device_clock_hz(cfg.device.clock_hz as f64);
    let layout = {
        let _p = collector.phase("layout");
        let mut span = tracer.span("layout", "phase");
        span.attr("kind", format!("{:?}", cfg.layout));
        GlobalLayout::build(
            cfg.layout,
            g.n(),
            als,
            cfg.device.partitions,
            cfg.device.partition_width,
        )
    };
    run_prepared(g, als, layout, cfg, kernel, collector, tracer)
}

/// The shared tail of the workload entry points: capacity check, block
/// simulation, §VI dispatch, and result assembly over an already-built
/// ALS slice and layout.
fn run_prepared<K: ChunkKernel>(
    g: &Graph,
    als: &[Als],
    layout: GlobalLayout,
    cfg: &GpuConfig,
    kernel: &K,
    collector: &mut Collector,
    tracer: &Tracer,
) -> Result<(GpuRunResult, K::Partial), GpuError> {
    if layout.total_bytes() > cfg.device.global_mem_bytes {
        return Err(GpuError::GraphTooLarge {
            needed: layout.total_bytes(),
            capacity: cfg.device.global_mem_bytes,
        });
    }

    let (blocks, origins) = {
        let _p = collector.phase("count");
        let _span = tracer.span("count", "phase");
        match cfg.mode {
            FidelityMode::Exhaustive => simulate_exhaustive(g, als, &layout, cfg, kernel),
            FidelityMode::Sampled { sample_steps } => {
                simulate_sampled(g, als, &layout, cfg, kernel, sample_steps)
            }
            FidelityMode::Intersect => simulate_intersect(g, als, cfg, kernel),
        }
    };

    // §VI dispatch, then phase-wise accounting.
    let dispatch_guard = collector.phase("dispatch");
    let dispatch_span = tracer.span("dispatch", "phase");
    let spec = &cfg.device;
    let job_sizes: Vec<u64> = blocks
        .iter()
        .map(|b| b.compute_cycles + b.mem_base_cycles)
        .collect();
    let schedule = match cfg.schedule {
        SchedulePolicy::RoundRobin => trigon_sched::round_robin(&job_sizes, spec.sm_count),
        SchedulePolicy::Greedy => trigon_sched::list_schedule(&job_sizes, spec.sm_count),
        SchedulePolicy::Lpt => trigon_sched::lpt(&job_sizes, spec.sm_count),
    };
    // Counter attribution happens here — outside the dispatch loop —
    // from the blocks' simulate-time prices and the *scheduled* SM
    // assignment. Fault recovery below may retry or migrate blocks, but
    // it never re-prices them, so the profile is identical under any
    // fault plan and thread width.
    let mut profile = ProfileData::new(als.len(), spec.sm_count as usize);
    for (b, &sm) in blocks.iter().zip(schedule.assignment.iter()) {
        profile.record(b.als_idx, sm as usize, &b.counters());
    }
    profile
        .devices
        .push(DeviceProfile::new(spec, profile.totals.clone()));
    // The kernel's simulated timeline starts once the layout has crossed
    // PCIe; per-block SM spans are offset past the transfer span (and,
    // under fault injection, past every failed attempt and its backoff).
    let transfer_model = TransferModel::from_spec(spec);
    let mut outcome = cfg.faults.as_ref().map(|_| FaultOutcome::new());
    let mut transfer_s = transfer_model.transfer_seconds(layout.total_bytes());
    let mut transfer_landed = true;
    let kernel_start_cycles = if let (Some(fc), Some(out)) = (cfg.faults.as_ref(), outcome.as_mut())
    {
        let t = transfer_with_faults(&transfer_model, layout.total_bytes(), spec, fc, out, tracer);
        transfer_s = t.seconds;
        transfer_landed = t.landed;
        t.end_cycles
    } else if tracer.enabled() {
        emit::trace_transfer(
            tracer,
            &transfer_model,
            layout.total_bytes(),
            spec.clock_hz,
            0,
        )
    } else {
        0
    };

    let d = if transfer_landed {
        let ctx = DispatchCtx {
            g,
            als,
            spec,
            blocks: &blocks,
            origins: &origins,
            job_sizes: &job_sizes,
            assignment: &schedule.assignment,
            tracer,
            kernel_start_cycles,
        };
        let faults = match (cfg.faults.as_ref(), outcome.as_mut()) {
            (Some(fc), Some(o)) => Some((fc, o)),
            _ => None,
        };
        dispatch_rounds(kernel, ctx, faults)
    } else {
        // Transfer retries exhausted: the kernel never launches and the
        // whole run degrades to the host path — every block's true
        // contribution is recomputed from its origin.
        let o = outcome
            .as_mut()
            .expect("transfer faults imply a fault config");
        o.run_cpu_fallback = true;
        o.record(FaultEvent::RunCpuFallback);
        tracer.instant_at("recovery.cpu_fallback", Track::Pcie, kernel_start_cycles);
        let mut partial = kernel.identity();
        let mut fallback_tests = 0u128;
        for (b, origin) in blocks.iter().zip(&origins) {
            partial = kernel.merge(partial, partial_for_origin(kernel, g, als, origin));
            fallback_tests += b.tests;
        }
        Dispatched {
            kernel_cycles: 0,
            weighted_camping: 0.0,
            camping_weight: 0.0,
            partial,
            transactions: 0,
            fallback_tests,
        }
    };

    drop(dispatch_span);
    drop(dispatch_guard);

    let tests: u128 = blocks.iter().map(|b| b.tests).sum();
    let kernel_s = if transfer_landed {
        spec.cycles_to_seconds(d.kernel_cycles) + spec.kernel_launch_s
    } else {
        0.0
    };
    let mut host_s = cfg.cost.host_prep_seconds(g.n(), g.m());
    if d.fallback_tests > 0 {
        host_s += cfg.cost.cpu_seconds(g.n(), d.fallback_tests);
    }
    let context_s = cfg.cost.gpu_context_init_s;
    let makespan_cycles = schedule.makespan();
    let sm_utilization = emit::sm_utilization(&schedule.loads);
    let camping_factor = if d.camping_weight > 0.0 {
        d.weighted_camping / d.camping_weight
    } else {
        1.0
    };
    if collector.enabled() {
        let mut all_traffic = PartitionTraffic::new(spec);
        for b in &blocks {
            all_traffic.merge(&b.traffic);
        }
        emit::emit_traffic(collector, "kernel", &all_traffic);
        emit::emit_transfer(collector, &transfer_model, layout.total_bytes());
        collector.add("gpu.transactions", d.transactions);
        collector.add("gpu.kernel_cycles", d.kernel_cycles);
        collector.add("gpu.makespan_cycles", makespan_cycles);
        collector.add("gpu.blocks", blocks.len() as u64);
        collector.gauge("gpu.sm_utilization", sm_utilization);
        collector.gauge("gpu.camping_factor", camping_factor);
        collector.gauge("gpu.schedule_imbalance", schedule.imbalance());
        if let Some(o) = outcome.as_ref() {
            collector.add("faults.injected", u64::from(o.injected.total()));
            collector.add("faults.transfer_retries", u64::from(o.transfer_retries));
            collector.add("faults.chunk_retries", u64::from(o.chunk_retries));
            collector.add("faults.reassigned_chunks", o.reassigned_chunks);
            collector.add("faults.cpu_fallback_chunks", o.cpu_fallback_chunks);
            collector.add("faults.backoff_cycles", o.backoff_cycles);
        }
    }
    Ok((
        GpuRunResult {
            triangles: kernel.triangles_in(&d.partial),
            tests,
            transactions: d.transactions,
            camping_factor,
            kernel_cycles: d.kernel_cycles,
            kernel_s,
            transfer_s,
            host_s,
            context_s,
            total_s: kernel_s + transfer_s + host_s + context_s,
            blocks: blocks.len(),
            layout_bytes: layout.total_bytes(),
            schedule_imbalance: schedule.imbalance(),
            makespan_cycles,
            sm_utilization,
            faults: outcome,
            profile,
        },
        d.partial,
    ))
}

/// How a block's true workload contribution is recomputed on the host
/// when recovery has to abandon the device result.
#[derive(Debug, Clone, Copy)]
enum BlockOrigin {
    /// Exhaustive block: functionally re-walk its combination range.
    Range(BlockWork),
    /// Sampled pseudo-block carrying its ALS's whole partial.
    AlsTotal(usize),
    /// Sampled pseudo-block with no workload share.
    Zero,
}

/// Host recomputation of one block's true workload contribution.
fn partial_for_origin<K: ChunkKernel>(
    kernel: &K,
    g: &Graph,
    als: &[Als],
    origin: &BlockOrigin,
) -> K::Partial {
    match *origin {
        BlockOrigin::Range(work) => {
            let a = &als[work.als_idx];
            let space = a.space(3);
            let mut cursor = space.cursor_at(work.mode, work.start);
            let mut remaining = work.len;
            let mut p = kernel.identity();
            while remaining > 0 {
                let c = cursor.current().expect("cursor within counted range");
                if a.edge(g, c[0], c[1]) && a.edge(g, c[0], c[2]) && a.edge(g, c[1], c[2]) {
                    kernel.emit(&mut p, g, a, c);
                }
                let _ = cursor.advance();
                remaining -= 1;
            }
            p
        }
        BlockOrigin::AlsTotal(ai) => kernel.compute_als(g, &als[ai]),
        BlockOrigin::Zero => kernel.identity(),
    }
}

/// End state of the (possibly faulted) H2D transfer.
pub(crate) struct TransferAttempts {
    /// Simulated cycle the transfer (or its last failed attempt) ended.
    pub(crate) end_cycles: u64,
    /// Modeled seconds across all attempts and backoffs.
    pub(crate) seconds: f64,
    /// Whether the data reached the device.
    pub(crate) landed: bool,
}

/// Plays the H2D transfer under the fault plan: every injected transfer
/// fault fails one attempt (traced as its own PCIe span plus a
/// `fault.xfer` instant) and pays a capped exponential backoff in
/// simulated cycles before the retry. When the plan holds at least
/// `max_transfer_retries` failures the transfer never lands and the run
/// must degrade to the CPU path.
pub(crate) fn transfer_with_faults(
    model: &TransferModel,
    bytes: u64,
    spec: &DeviceSpec,
    fc: &FaultConfig,
    out: &mut FaultOutcome,
    tracer: &Tracer,
) -> TransferAttempts {
    let failures = fc.plan.spec().xfer;
    let attempt_s = model.transfer_seconds(bytes);
    let mut cursor = 0u64;
    let mut seconds = 0.0f64;
    let mut failed = 0u32;
    loop {
        if failed < failures {
            if failed >= fc.max_transfer_retries {
                return TransferAttempts {
                    end_cycles: cursor,
                    seconds,
                    landed: false,
                };
            }
            cursor = emit::trace_transfer_labeled(
                tracer,
                "H2D transfer (failed)",
                model,
                bytes,
                spec.clock_hz,
                cursor,
            );
            tracer.instant_at("fault.xfer", Track::Pcie, cursor);
            failed += 1;
            seconds += attempt_s;
            out.injected.xfer += 1;
            out.transfer_retries += 1;
            out.record(FaultEvent::XferFault { attempt: failed });
            let backoff = fc.backoff_cycles(failed);
            out.backoff_cycles += backoff;
            out.record(FaultEvent::XferRetry {
                attempt: failed,
                backoff_cycles: backoff,
            });
            cursor += backoff;
            seconds += spec.cycles_to_seconds(backoff);
        } else {
            cursor = emit::trace_transfer_labeled(
                tracer,
                "H2D transfer",
                model,
                bytes,
                spec.clock_hz,
                cursor,
            );
            seconds += attempt_s;
            return TransferAttempts {
                end_cycles: cursor,
                seconds,
                landed: true,
            };
        }
    }
}

/// Everything the round loop needs to price (and, under faults,
/// recover) the block dispatch.
struct DispatchCtx<'a, P> {
    g: &'a Graph,
    als: &'a [Als],
    spec: &'a DeviceSpec,
    blocks: &'a [BlockSim<P>],
    origins: &'a [BlockOrigin],
    job_sizes: &'a [u64],
    assignment: &'a [u32],
    tracer: &'a Tracer,
    kernel_start_cycles: u64,
}

/// Aggregates of the dispatch rounds.
struct Dispatched<P> {
    kernel_cycles: u64,
    weighted_camping: f64,
    camping_weight: f64,
    partial: P,
    transactions: u64,
    fallback_tests: u128,
}

/// The §VI round loop, unified across the perfect and fault-injected
/// device. With `faults: None` (or an empty plan) it reproduces the
/// perfect dispatch exactly — same spans, same attributes, same cycle
/// accounting — which is what the byte-identical-trace property test
/// pins. Under faults, each completion consumes its pending ECC/abort
/// injections; recovery requeues the chunk onto the currently
/// least-loaded surviving SM (Graham's step, the paper's makespan
/// argument applied online), and a chunk that exhausts its retries is
/// recomputed on the host.
fn dispatch_rounds<K: ChunkKernel>(
    kernel: &K,
    ctx: DispatchCtx<'_, K::Partial>,
    mut faults: Option<(&FaultConfig, &mut FaultOutcome)>,
) -> Dispatched<K::Partial> {
    let DispatchCtx {
        g,
        als,
        spec,
        blocks,
        origins,
        job_sizes,
        assignment,
        tracer,
        kernel_start_cycles,
    } = ctx;
    let sm_count = spec.sm_count as usize;
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); sm_count];
    let mut rem_load = vec![0u64; sm_count];
    for (i, &sm) in assignment.iter().enumerate() {
        queues[sm as usize].push_back(i);
        rem_load[sm as usize] += job_sizes[i];
    }
    let rounds0 = queues.iter().map(VecDeque::len).max().unwrap_or(0);

    // Resolve the plan's targets up front so the loop is a pure function
    // of (graph, config, plan).
    let mut ecc_pending = vec![0u32; blocks.len()];
    let mut abort_pending = vec![0u32; blocks.len()];
    let mut stalls: Vec<(u32, usize)> = Vec::new();
    if let Some((fc, _)) = faults.as_ref() {
        for b in fc.plan.ecc_targets(blocks.len()) {
            ecc_pending[b] += 1;
        }
        for b in fc.plan.abort_targets(blocks.len()) {
            abort_pending[b] += 1;
        }
        stalls = fc.plan.stall_targets(spec.sm_count, rounds0);
    }

    let mut alive = vec![true; sm_count];
    // Cumulative per-SM transactions for the Perfetto counter tracks
    // (trace-only; profile attribution happens at schedule time).
    let mut sm_cum_tx = vec![0u64; if tracer.enabled() { sm_count } else { 0 }];
    let mut committed: Vec<Option<K::Partial>> = vec![None; blocks.len()];
    let mut retries = vec![0u32; blocks.len()];
    let mut ecc_seen = vec![0u32; blocks.len()];
    let mut out = Dispatched {
        kernel_cycles: 0,
        weighted_camping: 0.0,
        camping_weight: 0.0,
        partial: kernel.identity(),
        transactions: 0,
        fallback_tests: 0,
    };

    let mut r = 0usize;
    while queues
        .iter()
        .enumerate()
        .any(|(s, q)| alive[s] && !q.is_empty())
    {
        let phase_start = kernel_start_cycles + out.kernel_cycles;
        // Stalls scheduled for this round strike before it dispatches:
        // the SM dies and (under recovery) its whole queue migrates to
        // the survivors, least-loaded first.
        if let Some((fc, o)) = faults.as_mut() {
            for &(sm, at) in &stalls {
                let s = sm as usize;
                if at != r || !alive[s] {
                    continue;
                }
                alive[s] = false;
                o.injected.stall += 1;
                o.stalled_sms += 1;
                o.record(FaultEvent::SmStall {
                    sm,
                    round: r as u32,
                });
                tracer.instant_at("fault.stall", Track::Sm(sm), phase_start);
                let stranded: Vec<usize> = queues[s].drain(..).collect();
                for b in stranded {
                    rem_load[s] -= job_sizes[b];
                    if !fc.recovery {
                        continue; // stranded for good: its result never arrives
                    }
                    if let Some(d) = trigon_sched::least_loaded_alive(&rem_load, &alive) {
                        queues[d].push_back(b);
                        rem_load[d] += job_sizes[b];
                        o.reassigned_chunks += 1;
                        o.record(FaultEvent::ChunkReassigned {
                            chunk: b,
                            from: sm,
                            to: d as u32,
                        });
                        tracer.instant_at("recovery.reassign", Track::Sm(d as u32), phase_start);
                    } else {
                        committed[b] = Some(partial_for_origin(kernel, g, als, &origins[b]));
                        out.fallback_tests += blocks[b].tests;
                        o.cpu_fallback_chunks += 1;
                        o.record(FaultEvent::ChunkCpuFallback { chunk: b });
                        tracer.instant_at("recovery.cpu_fallback", Track::Pcie, phase_start);
                    }
                }
            }
        }

        let active: Vec<(usize, usize)> = queues
            .iter()
            .enumerate()
            .filter(|&(s, q)| alive[s] && !q.is_empty())
            .map(|(s, q)| (s, *q.front().expect("queue checked nonempty")))
            .collect();
        if active.is_empty() {
            break;
        }
        let mut merged = PartitionTraffic::new(spec);
        for &(_, b) in &active {
            merged.merge(&blocks[b].traffic);
        }
        // Camping factor of this phase (1.0 on cached 2.x devices).
        let factor = if spec.compute_capability.has_cached_global() || merged.total() == 0 {
            1.0
        } else {
            merged.camping_factor()
        };
        let block_cycles = |b: usize| {
            blocks[b].compute_cycles + (blocks[b].mem_base_cycles as f64 * factor).round() as u64
        };
        let phase_cycles = active
            .iter()
            .map(|&(_, b)| block_cycles(b))
            .max()
            .unwrap_or(0);
        if tracer.enabled() {
            for &(sm, b) in &active {
                let cycles = block_cycles(b);
                tracer.device_span(
                    &format!("block {b}"),
                    "kernel",
                    Track::Sm(sm as u32),
                    phase_start,
                    cycles,
                    &[
                        ("round", AttrValue::UInt(r as u64)),
                        ("transactions", AttrValue::UInt(blocks[b].transactions)),
                        ("camping_factor", AttrValue::Float(factor)),
                        ("tests", AttrValue::UInt(blocks[b].tests as u64)),
                    ],
                );
                tracer.record("block.cycles", cycles as f64);
                tracer.record("block.transactions", blocks[b].transactions as f64);
                // Counter tracks: per-SM occupancy steps to 1 while the
                // block runs, and the cumulative transaction count
                // advances at its completion. Emitted from the shared
                // round loop, so a zero-fault plan stays byte-identical
                // to the perfect device.
                sm_cum_tx[sm] += blocks[b].transactions;
                let lane = Track::Sm(sm as u32);
                tracer.counter("sm.occupancy", lane, phase_start, 1.0);
                tracer.counter("sm.occupancy", lane, phase_start + cycles, 0.0);
                tracer.counter(
                    "sm.transactions",
                    lane,
                    phase_start + cycles,
                    sm_cum_tx[sm] as f64,
                );
            }
        }

        // Completions: pop each active block and commit (or fault) it.
        let mut round_backoff = 0u64;
        for &(sm, b) in &active {
            let popped = queues[sm].pop_front();
            debug_assert_eq!(popped, Some(b));
            rem_load[sm] -= job_sizes[b];
            out.transactions += blocks[b].transactions;
            let end = phase_start + block_cycles(b);
            let Some((fc, o)) = faults.as_mut() else {
                committed[b] = Some(blocks[b].partial.clone());
                continue;
            };
            let mut faulted = false;
            if abort_pending[b] > 0 {
                // The kernel burned its cycles, then died: no result.
                abort_pending[b] -= 1;
                o.injected.abort += 1;
                o.record(FaultEvent::KernelAbort {
                    chunk: b,
                    sm: sm as u32,
                    round: r as u32,
                });
                tracer.instant_at("fault.abort", Track::Sm(sm as u32), end);
                faulted = true;
            } else if ecc_pending[b] > 0 {
                // The result lands, but an ECC read corruption flips
                // mask-derived bits of the partial — without recovery
                // this *is* the committed partial (the property suite's
                // negative control).
                ecc_pending[b] -= 1;
                let mask = fc.plan.corruption_mask(b, ecc_seen[b]);
                ecc_seen[b] += 1;
                let mut corrupted = blocks[b].partial.clone();
                kernel.corrupt(&mut corrupted, mask);
                committed[b] = Some(corrupted);
                o.injected.ecc += 1;
                o.record(FaultEvent::EccCorruption {
                    chunk: b,
                    sm: sm as u32,
                    round: r as u32,
                });
                tracer.instant_at("fault.ecc", Track::Sm(sm as u32), end);
                faulted = true;
            } else {
                committed[b] = Some(blocks[b].partial.clone());
            }
            if faulted && fc.recovery {
                retries[b] += 1;
                let attempt = retries[b];
                if attempt <= fc.max_chunk_retries {
                    if let Some(d) = trigon_sched::least_loaded_alive(&rem_load, &alive) {
                        let backoff = fc.backoff_cycles(attempt);
                        round_backoff += backoff;
                        o.backoff_cycles += backoff;
                        o.chunk_retries += 1;
                        queues[d].push_back(b);
                        rem_load[d] += job_sizes[b];
                        o.record(FaultEvent::ChunkRequeued {
                            chunk: b,
                            to: d as u32,
                            attempt,
                            backoff_cycles: backoff,
                        });
                        tracer.instant_at("recovery.requeue", Track::Sm(d as u32), end);
                        continue;
                    }
                }
                // Retries exhausted (or no SM left): host recompute.
                committed[b] = Some(partial_for_origin(kernel, g, als, &origins[b]));
                out.fallback_tests += blocks[b].tests;
                o.cpu_fallback_chunks += 1;
                o.record(FaultEvent::ChunkCpuFallback { chunk: b });
                tracer.instant_at("recovery.cpu_fallback", Track::Pcie, end);
            }
        }
        out.kernel_cycles += phase_cycles;
        let mem_in_phase: u64 = active.iter().map(|&(_, b)| blocks[b].mem_base_cycles).sum();
        out.weighted_camping += factor * mem_in_phase as f64;
        out.camping_weight += mem_in_phase as f64;
        // One camping_cycles call keeps the latency term in the books.
        out.kernel_cycles += camping_cycles(&merged, spec).min(spec.global_latency_cycles);
        // Relaunch backoffs serialize on the device timeline.
        out.kernel_cycles += round_backoff;
        r += 1;
    }

    // The final reduction folds committed partials in canonical block
    // order — kernels' merges are deterministic under that order; a
    // never-committed block (unrecovered abort/stall) contributes the
    // identity.
    out.partial = committed
        .into_iter()
        .fold(kernel.identity(), |acc, c| match c {
            Some(p) => kernel.merge(acc, p),
            None => acc,
        });
    out
}

/// Per-worker-thread reusable step scratch (`addrs`, `lane_combos`):
/// thousands of blocks run per simulation, and allocating two fresh
/// vectors per block showed up in the perf baseline. The pool reuses
/// threads across blocks, so thread-local buffers amortize to zero.
struct StepScratch {
    addrs: Vec<u64>,
    lane_combos: Vec<[u32; 3]>,
}

thread_local! {
    static STEP_SCRATCH: std::cell::RefCell<StepScratch> =
        const { std::cell::RefCell::new(StepScratch { addrs: Vec::new(), lane_combos: Vec::new() }) };
}

/// Runs `f` with the thread's reusable step scratch.
fn with_scratch<R>(f: impl FnOnce(&mut StepScratch) -> R) -> R {
    STEP_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

fn make_block_work(als: &[Als], cfg: &GpuConfig) -> Vec<BlockWork> {
    match cfg.division {
        WorkDivision::EqualBlocks => make_equal_blocks(als, cfg),
        WorkDivision::LeadingElement => make_leading_blocks(als),
    }
}

/// Strategy D: fixed-grain contiguous blocks per mode stream.
fn make_equal_blocks(als: &[Als], cfg: &GpuConfig) -> Vec<BlockWork> {
    let block_tests = u128::from(cfg.threads_per_block) * u128::from(cfg.tests_per_thread);
    let mut work = Vec::new();
    for (ai, a) in als.iter().enumerate() {
        let space = a.space(3);
        for &mode in a.modes() {
            let total = space.count(mode);
            let mut start = 0u128;
            while start < total {
                let len = block_tests.min(total - start);
                work.push(BlockWork {
                    als_idx: ai,
                    mode,
                    start,
                    len,
                });
                start += len;
            }
        }
    }
    work
}

/// Strategy C: one block per leading element over the lex streams.
/// `AtLeastOneFirst` covers `FirstOnly ∪ Mixed` exactly, so the total
/// workload is identical to strategy D's — only its partition differs.
fn make_leading_blocks(als: &[Als]) -> Vec<BlockWork> {
    let mut work = Vec::new();
    for (ai, a) in als.iter().enumerate() {
        let space = a.space(3);
        let mut streams = vec![CrossMode::AtLeastOneFirst];
        if a.is_last {
            streams.push(CrossMode::SecondOnly);
        }
        for mode in streams {
            for r in space.leading_ranges(mode) {
                work.push(BlockWork {
                    als_idx: ai,
                    mode,
                    start: r.start,
                    len: r.len,
                });
            }
        }
    }
    work
}

/// Prices (and functionally executes) one exhaustive block.
fn simulate_block<K: ChunkKernel>(
    g: &Graph,
    als: &Als,
    layout: &GlobalLayout,
    cfg: &GpuConfig,
    kernel: &K,
    work: BlockWork,
) -> BlockSim<K::Partial> {
    let spec = &cfg.device;
    let warp = spec.warp_size as usize;
    let warps = (cfg.threads_per_block / spec.warp_size) as u64;
    let space = als.space(3);
    let mut sim = BlockSim {
        als_idx: work.als_idx,
        compute_cycles: 0,
        mem_base_cycles: 0,
        transactions: 0,
        min_transactions: 0,
        traffic: PartitionTraffic::new(spec),
        partial: kernel.identity(),
        tests: 0,
        bank_conflicts: 0,
        intersect: false,
    };
    with_scratch(|scratch| {
        let StepScratch { addrs, lane_combos } = scratch;
        for range in equal_division(work.len, warps) {
            if range.len == 0 {
                continue;
            }
            let mut cursor = space.cursor_at(work.mode, work.start + range.start);
            let mut remaining = range.len;
            while remaining > 0 {
                let step = (remaining.min(warp as u128)) as usize;
                lane_combos.clear();
                for _ in 0..step {
                    let c = cursor.current().expect("cursor within counted range");
                    lane_combos.push([c[0], c[1], c[2]]);
                    let _ = cursor.advance();
                }
                remaining -= step as u128;
                sim.tests += step as u128;
                // Functional test; survivors feed the workload kernel.
                for c in lane_combos.iter() {
                    if als.edge(g, c[0], c[1]) && als.edge(g, c[0], c[2]) && als.edge(g, c[1], c[2])
                    {
                        kernel.emit(&mut sim.partial, g, als, &c[..]);
                    }
                }
                // Price the three load phases.
                let (step_tx, step_min) = price_step(
                    layout,
                    als,
                    work.als_idx,
                    lane_combos,
                    spec,
                    addrs,
                    &mut sim.traffic,
                );
                sim.transactions += u64::from(step_tx);
                sim.min_transactions += u64::from(step_min);
                sim.compute_cycles += cfg.cost.gpu_step_base_cycles;
                sim.mem_base_cycles += (f64::from(step_tx)
                    * spec.transaction_service_cycles as f64
                    * cfg.cost.gpu_mem_derate)
                    .round() as u64;
            }
        }
    });
    sim
}

/// Coalesces the three adjacency loads of one warp step; returns the
/// issued transaction count plus the perfectly-coalesced minimum (one
/// 128-byte segment per phase covers a full warp of 4-byte words), and
/// records partition traffic.
fn price_step(
    layout: &GlobalLayout,
    als: &Als,
    als_idx: usize,
    lane_combos: &[[u32; 3]],
    spec: &DeviceSpec,
    addrs: &mut Vec<u64>,
    traffic: &mut PartitionTraffic,
) -> (u32, u32) {
    let mut total = 0u32;
    let mut minimal = 0u32;
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        addrs.clear();
        for c in lane_combos {
            let (u, v) = (c[i], c[j]);
            let addr = match layout.kind() {
                LayoutKind::Monolithic => layout.word_addr(0, als.global_id(u), als.global_id(v)),
                LayoutKind::AlsPartitionAligned => layout.word_addr(als_idx, u, v),
            };
            addrs.push(addr);
        }
        let summary = warp_transactions(spec.compute_capability, addrs, 4);
        traffic.record_all(&summary.segment_addrs);
        total += summary.transactions;
        minimal += (addrs.len() as u32 * 4).div_ceil(128).max(1);
    }
    (total, minimal)
}

fn simulate_exhaustive<K: ChunkKernel>(
    g: &Graph,
    als: &[Als],
    layout: &GlobalLayout,
    cfg: &GpuConfig,
    kernel: &K,
) -> (Vec<BlockSim<K::Partial>>, Vec<BlockOrigin>) {
    let work = make_block_work(als, cfg);
    let sims = work
        .par_iter()
        .map(|w| simulate_block(g, &als[w.als_idx], layout, cfg, kernel, *w))
        .collect();
    let origins = work.into_iter().map(BlockOrigin::Range).collect();
    (sims, origins)
}

/// Sampled fidelity: price deterministic sample steps, scale by exact
/// counts, take workload partials from the host's per-ALS compute.
fn simulate_sampled<K: ChunkKernel>(
    g: &Graph,
    als: &[Als],
    layout: &GlobalLayout,
    cfg: &GpuConfig,
    kernel: &K,
    sample_steps: u32,
) -> (Vec<BlockSim<K::Partial>>, Vec<BlockOrigin>) {
    let spec = &cfg.device;
    let warp = spec.warp_size as usize;
    let block_tests = u128::from(cfg.threads_per_block) * u128::from(cfg.tests_per_thread);
    // Cap pseudo-blocks per ALS so huge spaces stay tractable while the
    // schedule still has makespan structure.
    let max_jobs_per_als = 4 * spec.sm_count as usize;

    let per_als: Vec<Vec<(BlockSim<K::Partial>, BlockOrigin)>> = als
        .par_iter()
        .enumerate()
        .map(|(ai, a)| {
            let space = a.space(3);
            let mut rng = Xoshiro256pp::seed_from_u64(0x5A3D ^ (ai as u64) << 8);
            let mut traffic = PartitionTraffic::new(spec);
            let mut sampled_tests = 0u128;
            let mut sampled_tx = 0u64;
            let mut sampled_min_tx = 0u64;
            let mut total_tests = 0u128;
            with_scratch(|scratch| {
                let StepScratch { addrs, lane_combos } = scratch;
                for &mode in a.modes() {
                    let total = space.count(mode);
                    total_tests += total;
                    if total == 0 {
                        continue;
                    }
                    for _ in 0..sample_steps {
                        let max_start = total.saturating_sub(warp as u128);
                        let start = if max_start == 0 {
                            0
                        } else {
                            u128::from(rng.next_u64()) % (max_start + 1)
                        };
                        let mut cursor = space.cursor_at(mode, start);
                        lane_combos.clear();
                        for _ in 0..warp.min(total as usize) {
                            let Some(c) = cursor.current() else { break };
                            lane_combos.push([c[0], c[1], c[2]]);
                            let _ = cursor.advance();
                        }
                        if lane_combos.is_empty() {
                            continue;
                        }
                        sampled_tests += lane_combos.len() as u128;
                        let (tx, min_tx) =
                            price_step(layout, a, ai, lane_combos, spec, addrs, &mut traffic);
                        sampled_tx += u64::from(tx);
                        sampled_min_tx += u64::from(min_tx);
                    }
                }
            });
            if total_tests == 0 {
                return Vec::new();
            }
            // Scale to the full workload.
            let scale = total_tests as f64 / sampled_tests.max(1) as f64;
            let total_steps = total_tests.div_ceil(warp as u128);
            let total_tx = (sampled_tx as f64 * scale).round() as u64;
            let total_min_tx = (sampled_min_tx as f64 * scale).round() as u64;
            let jobs = usize::try_from(total_tests.div_ceil(block_tests))
                .unwrap_or(max_jobs_per_als)
                .clamp(1, max_jobs_per_als);
            // The whole ALS's partial rides on pseudo-block 0; the rest
            // carry the identity (their origins are Zero accordingly).
            let mut als_partial = Some(kernel.compute_als(g, a));
            let mut out = Vec::with_capacity(jobs);
            for j in 0..jobs {
                let share = |x: u128| -> u128 {
                    x * (j as u128 + 1) / jobs as u128 - x * (j as u128) / jobs as u128
                };
                let job_tests = share(total_tests);
                let job_steps = share(total_steps) as u64;
                let mut job_traffic = PartitionTraffic::new(spec);
                // Scale the sampled histogram to this job's share.
                let counts: Vec<u64> = traffic
                    .counts()
                    .iter()
                    .map(|&c| ((c as f64 * scale) / jobs as f64).round() as u64)
                    .collect();
                for (p, &c) in counts.iter().enumerate() {
                    job_traffic.record_bulk(p as u32, c);
                }
                out.push((
                    BlockSim {
                        als_idx: ai,
                        compute_cycles: job_steps * cfg.cost.gpu_step_base_cycles,
                        mem_base_cycles: ((total_tx as f64 / jobs as f64)
                            * spec.transaction_service_cycles as f64
                            * cfg.cost.gpu_mem_derate)
                            .round() as u64,
                        transactions: total_tx / jobs as u64,
                        min_transactions: total_min_tx / jobs as u64,
                        traffic: job_traffic,
                        partial: if j == 0 {
                            als_partial.take().expect("first job takes the partial")
                        } else {
                            kernel.identity()
                        },
                        tests: job_tests,
                        bank_conflicts: 0,
                        intersect: false,
                    },
                    if j == 0 {
                        BlockOrigin::AlsTotal(ai)
                    } else {
                        BlockOrigin::Zero
                    },
                ))
            }
            out
        })
        .collect();
    per_als.into_iter().flatten().unzip()
}

/// Intersect fidelity: run the degree-ordered adjacency-intersection
/// kernel per ALS on the host, then price its *exact* operation counts
/// as a device execution — the pseudo-block machinery of
/// [`simulate_sampled`] with the combination sampling replaced by
/// [`crate::intersect::als_stats`].
///
/// Pricing model (per ALS, split across pseudo-blocks):
/// * compute — one warp step per `warp_size` intersection ops;
/// * memory — CSR row scans, merged lists, and bitmap words stream
///   sequentially, so they coalesce at 32 4-byte words per 128-byte
///   transaction; every galloping probe is a scattered single-word
///   access costing a full transaction (the gallop kernel trades
///   coalescing for fewer ops — visible in `min_transactions`);
/// * bank conflicts — bitmap rows live in shared memory; consecutive
///   lanes of a warp read consecutive words, so each pass over the
///   device's `shared_banks` words serializes one extra access.
fn simulate_intersect<K: ChunkKernel>(
    g: &Graph,
    als: &[Als],
    cfg: &GpuConfig,
    kernel: &K,
) -> (Vec<BlockSim<K::Partial>>, Vec<BlockOrigin>) {
    let spec = &cfg.device;
    let warp = u128::from(spec.warp_size);
    let block_ops = u128::from(cfg.threads_per_block) * u128::from(cfg.tests_per_thread);
    let max_jobs_per_als = 4 * spec.sm_count as usize;

    let per_als: Vec<Vec<(BlockSim<K::Partial>, BlockOrigin)>> = als
        .par_iter()
        .enumerate()
        .map(|(ai, a)| {
            let stats = crate::intersect::als_stats(g, a);
            let total_ops = u128::from(stats.ops());
            if total_ops == 0 {
                // No intersection work ⇒ no triangles (every counted
                // triangle costs at least one op), so the ALS can be
                // skipped entirely, like an empty space in sampled mode.
                return Vec::new();
            }
            let total_steps = total_ops.div_ceil(warp);
            // Sequential streams coalesce; galloping probes do not.
            let seq_tx = stats.seq_words.div_ceil(32);
            let total_tx = seq_tx + stats.gallop_probes;
            let total_min_tx = (stats.seq_words + stats.gallop_probes).div_ceil(32);
            let bank_conflicts = stats.bitmap_words / u64::from(spec.shared_banks.max(1));
            let jobs = usize::try_from(total_ops.div_ceil(block_ops))
                .unwrap_or(max_jobs_per_als)
                .clamp(1, max_jobs_per_als);
            // Row scans walk the layout in address order, so traffic
            // spreads evenly over the partitions — the camping-free
            // profile that is the point of this kernel.
            let parts = spec.partitions.max(1) as u64;
            let mut als_partial = Some(kernel.compute_als(g, a));
            let mut out = Vec::with_capacity(jobs);
            for j in 0..jobs {
                let share = |x: u128| -> u128 {
                    x * (j as u128 + 1) / jobs as u128 - x * (j as u128) / jobs as u128
                };
                let share64 = |x: u64| -> u64 { share(u128::from(x)) as u64 };
                let job_tx = share64(total_tx);
                let mut job_traffic = PartitionTraffic::new(spec);
                for p in 0..parts {
                    job_traffic
                        .record_bulk(p as u32, job_tx / parts + u64::from(p < job_tx % parts));
                }
                out.push((
                    BlockSim {
                        als_idx: ai,
                        compute_cycles: share(total_steps) as u64 * cfg.cost.gpu_step_base_cycles,
                        mem_base_cycles: (job_tx as f64
                            * spec.transaction_service_cycles as f64
                            * cfg.cost.gpu_mem_derate)
                            .round() as u64,
                        transactions: job_tx,
                        min_transactions: share64(total_min_tx),
                        traffic: job_traffic,
                        partial: if j == 0 {
                            als_partial.take().expect("first job takes the partial")
                        } else {
                            kernel.identity()
                        },
                        tests: share(total_ops),
                        bank_conflicts: share64(bank_conflicts),
                        intersect: true,
                    },
                    if j == 0 {
                        BlockOrigin::AlsTotal(ai)
                    } else {
                        BlockOrigin::Zero
                    },
                ))
            }
            out
        })
        .collect();
    per_als.into_iter().flatten().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_graph::{gen, triangles};

    fn c1060() -> DeviceSpec {
        DeviceSpec::c1060()
    }

    #[test]
    fn exhaustive_counts_exactly() {
        for seed in 0..4u64 {
            let g = gen::gnp(80, 0.1, seed);
            let expect = triangles::count_edge_iterator(&g);
            for cfg in [GpuConfig::naive(c1060()), GpuConfig::optimized(c1060())] {
                let r = run(&g, &cfg).unwrap();
                assert_eq!(r.triangles, expect, "seed {seed} layout {:?}", cfg.layout);
                assert_eq!(r.tests, crate::count::total_tests(&g));
            }
        }
    }

    #[test]
    fn sampled_counts_exactly_and_prices_consistently() {
        let g = gen::community_ring(2000, 150, 0.15, 3, 2);
        let expect = triangles::count_edge_iterator(&g);
        let cfg = GpuConfig::optimized(c1060()).sampled();
        let r = run(&g, &cfg).unwrap();
        assert_eq!(r.triangles, expect);
        assert_eq!(r.tests, crate::count::total_tests(&g));
        assert!(r.transactions > 0);
        assert!(r.kernel_s > 0.0);
    }

    #[test]
    fn sampled_time_tracks_exhaustive() {
        // On a graph small enough for both, the sampled estimate should be
        // within a modest factor of the exhaustive price.
        let g = gen::gnp(150, 0.08, 3);
        let ex = run(&g, &GpuConfig::optimized(c1060())).unwrap();
        let sa = run(&g, &GpuConfig::optimized(c1060()).sampled()).unwrap();
        let ratio = sa.kernel_s / ex.kernel_s;
        assert!((0.5..2.0).contains(&ratio), "sampled/exhaustive = {ratio}");
    }

    #[test]
    fn naive_layout_camps_optimized_does_not() {
        let g = gen::gnp(600, 16.0 / 600.0, 5);
        let naive = run(&g, &GpuConfig::naive(c1060())).unwrap();
        let opt = run(&g, &GpuConfig::optimized(c1060())).unwrap();
        assert!(
            naive.camping_factor > opt.camping_factor + 0.2,
            "naive {} vs optimized {}",
            naive.camping_factor,
            opt.camping_factor
        );
        assert!(naive.kernel_s > opt.kernel_s, "optimized must be faster");
    }

    #[test]
    fn fig12_band_improvement() {
        // The §XI claim: primitives buy ≈6–8 % end to end. Accept 3–15 %
        // across seeds to keep the test robust while pinning the order of
        // magnitude.
        let g = gen::gnp(1000, 16.0 / 1000.0, 1);
        let naive = run(&g, &GpuConfig::naive(c1060())).unwrap();
        let opt = run(&g, &GpuConfig::optimized(c1060())).unwrap();
        let gain = (naive.total_s - opt.total_s) / naive.total_s;
        assert!(
            (0.02..0.18).contains(&gain),
            "gain {gain} outside the plausible band"
        );
    }

    #[test]
    fn cc20_ignores_camping() {
        let g = gen::gnp(300, 0.05, 2);
        let mut cfg = GpuConfig::naive(DeviceSpec::c2050());
        cfg.schedule = SchedulePolicy::Lpt;
        let r = run(&g, &cfg).unwrap();
        assert!((r.camping_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn too_large_graph_is_rejected() {
        // A graph bigger than the device: fake it with a tiny device.
        let mut small = c1060();
        small.global_mem_bytes = 1024;
        let g = gen::gnp(400, 0.05, 1);
        let err = run(&g, &GpuConfig::naive(small)).unwrap_err();
        match err {
            GpuError::GraphTooLarge { needed, capacity } => {
                assert!(needed > capacity);
                assert_eq!(capacity, 1024);
            }
        }
    }

    #[test]
    fn lpt_beats_or_ties_round_robin_makespan() {
        let g = gen::community_ring(900, 90, 0.2, 2, 4);
        let mut rr = GpuConfig::optimized(c1060());
        rr.schedule = SchedulePolicy::RoundRobin;
        let lpt = run(&g, &GpuConfig::optimized(c1060())).unwrap();
        let rrr = run(&g, &rr).unwrap();
        assert!(lpt.schedule_imbalance <= rrr.schedule_imbalance + 1e-9);
    }

    #[test]
    fn leading_element_division_counts_exactly() {
        // Strategy C repartitions the same workload: identical triangles
        // and identical total test count.
        for seed in 0..3u64 {
            let g = gen::gnp(90, 0.1, seed);
            let mut cfg = GpuConfig::optimized(c1060());
            cfg.division = WorkDivision::LeadingElement;
            let r = run(&g, &cfg).unwrap();
            assert_eq!(
                r.triangles,
                triangles::count_edge_iterator(&g),
                "seed {seed}"
            );
            assert_eq!(r.tests, crate::count::total_tests(&g), "seed {seed}");
        }
    }

    #[test]
    fn leading_element_division_is_less_balanced_statically() {
        // §VIII-C: "threads having id numbers in the beginning doing more
        // work". The imbalance shows under the *static* dispatch the
        // paper describes (ids matching node numbers ⇒ round-robin);
        // LPT would re-balance it — which is exactly why §VI matters.
        let g = gen::gnp(400, 16.0 / 400.0, 2);
        let run_with = |div: WorkDivision| {
            let mut cfg = GpuConfig::optimized(c1060());
            cfg.division = div;
            cfg.schedule = SchedulePolicy::RoundRobin;
            run(&g, &cfg).unwrap()
        };
        let d = run_with(WorkDivision::EqualBlocks);
        let c = run_with(WorkDivision::LeadingElement);
        assert!(
            c.schedule_imbalance > d.schedule_imbalance,
            "C imbalance {} should exceed D imbalance {}",
            c.schedule_imbalance,
            d.schedule_imbalance
        );
        // And LPT recovers the balance even under strategy C.
        let mut cfg = GpuConfig::optimized(c1060());
        cfg.division = WorkDivision::LeadingElement;
        cfg.schedule = SchedulePolicy::Lpt;
        let c_lpt = run(&g, &cfg).unwrap();
        assert!(c_lpt.schedule_imbalance < c.schedule_imbalance);
    }

    #[test]
    fn empty_graph_runs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let r = run(&g, &GpuConfig::naive(c1060())).unwrap();
        assert_eq!(r.triangles, 0);
        assert_eq!(r.tests, 0);
        assert_eq!(r.blocks, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn rejects_bad_block_shape() {
        let g = gen::path(4);
        let mut cfg = GpuConfig::naive(c1060());
        cfg.threads_per_block = 48;
        let _ = run(&g, &cfg);
    }
}
