//! Capacity planning (§IV, Eqs. 1–2, Table II).
//!
//! "To fit the graph in memory, the size required must be less than or
//! equal to the space available": `n² ≤ S` for the adjacency matrix
//! (Eq. 1), `n(n+1)/2 ≤ S` for the UTM (Eq. 2), and the S-UTM variant
//! "increases the size of the largest graph by 1". These functions invert
//! the inequalities exactly in integer arithmetic and regenerate the
//! paper's Table II from the Table I device registry.

use trigon_fleet::FleetSpec;
use trigon_gpu_sim::DeviceSpec;

/// Largest `n` with `n² ≤ bits` (Eq. 1): the biggest graph the full
/// adjacency matrix fits in `bits` of memory.
///
/// ```
/// use trigon_core::max_graph_adjacency;
/// // 16 KB shared memory: ⌊√131072⌋ = 362 — the paper's Table II entry.
/// assert_eq!(max_graph_adjacency(16 * 1024 * 8), 362);
/// ```
#[must_use]
pub fn max_graph_adjacency(bits: u128) -> u64 {
    isqrt(bits)
}

/// Largest `n` with `n(n+1)/2 ≤ bits` (Eq. 2): the UTM capacity.
#[must_use]
pub fn max_graph_utm(bits: u128) -> u64 {
    // n ≈ (√(8S+1) − 1) / 2, then correct by scanning.
    let mut n = (isqrt(8 * bits + 1).saturating_sub(1)) / 2;
    while u128::from(n + 1) * (u128::from(n + 1) + 1) / 2 <= bits {
        n += 1;
    }
    while n > 0 && u128::from(n) * (u128::from(n) + 1) / 2 > bits {
        n -= 1;
    }
    n
}

/// Largest `n` with `n(n−1)/2 ≤ bits`: the S-UTM capacity — exactly
/// [`max_graph_utm`]` + 1`, the "+1" §IV notes for dropping the diagonal.
#[must_use]
pub fn max_graph_sutm(bits: u128) -> u64 {
    max_graph_utm(bits) + 1
}

/// Whether a graph of `n` vertices fits in `bits` under the given packing.
#[must_use]
pub fn fits(n: u64, bits: u128, model: StorageModel) -> bool {
    model.size_bits(n) <= bits
}

/// The three §IV packings, as a size formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageModel {
    /// Full `n²`-bit adjacency matrix.
    AdjacencyMatrix,
    /// Upper triangular incl. diagonal: `n(n+1)/2` bits.
    Utm,
    /// Strictly upper triangular: `n(n−1)/2` bits.
    SUtm,
}

impl StorageModel {
    /// Exact bit footprint of an `n`-vertex graph under this packing.
    #[must_use]
    pub fn size_bits(&self, n: u64) -> u128 {
        let n = u128::from(n);
        match self {
            StorageModel::AdjacencyMatrix => n * n,
            StorageModel::Utm => n * (n + 1) / 2,
            StorageModel::SUtm => n * n.saturating_sub(1) / 2,
        }
    }
}

/// One row of the regenerated Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Device name.
    pub device: &'static str,
    /// Largest graph in shared memory, adjacency matrix.
    pub shared_adj: u64,
    /// Largest graph in shared memory, S-UTM.
    pub shared_sutm: u64,
    /// Largest graph in global memory, adjacency matrix.
    pub global_adj: u64,
    /// Largest graph in global memory, S-UTM.
    pub global_sutm: u64,
}

/// Regenerates Table II from the Table I device registry.
#[must_use]
pub fn table2(devices: &[DeviceSpec]) -> Vec<Table2Row> {
    devices
        .iter()
        .map(|d| Table2Row {
            device: d.name,
            shared_adj: max_graph_adjacency(d.shared_mem_bits()),
            shared_sutm: max_graph_sutm(d.shared_mem_bits()),
            global_adj: max_graph_adjacency(d.global_mem_bits()),
            global_sutm: max_graph_sutm(d.global_mem_bits()),
        })
        .collect()
}

/// The aggregate Table II row of a multi-device fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetRow {
    /// Rendered fleet spec, e.g. `"2xC2050"`.
    pub fleet: String,
    /// Largest graph in the pooled global memory, adjacency matrix.
    pub global_adj: u64,
    /// Largest graph in the pooled global memory, S-UTM.
    pub global_sutm: u64,
}

/// The aggregate-fleet Table II row: Eqs. 1–2 inverted over the roster's
/// *combined* global memory — the capacity ceiling the fleet path's
/// per-device sharding works under. A one-device fleet reduces to that
/// device's own global columns.
#[must_use]
pub fn table2_fleet(fleet: &FleetSpec) -> FleetRow {
    let bits: u128 = fleet
        .devices()
        .iter()
        .map(DeviceSpec::global_mem_bits)
        .sum();
    FleetRow {
        fleet: fleet.to_string(),
        global_adj: max_graph_adjacency(bits),
        global_sutm: max_graph_sutm(bits),
    }
}

/// Integer square root (floor) for `x ≤ u64::MAX²` (all memory sizes).
fn isqrt(x: u128) -> u64 {
    if x == 0 {
        return 0;
    }
    // Float seed, clamped so the exact correction below cannot overflow.
    let mut r = ((x as f64).sqrt() as u128).min(u128::from(u64::MAX));
    while r.checked_mul(r).is_none_or(|rr| rr > x) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|rr| rr <= x) {
        r += 1;
    }
    r as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_gpu_sim::DeviceSpec;

    #[test]
    fn isqrt_exact() {
        for x in 0..2000u128 {
            let r = u128::from(isqrt(x));
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "isqrt({x}) = {r}");
        }
        assert_eq!(isqrt(u128::from(u64::MAX) * u128::from(u64::MAX)), u64::MAX);
    }

    #[test]
    fn paper_shared_memory_numbers() {
        // Table II shared-memory column (16 KB and 48 KB):
        let c1060 = DeviceSpec::c1060();
        assert_eq!(max_graph_adjacency(c1060.shared_mem_bits()), 362);
        assert_eq!(max_graph_sutm(c1060.shared_mem_bits()), 512);
        let c2050 = DeviceSpec::c2050();
        assert_eq!(max_graph_adjacency(c2050.shared_mem_bits()), 627);
        assert_eq!(max_graph_sutm(c2050.shared_mem_bits()), 887);
    }

    #[test]
    fn paper_global_memory_numbers() {
        // Global column. The paper prints 185,363 / 160,529 for the
        // adjacency matrix at 4 GB / 3 GB — exactly ⌊√(bits)⌋.
        let c1060 = DeviceSpec::c1060();
        assert_eq!(max_graph_adjacency(c1060.global_mem_bits()), 185_363);
        let c2050 = DeviceSpec::c2050();
        assert_eq!(max_graph_adjacency(c2050.global_mem_bits()), 160_529);
        let c2070 = DeviceSpec::c2070();
        assert_eq!(max_graph_adjacency(c2070.global_mem_bits()), 227_023);
        // S-UTM columns — every printed Table II value is exact:
        assert_eq!(max_graph_sutm(c1060.global_mem_bits()), 262_144);
        assert_eq!(max_graph_sutm(c2050.global_mem_bits()), 227_023);
        assert_eq!(max_graph_sutm(c2070.global_mem_bits()), 321_060);
    }

    #[test]
    fn utm_sutm_off_by_one() {
        for bits in [1u128 << 17, 1 << 20, 1 << 35, 12345678] {
            assert_eq!(max_graph_sutm(bits), max_graph_utm(bits) + 1, "bits={bits}");
        }
    }

    #[test]
    fn inversion_is_tight() {
        // The returned n fits; n+1 does not.
        for bits in [100u128, 131072, 1 << 25, 999_999] {
            let n = max_graph_adjacency(bits);
            assert!(fits(n, bits, StorageModel::AdjacencyMatrix));
            assert!(!fits(n + 1, bits, StorageModel::AdjacencyMatrix));
            let n = max_graph_utm(bits);
            assert!(fits(n, bits, StorageModel::Utm));
            assert!(!fits(n + 1, bits, StorageModel::Utm));
            let n = max_graph_sutm(bits);
            assert!(fits(n, bits, StorageModel::SUtm));
            assert!(!fits(n + 1, bits, StorageModel::SUtm));
        }
    }

    #[test]
    fn size_formulas() {
        assert_eq!(StorageModel::AdjacencyMatrix.size_bits(10), 100);
        assert_eq!(StorageModel::Utm.size_bits(10), 55);
        assert_eq!(StorageModel::SUtm.size_bits(10), 45);
        assert_eq!(StorageModel::SUtm.size_bits(0), 0);
        assert_eq!(StorageModel::SUtm.size_bits(1), 0);
    }

    #[test]
    fn table2_regeneration() {
        let rows = table2(&DeviceSpec::table1());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].device, "C1060");
        assert_eq!(rows[0].shared_adj, 362);
        assert_eq!(rows[0].shared_sutm, 512);
        assert_eq!(rows[0].global_adj, 185_363);
        // S-UTM always beats the full matrix.
        for r in &rows {
            assert!(r.shared_sutm > r.shared_adj);
            assert!(r.global_sutm > r.global_adj);
        }
        // C2070 ≥ C2050 in global capacity (6 GB vs 3 GB).
        assert!(rows[2].global_adj > rows[1].global_adj);
        // Shared capacities equal for the two Fermi cards.
        assert_eq!(rows[1].shared_adj, rows[2].shared_adj);
    }

    #[test]
    fn fleet_row_pools_global_memory() {
        // 2×C2050 pools 6 GiB — exactly one C2070 — so the aggregate
        // row pins to the paper's C2070 Table II global column.
        let row = table2_fleet(&FleetSpec::parse("2xC2050").unwrap());
        assert_eq!(row.fleet, "2xC2050");
        assert_eq!(row.global_adj, 227_023);
        assert_eq!(row.global_sutm, 321_060);
        // One device reduces to the plain Table II row.
        let one = table2_fleet(&FleetSpec::parse("C1060").unwrap());
        assert_eq!(one.global_adj, 185_363);
        assert_eq!(one.global_sutm, 262_144);
    }

    #[test]
    fn tiny_memories() {
        assert_eq!(max_graph_adjacency(0), 0);
        assert_eq!(max_graph_adjacency(1), 1);
        assert_eq!(max_graph_adjacency(3), 1);
        assert_eq!(max_graph_adjacency(4), 2);
        assert_eq!(max_graph_utm(0), 0);
        assert_eq!(max_graph_utm(1), 1); // 1·2/2 = 1 ≤ 1
        assert_eq!(max_graph_sutm(1), 2); // 2·1/2 = 1 ≤ 1
    }
}
