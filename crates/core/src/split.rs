//! Algorithm 1 — splitting `G` into consecutive-level chunks on the CPU.
//!
//! Per connected component, a BFS tree is built and its levels are
//! grouped greedily into chunks of *consecutive levels* whose S-UTM
//! footprint fits the shared memory (`Li size ≤ SSM`). If some chunk
//! cannot fit (a single level already exceeds `SSM`), the paper tries
//! other BFS roots; Eq. 5 formalizes the root choice as minimizing the
//! number of oversize chunks (`si = Σ Cim`, `Cim = 1` iff chunk `im`
//! exceeds `SSM`), and a secondary objective minimizes shared-memory
//! fragmentation for the chunks that do fit. Oversize chunks are placed
//! in global memory (`ψg` of Eq. 6); the rest go to shared memory (`ψs`).

use crate::capacity::StorageModel;
use trigon_graph::{connected_components, BfsTree, Graph};

/// Configuration of the splitter.
#[derive(Debug, Clone)]
pub struct SplitConfig {
    /// Shared-memory budget per SM in bits (`SSM` of Eq. 3).
    pub shared_mem_bits: u128,
    /// Packing used to measure a chunk (the paper uses its densest model,
    /// S-UTM).
    pub storage: StorageModel,
    /// How many BFS roots to try per component when minimizing Eq. 5
    /// (the paper iterates "while ∃ vi ∉ processed"; we cap the search
    /// for determinism and speed).
    pub max_roots: usize,
    /// Number of streaming multiprocessors `P` for the fragmentation
    /// objective `SSM·P − Σ S_{Gim}`.
    pub sm_count: u32,
}

impl SplitConfig {
    /// Splitter configured for a device: its shared memory, S-UTM
    /// packing, and SM count, trying up to 4 roots.
    #[must_use]
    pub fn for_device(spec: &trigon_gpu_sim::DeviceSpec) -> Self {
        Self {
            shared_mem_bits: spec.shared_mem_bits(),
            storage: StorageModel::SUtm,
            max_roots: 4,
            sm_count: spec.sm_count,
        }
    }
}

/// One output chunk: a maximal run of consecutive BFS levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Component index (in `connected_components` order).
    pub component: usize,
    /// BFS root the component was expanded from.
    pub root: u32,
    /// Level range `[first_level, last_level]`, inclusive.
    pub levels: (u32, u32),
    /// Global vertex ids, sorted.
    pub nodes: Vec<u32>,
    /// Footprint in bits under the configured packing.
    pub size_bits: u128,
    /// Whether the chunk fits in shared memory (`ψs` member) or must live
    /// in global memory (`ψg` member).
    pub fits_shared: bool,
}

/// Result of Algorithm 1 over the whole graph.
#[derive(Debug, Clone)]
pub struct SplitResult {
    /// All chunks, grouped by component, levels ascending.
    pub chunks: Vec<Chunk>,
    /// Number of chunks that do not fit in shared memory — Eq. 5's `si`
    /// summed over components.
    pub oversize_count: usize,
    /// Shared-memory waste for the fitting chunks:
    /// `SSM·P − Σ S_{Gim}` clamped at ≥ 0 (the §V fragmentation metric).
    pub fragmentation_bits: u128,
    /// Roots actually tried across components.
    pub roots_tried: usize,
}

impl SplitResult {
    /// Number of chunks placed in shared memory (`ψs` of Eq. 6).
    #[must_use]
    pub fn shared_count(&self) -> usize {
        self.chunks.iter().filter(|c| c.fits_shared).count()
    }

    /// Number of chunks placed in global memory (`ψg` of Eq. 6).
    #[must_use]
    pub fn global_count(&self) -> usize {
        self.oversize_count
    }

    /// Chunk sizes in bits, for makespan scheduling ("the processing time
    /// of the jobs are the size of the chunks", §VI).
    #[must_use]
    pub fn job_sizes(&self) -> Vec<u64> {
        self.chunks
            .iter()
            .map(|c| u64::try_from(c.size_bits).unwrap_or(u64::MAX))
            .collect()
    }
}

/// Runs Algorithm 1 on `g`.
#[must_use]
pub fn split_graph(g: &Graph, cfg: &SplitConfig) -> SplitResult {
    split_graph_collected(g, cfg, &mut trigon_telemetry::Collector::disabled())
}

/// Runs Algorithm 1 on `g`, recording the `split` phase wall time and
/// chunk/oversize/root counters into `collector`.
#[must_use]
pub fn split_graph_collected(
    g: &Graph,
    cfg: &SplitConfig,
    collector: &mut trigon_telemetry::Collector,
) -> SplitResult {
    let result = {
        let _p = collector.phase("split");
        split_impl(g, cfg)
    };
    if collector.enabled() {
        collector.add("split.chunks", result.chunks.len() as u64);
        collector.add("split.oversize", result.oversize_count as u64);
        collector.add("split.roots_tried", result.roots_tried as u64);
    }
    result
}

fn split_impl(g: &Graph, cfg: &SplitConfig) -> SplitResult {
    let mut chunks = Vec::new();
    let mut oversize = 0usize;
    let mut roots_tried = 0usize;
    for (ci, comp) in connected_components(g).iter().enumerate() {
        // Whole-component shortcut: if it already fits, it is one chunk
        // (the paper's `while CCi size ≥ SSM` guard).
        let comp_bits = cfg.storage.size_bits(comp.len() as u64);
        if comp_bits <= cfg.shared_mem_bits {
            let tree = BfsTree::new(g, comp[0]);
            roots_tried += 1;
            chunks.push(Chunk {
                component: ci,
                root: comp[0],
                levels: (0, tree.depth() as u32 - 1),
                nodes: comp.clone(),
                size_bits: comp_bits,
                fits_shared: true,
            });
            continue;
        }
        // Try candidate roots, keep the division minimizing
        // (oversize count, fragmentation) — Eq. 5 with the §V tiebreak.
        let mut best: Option<(usize, u128, Vec<Chunk>, usize)> = None;
        for (ri, &root) in candidate_roots(comp, cfg.max_roots).iter().enumerate() {
            roots_tried += 1;
            let tree = BfsTree::new(g, root);
            let division = div_into_consecutive_level_sets(&tree, cfg, ci, root);
            let s_i = division.iter().filter(|c| !c.fits_shared).count();
            let frag = fragmentation(&division, cfg);
            let better = match &best {
                None => true,
                Some((bs, bf, _, _)) => s_i < *bs || (s_i == *bs && frag < *bf),
            };
            if better {
                best = Some((s_i, frag, division, ri));
            }
            if s_i == 0 {
                break; // the paper stops at the first root with all fitting
            }
        }
        let (s_i, _, division, _) = best.expect("component has at least one root");
        oversize += s_i;
        chunks.extend(division);
    }

    {
        let tmp = SplitResult {
            chunks,
            oversize_count: oversize,
            fragmentation_bits: 0,
            roots_tried,
        };
        let frag = fragmentation(&tmp.chunks, cfg);
        SplitResult {
            fragmentation_bits: frag,
            ..tmp
        }
    }
}

/// Greedy `divIntoConsLevelSets`: accumulate consecutive levels while the
/// running chunk still fits shared memory; close the chunk when the next
/// level would overflow. A single level larger than `SSM` becomes its own
/// oversize chunk (global memory).
fn div_into_consecutive_level_sets(
    tree: &BfsTree,
    cfg: &SplitConfig,
    component: usize,
    root: u32,
) -> Vec<Chunk> {
    let mut out = Vec::new();
    let levels = tree.levels();
    let mut start = 0usize;
    let mut nodes: Vec<u32> = Vec::new();
    for (li, level) in levels.iter().enumerate() {
        let grown = nodes.len() + level.len();
        let grown_bits = cfg.storage.size_bits(grown as u64);
        if !nodes.is_empty() && grown_bits > cfg.shared_mem_bits {
            out.push(finish_chunk(
                cfg,
                component,
                root,
                start as u32,
                li as u32 - 1,
                &mut nodes,
            ));
            start = li;
        }
        nodes.extend_from_slice(level);
    }
    if !nodes.is_empty() {
        out.push(finish_chunk(
            cfg,
            component,
            root,
            start as u32,
            levels.len() as u32 - 1,
            &mut nodes,
        ));
    }
    out
}

fn finish_chunk(
    cfg: &SplitConfig,
    component: usize,
    root: u32,
    first: u32,
    last: u32,
    nodes: &mut Vec<u32>,
) -> Chunk {
    let mut taken = std::mem::take(nodes);
    taken.sort_unstable();
    let size_bits = cfg.storage.size_bits(taken.len() as u64);
    Chunk {
        component,
        root,
        levels: (first, last),
        nodes: taken,
        size_bits,
        fits_shared: size_bits <= cfg.shared_mem_bits,
    }
}

fn fragmentation(chunks: &[Chunk], cfg: &SplitConfig) -> u128 {
    let used: u128 = chunks
        .iter()
        .filter(|c| c.fits_shared)
        .map(|c| c.size_bits)
        .sum();
    let budget = cfg.shared_mem_bits * u128::from(cfg.sm_count);
    budget.saturating_sub(used)
}

/// Deterministic candidate roots: the component's smallest vertex first
/// (the paper's scan order), then evenly spaced members.
fn candidate_roots(comp: &[u32], max_roots: usize) -> Vec<u32> {
    let k = max_roots.max(1).min(comp.len());
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let idx = i * comp.len() / k;
        let v = comp[idx];
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trigon_graph::gen;

    fn cfg_bits(bits: u128) -> SplitConfig {
        SplitConfig {
            shared_mem_bits: bits,
            storage: StorageModel::SUtm,
            max_roots: 4,
            sm_count: 30,
        }
    }

    #[test]
    fn small_graph_is_one_chunk() {
        let g = gen::gnp(100, 0.05, 1);
        // 16 KB shared = 131072 bits holds up to 512 vertices (S-UTM).
        let r = split_graph(&g, &cfg_bits(131_072));
        let comp_count = trigon_graph::connected_components(&g).len();
        assert_eq!(r.chunks.len(), comp_count);
        assert_eq!(r.oversize_count, 0);
        assert!(r.chunks.iter().all(|c| c.fits_shared));
    }

    #[test]
    fn chunks_partition_vertices() {
        let g = gen::gnp(300, 0.02, 7);
        let r = split_graph(&g, &cfg_bits(StorageModel::SUtm.size_bits(40)));
        let mut all: Vec<u32> = r.chunks.iter().flat_map(|c| c.nodes.clone()).collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..300).collect::<Vec<_>>(),
            "every vertex in exactly one chunk"
        );
    }

    #[test]
    fn chunk_level_ranges_are_consecutive_and_ordered() {
        let g = gen::grid2d(20, 20); // deep BFS, many levels
        let r = split_graph(&g, &cfg_bits(StorageModel::SUtm.size_bits(50)));
        assert!(r.chunks.len() > 1);
        let mut prev_end: Option<u32> = None;
        for c in &r.chunks {
            assert!(c.levels.0 <= c.levels.1);
            if let Some(pe) = prev_end {
                assert_eq!(c.levels.0, pe + 1, "gap between consecutive chunks");
            }
            prev_end = Some(c.levels.1);
        }
    }

    #[test]
    fn sizes_respect_shared_flag() {
        let budget = StorageModel::SUtm.size_bits(64);
        let g = gen::gnp(500, 0.01, 3);
        let r = split_graph(&g, &cfg_bits(budget));
        for c in &r.chunks {
            assert_eq!(c.fits_shared, c.size_bits <= budget);
            assert_eq!(
                c.size_bits,
                StorageModel::SUtm.size_bits(c.nodes.len() as u64)
            );
        }
        assert_eq!(
            r.oversize_count,
            r.chunks.iter().filter(|c| !c.fits_shared).count()
        );
        assert_eq!(r.shared_count() + r.global_count(), r.chunks.len());
    }

    #[test]
    fn star_forces_oversize_chunk() {
        // Star: level 1 alone exceeds any small budget — the worst case no
        // root can fix (any non-center root yields level 2 = n - 2 nodes).
        let g = gen::star(200);
        let r = split_graph(&g, &cfg_bits(StorageModel::SUtm.size_bits(50)));
        assert!(r.oversize_count >= 1, "star must produce an oversize chunk");
        assert!(r.roots_tried > 1, "splitter should have tried other roots");
    }

    #[test]
    fn path_splits_evenly() {
        // Path of 100 with room for 10 vertices per chunk: exactly 10
        // chunks of 10 consecutive levels each.
        let g = gen::path(100);
        let r = split_graph(&g, &cfg_bits(StorageModel::SUtm.size_bits(10)));
        assert_eq!(r.chunks.len(), 10);
        assert!(r
            .chunks
            .iter()
            .all(|c| c.nodes.len() == 10 && c.fits_shared));
        assert_eq!(r.oversize_count, 0);
    }

    #[test]
    fn multi_component_graphs() {
        let g = gen::disjoint_cliques(4, 30);
        let budget = StorageModel::SUtm.size_bits(30);
        let r = split_graph(&g, &cfg_bits(budget));
        // Each clique fits exactly: 4 chunks, no oversize.
        assert_eq!(r.chunks.len(), 4);
        assert_eq!(r.oversize_count, 0);
        let comps: Vec<usize> = r.chunks.iter().map(|c| c.component).collect();
        assert_eq!(comps, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fragmentation_accounting() {
        let g = gen::disjoint_cliques(2, 10);
        let cfg = cfg_bits(StorageModel::SUtm.size_bits(10));
        let r = split_graph(&g, &cfg);
        let used = 2 * StorageModel::SUtm.size_bits(10);
        assert_eq!(r.fragmentation_bits, cfg.shared_mem_bits * 30 - used);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let r = split_graph(&g, &cfg_bits(1000));
        assert!(r.chunks.is_empty());
        assert_eq!(r.oversize_count, 0);
    }

    #[test]
    fn device_config_matches_spec() {
        let spec = trigon_gpu_sim::DeviceSpec::c1060();
        let cfg = SplitConfig::for_device(&spec);
        assert_eq!(cfg.shared_mem_bits, 131_072);
        assert_eq!(cfg.sm_count, 30);
    }
}
