//! Property-based tests for the core algorithms.

use proptest::prelude::*;
use trigon_core::als::build_als;
use trigon_core::capacity::StorageModel;
use trigon_core::count;
use trigon_core::split::{split_graph, SplitConfig};
use trigon_graph::{triangles, Graph};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ALS structure invariants on arbitrary graphs: the shared-level
    /// chain, per-component coverage, and local/global edge agreement.
    #[test]
    fn als_invariants(g in arb_graph(40)) {
        let als = build_als(&g);
        for w in als.windows(2) {
            if !w[0].is_last {
                prop_assert_eq!(&w[0].second, &w[1].first, "shared-level chain broken");
            }
        }
        let mut covered = std::collections::BTreeSet::new();
        for a in &als {
            covered.extend(a.first.iter().copied());
            if a.is_last {
                covered.extend(a.second.iter().copied());
            }
            // Spot-check edge agreement on the diagonal band.
            let n = a.size();
            for p in 0..n.min(12) {
                for q in (p + 1)..n.min(12) {
                    prop_assert_eq!(
                        a.edge(&g, p, q),
                        g.has_edge(a.global_id(p), a.global_id(q))
                    );
                }
            }
        }
        prop_assert_eq!(covered.len() as u32, g.n());
    }

    /// Exhaustive Algorithm 2 and the fast ALS path agree with brute
    /// force, and the accounted workload matches the combinatorics.
    #[test]
    fn counting_paths_agree(g in arb_graph(36)) {
        let brute = triangles::count_brute_force(&g);
        let ex = count::cpu_exhaustive(&g);
        prop_assert_eq!(ex.triangles, brute);
        prop_assert_eq!(count::als_fast(&g), brute);
        prop_assert_eq!(count::total_tests(&g), ex.tests);
    }

    /// Listing visits each triangle exactly once, canonical order.
    #[test]
    fn listing_is_exact(g in arb_graph(30)) {
        let mut seen = std::collections::BTreeSet::new();
        count::list_triangles_als(&g, |u, v, w| {
            assert!(u < v && v < w, "non-canonical triple");
            assert!(seen.insert((u, v, w)), "duplicate triple");
            assert!(g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w));
        });
        prop_assert_eq!(seen.len() as u64, triangles::count_brute_force(&g));
    }

    /// Algorithm 1 output: chunks partition V, sizes/flags consistent,
    /// level ranges consecutive per component.
    #[test]
    fn split_invariants(g in arb_graph(60), budget_n in 5u64..40) {
        let cfg = SplitConfig {
            shared_mem_bits: StorageModel::SUtm.size_bits(budget_n),
            storage: StorageModel::SUtm,
            max_roots: 3,
            sm_count: 30,
        };
        let r = split_graph(&g, &cfg);
        let mut all: Vec<u32> = r.chunks.iter().flat_map(|c| c.nodes.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..g.n()).collect::<Vec<_>>());
        for c in &r.chunks {
            prop_assert_eq!(c.size_bits, StorageModel::SUtm.size_bits(c.nodes.len() as u64));
            prop_assert_eq!(c.fits_shared, c.size_bits <= cfg.shared_mem_bits);
        }
        prop_assert_eq!(
            r.oversize_count,
            r.chunks.iter().filter(|c| !c.fits_shared).count()
        );
    }
}
