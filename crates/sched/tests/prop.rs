//! Property tests for the makespan scheduling substrate.

use proptest::prelude::*;
use trigon_sched::{
    exact, least_loaded_alive, list_schedule, lower_bound, lpt, round_robin, Schedule,
};

proptest! {
    /// Every policy produces a valid schedule that conserves total work
    /// and respects the lower bound.
    #[test]
    fn policies_valid(jobs in proptest::collection::vec(1u64..100, 0..12),
                      machines in 1u32..6) {
        let total: u64 = jobs.iter().sum();
        let lb = lower_bound(&jobs, machines);
        for s in [round_robin(&jobs, machines),
                  list_schedule(&jobs, machines),
                  lpt(&jobs, machines)] {
            prop_assert_eq!(s.loads.iter().sum::<u64>(), total);
            prop_assert_eq!(s.assignment.len(), jobs.len());
            prop_assert!(s.assignment.iter().all(|&m| m < machines));
            prop_assert!(s.makespan() >= lb);
            // Rebuilding from the assignment reproduces the loads.
            let re = Schedule::from_assignment(&jobs, machines, s.assignment.clone());
            prop_assert_eq!(re.loads, s.loads);
        }
    }

    /// Exact ≤ LPT ≤ round-robin is not guaranteed pointwise for RR, but
    /// exact is a true lower bound for all policies and meets the LB-based
    /// optimality certificate when it fires.
    #[test]
    fn exact_dominates(jobs in proptest::collection::vec(1u64..50, 0..10),
                       machines in 1u32..5) {
        let opt = exact(&jobs, machines);
        prop_assert!(opt.makespan() >= lower_bound(&jobs, machines));
        prop_assert!(opt.makespan() <= lpt(&jobs, machines).makespan());
        prop_assert!(opt.makespan() <= list_schedule(&jobs, machines).makespan());
        prop_assert!(opt.makespan() <= round_robin(&jobs, machines).makespan());
    }

    /// LPT respects its 4/3 − 1/(3m) worst-case ratio vs exact.
    #[test]
    fn lpt_ratio(jobs in proptest::collection::vec(1u64..40, 1..10),
                 machines in 2u32..4) {
        let opt = u128::from(exact(&jobs, machines).makespan());
        let heur = u128::from(lpt(&jobs, machines).makespan());
        prop_assert!(3 * u128::from(machines) * heur
                     <= (4 * u128::from(machines) - 1) * opt);
    }

    /// `least_loaded_alive` (the online Graham step the fleet reshard
    /// and chunk-reassignment paths lean on) agrees with a brute-force
    /// argmin over the alive machines, breaking load ties toward the
    /// lowest index.
    #[test]
    fn least_loaded_alive_is_argmin(loads in proptest::collection::vec(0u64..20, 1..12),
                                    alive_bits in proptest::collection::vec(any::<bool>(), 1..12)) {
        let n = loads.len().min(alive_bits.len());
        let (loads, alive) = (&loads[..n], &alive_bits[..n]);
        let got = least_loaded_alive(loads, alive);
        let mut want: Option<usize> = None;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            // Strict `<` keeps the first (lowest-index) minimum.
            if want.is_none_or(|w| loads[i] < loads[w]) {
                want = Some(i);
            }
        }
        prop_assert_eq!(got, want);
        // All-dead rosters select nobody; otherwise the pick is alive.
        prop_assert_eq!(got.is_none(), alive.iter().all(|a| !a));
        if let Some(i) = got {
            prop_assert!(alive[i]);
        }
    }

    /// A single survivor is always selected, whatever its load.
    #[test]
    fn single_survivor_always_picked(loads in proptest::collection::vec(0u64..1000, 1..10),
                                     survivor_seed in any::<usize>()) {
        let survivor = survivor_seed % loads.len();
        let alive: Vec<bool> = (0..loads.len()).map(|i| i == survivor).collect();
        prop_assert_eq!(least_loaded_alive(&loads, &alive), Some(survivor));
    }
}
