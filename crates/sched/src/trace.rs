//! Tracing hooks: turn a computed [`Schedule`] into
//! per-SM device spans on a [`Tracer`].
//!
//! The §VI dispatcher assigns chunk jobs to streaming multiprocessors;
//! [`trace_schedule`] replays that assignment as one span per job on
//! the job's machine lane, packed back-to-back in assignment order —
//! exactly the Gantt chart the makespan objective `l_max = max_i l_i`
//! is computed over.

use crate::Schedule;
use trigon_telemetry::{AttrValue, Tracer, Track};

/// Emits one device span per job onto its assigned machine's SM track,
/// with jobs on the same machine packed contiguously starting at
/// `start_cycles` (e.g. the end of the host→device transfer). Span
/// attributes record the job index and its processing time. Returns the
/// schedule end time in cycles: `start_cycles + makespan`.
///
/// No-op (returning the same value) when the tracer is disabled.
pub fn trace_schedule(
    tracer: &Tracer,
    schedule: &Schedule,
    jobs: &[u64],
    cat: &str,
    start_cycles: u64,
) -> u64 {
    if !tracer.enabled() {
        return start_cycles + schedule.makespan();
    }
    let mut cursor = vec![start_cycles; schedule.loads.len()];
    for (j, (&p, &m)) in jobs.iter().zip(&schedule.assignment).enumerate() {
        let at = cursor[m as usize];
        tracer.device_span(
            &format!("job {j}"),
            cat,
            Track::Sm(m),
            at,
            p,
            &[
                ("job", AttrValue::UInt(j as u64)),
                ("cycles", AttrValue::UInt(p)),
            ],
        );
        cursor[m as usize] = at + p;
    }
    start_cycles + schedule.makespan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpt;

    #[test]
    fn spans_pack_per_machine_and_end_at_makespan() {
        let jobs = [7u64, 5, 3, 2];
        let s = lpt(&jobs, 2);
        let tracer = Tracer::new();
        let end = trace_schedule(&tracer, &s, &jobs, "kernel", 100);
        assert_eq!(end, 100 + s.makespan());
        assert_eq!(tracer.span_count(), jobs.len());
        let spans = tracer.spans();
        // Per-machine spans are contiguous: sum of durations on each
        // track equals that machine's load.
        for (m, &load) in s.loads.iter().enumerate() {
            let mine: Vec<_> = spans
                .iter()
                .filter(|sp| sp.track == Track::Sm(m as u32))
                .collect();
            let total: u64 = mine.iter().map(|sp| sp.dur).sum();
            assert_eq!(total, load);
            let max_end = mine.iter().map(|sp| sp.start + sp.dur).max().unwrap_or(100);
            assert_eq!(max_end, 100 + load);
        }
    }

    #[test]
    fn disabled_tracer_still_reports_end() {
        let jobs = [4u64, 4];
        let s = lpt(&jobs, 2);
        let tracer = Tracer::disabled();
        assert_eq!(trace_schedule(&tracer, &s, &jobs, "kernel", 0), 4);
        assert_eq!(tracer.span_count(), 0);
    }
}
