//! # trigon-sched
//!
//! Makespan scheduling on identical machines — §VI of *On Analyzing Large
//! Graphs Using GPUs* (IPDPSW 2013).
//!
//! After Algorithm 1 splits the graph into chunks, "blocks of threads …
//! are scheduled to operate on the data … so that the time required is
//! minimum. This problem is equivalent to the Makespan Scheduling
//! problem, and is NP-hard" (even for two identical machines). The jobs
//! are the chunk computations (processing time ∝ chunk size) and the
//! machines are the streaming multiprocessors.
//!
//! Provided policies:
//!
//! * [`round_robin`] — the strawman (job `j` → machine `j mod m`);
//! * [`list_schedule`] — Graham's greedy list scheduling in given order
//!   (2 − 1/m approximation);
//! * [`lpt`] — Longest Processing Time first (4/3 − 1/(3m)
//!   approximation), the heuristic the simulated dispatcher uses;
//! * [`exact`] — branch-and-bound optimum for small instances, used to
//!   validate the heuristics' ratios empirically.

#![deny(missing_docs)]

pub mod advanced;
pub mod trace;

pub use advanced::{exact_two_machines, multifit, tabu_improve};
pub use trace::trace_schedule;

/// A computed schedule: which machine runs each job, plus derived loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `assignment[j]` = machine index of job `j`.
    pub assignment: Vec<u32>,
    /// Total processing time per machine.
    pub loads: Vec<u64>,
}

impl Schedule {
    /// Builds a schedule from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any machine index is `≥ machines`.
    #[must_use]
    pub fn from_assignment(jobs: &[u64], machines: u32, assignment: Vec<u32>) -> Self {
        assert_eq!(jobs.len(), assignment.len(), "assignment length mismatch");
        let mut loads = vec![0u64; machines as usize];
        for (&p, &m) in jobs.iter().zip(&assignment) {
            assert!((m as usize) < loads.len(), "machine index {m} out of range");
            loads[m as usize] += p;
        }
        Self { assignment, loads }
    }

    /// The makespan `l_max = max_i l_i` (§VI).
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Load imbalance `makespan / mean_load` (1.0 = perfect), `1.0` for
    /// an empty schedule.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.loads.iter().sum();
        if total == 0 || self.loads.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.loads.len() as f64;
        self.makespan() as f64 / mean
    }
}

/// Lower bound on the optimal makespan:
/// `max(⌈Σp / m⌉, max_j p_j)`.
#[must_use]
pub fn lower_bound(jobs: &[u64], machines: u32) -> u64 {
    assert!(machines > 0, "need at least one machine");
    let total: u64 = jobs.iter().sum();
    let avg = total.div_ceil(u64::from(machines));
    let longest = jobs.iter().copied().max().unwrap_or(0);
    avg.max(longest)
}

/// Round-robin assignment — job `j` to machine `j mod m`. The §VI
/// strawman; oblivious to job sizes.
#[must_use]
pub fn round_robin(jobs: &[u64], machines: u32) -> Schedule {
    assert!(machines > 0, "need at least one machine");
    let assignment: Vec<u32> = (0..jobs.len()).map(|j| (j as u32) % machines).collect();
    Schedule::from_assignment(jobs, machines, assignment)
}

/// Graham's list scheduling: jobs in the given order, each to the
/// currently least-loaded machine. Guarantee: `≤ (2 − 1/m) · OPT`.
#[must_use]
pub fn list_schedule(jobs: &[u64], machines: u32) -> Schedule {
    assert!(machines > 0, "need at least one machine");
    let mut loads = vec![0u64; machines as usize];
    let mut assignment = Vec::with_capacity(jobs.len());
    for &p in jobs {
        let m = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("machines > 0");
        loads[m] += p;
        assignment.push(m as u32);
    }
    Schedule { assignment, loads }
}

/// Longest Processing Time first: sort jobs descending, then list
/// schedule. Guarantee: `≤ (4/3 − 1/(3m)) · OPT`. This is the policy the
/// simulated GPU dispatcher uses for chunk→SM assignment.
#[must_use]
pub fn lpt(jobs: &[u64], machines: u32) -> Schedule {
    assert!(machines > 0, "need at least one machine");
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_unstable_by_key(|&j| (std::cmp::Reverse(jobs[j]), j));
    let mut loads = vec![0u64; machines as usize];
    let mut assignment = vec![0u32; jobs.len()];
    for &j in &order {
        let m = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("machines > 0");
        loads[m] += jobs[j];
        assignment[j] = m as u32;
    }
    Schedule { assignment, loads }
}

/// Online Graham step for fault recovery: the least-loaded machine among
/// the survivors (`alive[i]`), breaking ties toward the lower index.
/// Returns `None` when no machine survives. This is the §VI makespan
/// argument applied *online*: when an SM stalls or a chunk must be
/// re-executed, the stranded job goes where it extends the schedule
/// least.
///
/// # Panics
///
/// Panics if `loads` and `alive` have different lengths.
#[must_use]
pub fn least_loaded_alive(loads: &[u64], alive: &[bool]) -> Option<usize> {
    assert_eq!(loads.len(), alive.len(), "loads/alive length mismatch");
    loads
        .iter()
        .enumerate()
        .filter(|&(i, _)| alive[i])
        .min_by_key(|&(i, &l)| (l, i))
        .map(|(i, _)| i)
}

/// Exact optimal makespan by depth-first branch and bound. Exponential —
/// intended for validation on instances of ≲ 20 jobs (the problem is
/// NP-hard even for two machines, as §VI stresses).
///
/// # Panics
///
/// Panics if `machines == 0`.
#[must_use]
pub fn exact(jobs: &[u64], machines: u32) -> Schedule {
    assert!(machines > 0, "need at least one machine");
    // Sort descending: placing big jobs first prunes aggressively.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_unstable_by_key(|&j| (std::cmp::Reverse(jobs[j]), j));
    let sorted: Vec<u64> = order.iter().map(|&j| jobs[j]).collect();

    // Start from LPT as the incumbent.
    let incumbent = lpt(jobs, machines);
    let mut best = incumbent.makespan();
    let mut best_assign_sorted: Vec<u32> = order.iter().map(|&j| incumbent.assignment[j]).collect();

    let bound = lower_bound(jobs, machines);
    let mut loads = vec![0u64; machines as usize];
    let mut current = vec![0u32; sorted.len()];
    // Suffix sums for a remaining-work bound.
    let mut suffix = vec![0u64; sorted.len() + 1];
    for i in (0..sorted.len()).rev() {
        suffix[i] = suffix[i + 1] + sorted[i];
    }

    #[allow(clippy::too_many_arguments)] // recursion state, local helper
    fn dfs(
        i: usize,
        sorted: &[u64],
        suffix: &[u64],
        machines: u32,
        loads: &mut [u64],
        current: &mut [u32],
        best: &mut u64,
        best_assign: &mut Vec<u32>,
        bound: u64,
    ) {
        if *best == bound {
            return; // provably optimal already
        }
        if i == sorted.len() {
            let mk = loads.iter().copied().max().unwrap_or(0);
            if mk < *best {
                *best = mk;
                best_assign.copy_from_slice(current);
            }
            return;
        }
        // Remaining-work bound: even perfectly balanced, some machine gets
        // at least ceil((Σ loads + remaining) / m).
        let total_left: u64 = loads.iter().sum::<u64>() + suffix[i];
        if total_left.div_ceil(u64::from(machines)) >= *best {
            return;
        }
        let mut tried = Vec::with_capacity(machines as usize);
        for m in 0..machines as usize {
            // Symmetry breaking: skip machines with a load we already tried.
            if tried.contains(&loads[m]) {
                continue;
            }
            tried.push(loads[m]);
            if loads[m] + sorted[i] >= *best {
                continue;
            }
            loads[m] += sorted[i];
            current[i] = m as u32;
            dfs(
                i + 1,
                sorted,
                suffix,
                machines,
                loads,
                current,
                best,
                best_assign,
                bound,
            );
            loads[m] -= sorted[i];
        }
    }

    dfs(
        0,
        &sorted,
        &suffix,
        machines,
        &mut loads,
        &mut current,
        &mut best,
        &mut best_assign_sorted,
        bound,
    );

    // Undo the descending permutation.
    let mut assignment = vec![0u32; jobs.len()];
    for (pos, &orig) in order.iter().enumerate() {
        assignment[orig] = best_assign_sorted[pos];
    }
    Schedule::from_assignment(jobs, machines, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_example_layout() {
        // Fig. 1: 7 chunks on 4 machines — M1 gets {1,5,7}, M2 {2},
        // M3 {3,6}, M4 {4}. With equal-ish sizes any policy fits them; we
        // check the machinery on that shape.
        let jobs = [3u64, 6, 4, 5, 2, 3, 1];
        let s = lpt(&jobs, 4);
        assert_eq!(s.loads.iter().sum::<u64>(), 24);
        assert!(s.makespan() >= lower_bound(&jobs, 4));
        assert_eq!(s.makespan(), exact(&jobs, 4).makespan());
    }

    #[test]
    fn lower_bound_cases() {
        assert_eq!(lower_bound(&[10, 1, 1], 3), 10); // dominated by longest
        assert_eq!(lower_bound(&[4, 4, 4, 4], 2), 8); // dominated by average
        assert_eq!(lower_bound(&[], 5), 0);
    }

    #[test]
    fn exact_is_optimal_on_known_instances() {
        // Classic LPT-suboptimal instance: 5,5,4,4,3,3,3 ... m=3.
        // jobs {5,5,4,4,3,3,3}: total 27, OPT = 9 = {5,4},{5,4},{3,3,3}.
        let jobs = [5u64, 5, 4, 4, 3, 3, 3];
        let e = exact(&jobs, 3);
        assert_eq!(e.makespan(), 9);
        // A case where LPT is strictly suboptimal: {3,3,2,2,2} on 2
        // machines: LPT → 3+2+2=7 vs OPT 6 = {3,3} {2,2,2}.
        let jobs2 = [3u64, 3, 2, 2, 2];
        assert_eq!(lpt(&jobs2, 2).makespan(), 7);
        assert_eq!(exact(&jobs2, 2).makespan(), 6);
    }

    #[test]
    fn heuristics_within_guarantees() {
        // Deterministic pseudo-random instances via a simple LCG.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 50 + 1
        };
        for m in [2u32, 3, 5] {
            for _ in 0..20 {
                let jobs: Vec<u64> = (0..12).map(|_| next()).collect();
                let opt = exact(&jobs, m).makespan();
                let lpt_mk = lpt(&jobs, m).makespan();
                let list_mk = list_schedule(&jobs, m).makespan();
                let lb = lower_bound(&jobs, m);
                assert!(lb <= opt);
                assert!(opt <= lpt_mk && opt <= list_mk);
                // Graham bounds (scaled integer arithmetic, no floats).
                assert!(
                    3 * u128::from(m) * u128::from(lpt_mk)
                        <= (4 * u128::from(m) - 1) * u128::from(opt),
                    "LPT ratio violated: {lpt_mk} vs {opt} on m={m}"
                );
                assert!(
                    u128::from(m) * u128::from(list_mk)
                        <= (2 * u128::from(m) - 1) * u128::from(opt)
                );
            }
        }
    }

    #[test]
    fn round_robin_ignores_sizes() {
        let jobs = [100u64, 1, 100, 1];
        let rr = round_robin(&jobs, 2);
        assert_eq!(rr.makespan(), 200); // both big jobs on machine 0
        assert_eq!(lpt(&jobs, 2).makespan(), 101);
        assert_eq!(rr.assignment, vec![0, 1, 0, 1]);
    }

    #[test]
    fn single_machine_sums() {
        let jobs = [3u64, 5, 7];
        for s in [
            round_robin(&jobs, 1),
            list_schedule(&jobs, 1),
            lpt(&jobs, 1),
            exact(&jobs, 1),
        ] {
            assert_eq!(s.makespan(), 15);
        }
    }

    #[test]
    fn more_machines_than_jobs() {
        let jobs = [9u64, 4];
        let s = lpt(&jobs, 30);
        assert_eq!(s.makespan(), 9);
        assert_eq!(exact(&jobs, 30).makespan(), 9);
    }

    #[test]
    fn empty_jobs() {
        for s in [
            round_robin(&[], 4),
            list_schedule(&[], 4),
            lpt(&[], 4),
            exact(&[], 4),
        ] {
            assert_eq!(s.makespan(), 0);
            assert!(s.assignment.is_empty());
        }
    }

    #[test]
    fn imbalance_metric() {
        let s = Schedule::from_assignment(&[5, 5], 2, vec![0, 1]);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        let bad = Schedule::from_assignment(&[5, 5], 2, vec![0, 0]);
        assert!((bad.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_roundtrip_assignment() {
        let jobs = [2u64, 4, 6, 8];
        let s = exact(&jobs, 2);
        // Rebuild loads from the returned assignment; must agree.
        let re = Schedule::from_assignment(&jobs, 2, s.assignment.clone());
        assert_eq!(re.loads, s.loads);
        assert_eq!(re.makespan(), 10); // {8,2} {6,4}
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        let _ = lpt(&[1], 0);
    }

    #[test]
    fn least_loaded_alive_skips_dead_machines() {
        let loads = [10u64, 2, 5, 1];
        assert_eq!(least_loaded_alive(&loads, &[true; 4]), Some(3));
        assert_eq!(
            least_loaded_alive(&loads, &[true, true, true, false]),
            Some(1)
        );
        assert_eq!(
            least_loaded_alive(&loads, &[true, false, false, false]),
            Some(0)
        );
        assert_eq!(least_loaded_alive(&loads, &[false; 4]), None);
        // Ties break toward the lower index.
        assert_eq!(least_loaded_alive(&[3, 3, 3], &[true; 3]), Some(0));
        assert_eq!(least_loaded_alive(&[], &[]), None);
    }
}
