//! Stronger makespan heuristics beyond LPT.
//!
//! * [`multifit`] — Coffman–Garey–Johnson MULTIFIT: binary-search the
//!   makespan and test each candidate with first-fit-decreasing bin
//!   packing. Guarantee `≤ 13/11 · OPT` with enough iterations.
//! * [`tabu_improve`] — a small tabu search over single-job moves and
//!   pair swaps, seeded from LPT. The paper's NP-hardness citation \[7\]
//!   (Grabowski & Wodecki) is itself a tabu search for makespan
//!   criteria; this mirrors that lineage at chunk-scheduling scale.

use crate::{lower_bound, lpt, Schedule};

/// MULTIFIT with `iterations` bisection steps (7 gives the classical
/// 13/11 bound).
///
/// # Panics
///
/// Panics if `machines == 0`.
#[must_use]
pub fn multifit(jobs: &[u64], machines: u32, iterations: u32) -> Schedule {
    assert!(machines > 0, "need at least one machine");
    if jobs.is_empty() {
        return Schedule::from_assignment(jobs, machines, Vec::new());
    }
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_unstable_by_key(|&j| (std::cmp::Reverse(jobs[j]), j));

    let mut lo = lower_bound(jobs, machines);
    let mut hi = 2 * lo.max(1);
    let mut best: Option<Vec<u32>> = None;
    for _ in 0..iterations {
        let cap = lo.midpoint(hi);
        match ffd_fits(jobs, &order, machines, cap) {
            Some(assign) => {
                best = Some(assign);
                hi = cap;
            }
            None => lo = cap + 1,
        }
        if lo >= hi {
            break;
        }
    }
    let assignment = best
        .or_else(|| ffd_fits(jobs, &order, machines, hi))
        .unwrap_or_else(|| lpt(jobs, machines).assignment);
    Schedule::from_assignment(jobs, machines, assignment)
}

/// First-fit-decreasing into `machines` bins of capacity `cap`.
fn ffd_fits(jobs: &[u64], order: &[usize], machines: u32, cap: u64) -> Option<Vec<u32>> {
    let mut loads = vec![0u64; machines as usize];
    let mut assign = vec![0u32; jobs.len()];
    for &j in order {
        let slot = loads.iter().position(|&l| l + jobs[j] <= cap)?;
        loads[slot] += jobs[j];
        assign[j] = slot as u32;
    }
    Some(assign)
}

/// Tabu-search improvement over an initial LPT schedule: explores moving
/// one job off the busiest machine, or swapping a busiest-machine job
/// with a lighter machine's job, keeping a short tabu list of recently
/// moved jobs. Deterministic; stops after `max_iters` non-improving
/// rounds or when the lower bound is met.
///
/// # Panics
///
/// Panics if `machines == 0`.
#[must_use]
pub fn tabu_improve(jobs: &[u64], machines: u32, max_iters: u32) -> Schedule {
    assert!(machines > 0, "need at least one machine");
    let lb = lower_bound(jobs, machines);
    let mut current = lpt(jobs, machines);
    let mut best = current.clone();
    let mut tabu: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let tabu_len = (jobs.len() / 4).clamp(2, 16);
    let mut stale = 0u32;
    while stale < max_iters && best.makespan() > lb {
        let busiest = argmax(&current.loads);
        // Candidate A: move a non-tabu job from the busiest machine to
        // the machine where it minimizes the resulting makespan.
        let mut move_best: Option<(u64, usize, u32)> = None; // (new_mk, job, to)
        for (j, &m) in current.assignment.iter().enumerate() {
            if m as usize != busiest || tabu.contains(&j) {
                continue;
            }
            for to in 0..machines {
                if to as usize == busiest {
                    continue;
                }
                let mk = makespan_after_move(&current.loads, jobs[j], busiest, to as usize);
                if move_best.is_none_or(|(bmk, _, _)| mk < bmk) {
                    move_best = Some((mk, j, to));
                }
            }
        }
        // Candidate B: swap a busiest-machine job with a smaller job
        // elsewhere.
        let mut swap_best: Option<(u64, usize, usize)> = None; // (new_mk, j1, j2)
        for (j1, &m1) in current.assignment.iter().enumerate() {
            if m1 as usize != busiest || tabu.contains(&j1) {
                continue;
            }
            for (j2, &m2) in current.assignment.iter().enumerate() {
                if m2 as usize == busiest || tabu.contains(&j2) || jobs[j2] >= jobs[j1] {
                    continue;
                }
                let mk =
                    makespan_after_swap(&current.loads, jobs[j1], jobs[j2], busiest, m2 as usize);
                if swap_best.is_none_or(|(bmk, _, _)| mk < bmk) {
                    swap_best = Some((mk, j1, j2));
                }
            }
        }
        // Apply the better candidate (ties prefer the move).
        let applied: Option<Vec<usize>> = match (move_best, swap_best) {
            (Some((mm, _j, _to)), Some((sm, j1, j2))) if sm < mm => {
                apply_swap(&mut current, jobs, j1, j2);
                Some(vec![j1, j2])
            }
            (Some((_, j, to)), _) => {
                apply_move(&mut current, jobs, j, to);
                Some(vec![j])
            }
            (None, Some((_, j1, j2))) => {
                apply_swap(&mut current, jobs, j1, j2);
                Some(vec![j1, j2])
            }
            (None, None) => None,
        };
        let Some(moved) = applied else { break };
        for j in moved {
            tabu.push_back(j);
            if tabu.len() > tabu_len {
                tabu.pop_front();
            }
        }
        if current.makespan() < best.makespan() {
            best = current.clone();
            stale = 0;
        } else {
            stale += 1;
        }
    }
    best
}

/// Exact two-machine makespan via subset-sum dynamic programming —
/// pseudo-polynomial `O(n · Σp)` but handles far larger instances than
/// the branch-and-bound (the §VI reduction's "even two identical
/// machines" case, solved exactly).
///
/// # Panics
///
/// Panics if the total processing time exceeds `max_total` (guards the
/// DP table size).
#[must_use]
pub fn exact_two_machines(jobs: &[u64], max_total: u64) -> Schedule {
    let total: u64 = jobs.iter().sum();
    assert!(
        total <= max_total,
        "total load {total} exceeds DP budget {max_total}"
    );
    let half = (total / 2) as usize;
    // dp[j] = bitset of sums reachable with the first j jobs.
    let mut dp: Vec<Vec<bool>> = Vec::with_capacity(jobs.len() + 1);
    let mut row = vec![false; half + 1];
    row[0] = true;
    dp.push(row);
    for &p in jobs {
        let prev = dp.last().expect("non-empty dp");
        let mut next = prev.clone();
        let p = p as usize;
        if p <= half {
            for s in p..=half {
                if prev[s - p] {
                    next[s] = true;
                }
            }
        }
        dp.push(next);
    }
    let best = (0..=half).rev().find(|&s| dp[jobs.len()][s]).unwrap_or(0);
    // Backtrack: job j-1 is on machine 0 iff the sum needed it.
    let mut assignment = vec![1u32; jobs.len()];
    let mut s = best;
    for j in (0..jobs.len()).rev() {
        if dp[j][s] {
            continue; // reachable without job j: leave it on machine 1
        }
        assignment[j] = 0;
        s -= jobs[j] as usize;
    }
    debug_assert_eq!(s, 0);
    Schedule::from_assignment(jobs, 2, assignment)
}

fn argmax(loads: &[u64]) -> usize {
    loads
        .iter()
        .enumerate()
        .max_by_key(|&(i, &l)| (l, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .expect("non-empty loads")
}

fn makespan_after_move(loads: &[u64], p: u64, from: usize, to: usize) -> u64 {
    loads
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            if i == from {
                l - p
            } else if i == to {
                l + p
            } else {
                l
            }
        })
        .max()
        .unwrap_or(0)
}

fn makespan_after_swap(loads: &[u64], p1: u64, p2: u64, m1: usize, m2: usize) -> u64 {
    loads
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            if i == m1 {
                l - p1 + p2
            } else if i == m2 {
                l - p2 + p1
            } else {
                l
            }
        })
        .max()
        .unwrap_or(0)
}

fn apply_move(s: &mut Schedule, jobs: &[u64], j: usize, to: u32) {
    let from = s.assignment[j] as usize;
    s.loads[from] -= jobs[j];
    s.loads[to as usize] += jobs[j];
    s.assignment[j] = to;
}

fn apply_swap(s: &mut Schedule, jobs: &[u64], j1: usize, j2: usize) {
    let (m1, m2) = (s.assignment[j1], s.assignment[j2]);
    s.loads[m1 as usize] = s.loads[m1 as usize] - jobs[j1] + jobs[j2];
    s.loads[m2 as usize] = s.loads[m2 as usize] - jobs[j2] + jobs[j1];
    s.assignment[j1] = m2;
    s.assignment[j2] = m1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;

    fn lcg_jobs(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) % 80 + 1
            })
            .collect()
    }

    #[test]
    fn multifit_valid_and_bounded() {
        for seed in 1..6u64 {
            for m in [2u32, 3, 5] {
                let jobs = lcg_jobs(12, seed);
                let s = multifit(&jobs, m, 10);
                assert_eq!(s.loads.iter().sum::<u64>(), jobs.iter().sum::<u64>());
                let opt = exact(&jobs, m).makespan();
                assert!(s.makespan() >= opt);
                // 13/11 bound (integer arithmetic).
                assert!(
                    11 * s.makespan() <= 13 * opt,
                    "seed {seed} m {m}: {} vs opt {opt}",
                    s.makespan()
                );
            }
        }
    }

    #[test]
    fn multifit_beats_lpt_on_classic_instance() {
        // LPT-adversarial: {3,3,2,2,2} on 2 machines (LPT 7, OPT 6).
        let jobs = [3u64, 3, 2, 2, 2];
        assert_eq!(crate::lpt(&jobs, 2).makespan(), 7);
        assert_eq!(multifit(&jobs, 2, 10).makespan(), 6);
    }

    #[test]
    fn tabu_never_worse_than_lpt() {
        for seed in 1..8u64 {
            for m in [2u32, 4, 8] {
                let jobs = lcg_jobs(20, seed);
                let l = crate::lpt(&jobs, m).makespan();
                let t = tabu_improve(&jobs, m, 50).makespan();
                assert!(t <= l, "seed {seed} m {m}: tabu {t} vs lpt {l}");
                assert!(t >= crate::lower_bound(&jobs, m));
            }
        }
    }

    #[test]
    fn tabu_fixes_the_classic_instance() {
        let jobs = [3u64, 3, 2, 2, 2];
        assert_eq!(tabu_improve(&jobs, 2, 50).makespan(), 6);
    }

    #[test]
    fn tabu_schedule_is_consistent() {
        let jobs = lcg_jobs(15, 3);
        let s = tabu_improve(&jobs, 4, 30);
        let re = Schedule::from_assignment(&jobs, 4, s.assignment.clone());
        assert_eq!(re.loads, s.loads);
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(multifit(&[], 4, 5).makespan(), 0);
        assert_eq!(tabu_improve(&[], 4, 5).makespan(), 0);
        assert_eq!(multifit(&[7], 1, 5).makespan(), 7);
        assert_eq!(tabu_improve(&[7], 1, 5).makespan(), 7);
        assert_eq!(exact_two_machines(&[], 1000).makespan(), 0);
        assert_eq!(exact_two_machines(&[7], 1000).makespan(), 7);
    }

    #[test]
    fn two_machine_dp_matches_branch_and_bound() {
        for seed in 1..10u64 {
            let jobs = lcg_jobs(14, seed);
            let dp = exact_two_machines(&jobs, 1_000_000);
            let bb = exact(&jobs, 2);
            assert_eq!(dp.makespan(), bb.makespan(), "seed {seed}");
            // Valid schedule: loads rebuild from the assignment.
            let re = Schedule::from_assignment(&jobs, 2, dp.assignment.clone());
            assert_eq!(re.loads, dp.loads);
        }
    }

    #[test]
    fn two_machine_dp_classic_instance() {
        // {3,3,2,2,2}: perfect split 6/6.
        let s = exact_two_machines(&[3, 3, 2, 2, 2], 1000);
        assert_eq!(s.makespan(), 6);
    }

    #[test]
    fn two_machine_dp_handles_larger_instances() {
        // 200 jobs — far beyond the branch-and-bound's reach.
        let jobs = lcg_jobs(200, 3);
        let s = exact_two_machines(&jobs, 1_000_000);
        let lb = crate::lower_bound(&jobs, 2);
        assert!(s.makespan() >= lb);
        // DP is optimal, so it must not lose to LPT.
        assert!(s.makespan() <= crate::lpt(&jobs, 2).makespan());
    }

    #[test]
    #[should_panic(expected = "exceeds DP budget")]
    fn two_machine_dp_guards_budget() {
        let _ = exact_two_machines(&[1_000_000, 1_000_000], 1000);
    }
}
