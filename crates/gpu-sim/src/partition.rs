//! Global-memory partitions and partition camping (§X, Eqs. 10–11).
//!
//! "The global memory is divided into 6 (or 8) partitions … of 256-byte
//! width. Partition camping occurs when global memory accesses are mapped
//! into a subset of partitions, causing requests to queue up at some
//! partitions while other partitions go unused."
//!
//! The model: transactions issued by concurrently-active warps land in
//! the partition owning their segment's address range (256-byte
//! interleaving). Each partition services its queue sequentially at
//! `service_cycles` per transaction; partitions work in parallel, so the
//! access phase costs `max_p(queue_p) · service_cycles`. Spreading the
//! same traffic over all partitions (Eq. 11's `Partition_{i % p} ⇐ W_i`
//! mapping) divides the time by up to `p` — exactly the §X claim that
//! minimizing time is equivalent to maximizing distinct partitions used.

use crate::device::DeviceSpec;

/// Which partition owns byte address `addr` under `width`-byte
/// interleaving across `partitions` partitions.
#[inline]
#[must_use]
pub fn partition_of(addr: u64, partitions: u32, width: u64) -> u32 {
    ((addr / width) % u64::from(partitions)) as u32
}

/// Accumulated per-partition transaction counts for one concurrent access
/// phase (one "instant of execution" across the active warps, in the
/// paper's Fig. 6/7 sense).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionTraffic {
    counts: Vec<u64>,
    width: u64,
}

impl PartitionTraffic {
    /// Empty traffic for a device's partition layout.
    #[must_use]
    pub fn new(spec: &DeviceSpec) -> Self {
        Self {
            counts: vec![0; spec.partitions as usize],
            width: spec.partition_width,
        }
    }

    /// Records one transaction at segment base `addr`.
    #[inline]
    pub fn record(&mut self, addr: u64) {
        let p = partition_of(addr, self.counts.len() as u32, self.width);
        self.counts[p as usize] += 1;
    }

    /// Records every segment of a coalescing summary.
    pub fn record_all(&mut self, segment_addrs: &[u64]) {
        for &a in segment_addrs {
            self.record(a);
        }
    }

    /// Adds `count` transactions directly to `partition` — used by the
    /// sampled fidelity mode to scale a measured histogram.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn record_bulk(&mut self, partition: u32, count: u64) {
        self.counts[partition as usize] += count;
    }

    /// Merges another traffic accumulation (same layout) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn merge(&mut self, other: &PartitionTraffic) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "partition count mismatch"
        );
        assert_eq!(self.width, other.width, "partition width mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Total transactions recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-partition histogram.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Length of the longest partition queue — the serialization term.
    #[must_use]
    pub fn max_queue(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Number of distinct partitions used — the Eq. 10 denominator
    /// (`Σ Part_i`), which §X says should be maximized.
    #[must_use]
    pub fn distinct_partitions(&self) -> u32 {
        self.counts.iter().filter(|&&c| c > 0).count() as u32
    }

    /// Camping factor: `max_queue / ideal_queue` where
    /// `ideal = ⌈total / partitions⌉`. 1.0 = perfectly spread; the
    /// all-one-partition pathology of Fig. 6 gives ≈ `partitions`.
    #[must_use]
    pub fn camping_factor(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let ideal = total.div_ceil(self.counts.len() as u64);
        self.max_queue() as f64 / ideal as f64
    }
}

/// Cycles to drain one concurrent access phase: the busiest partition's
/// queue times the per-transaction service cost, plus one round-trip
/// latency for the phase (pipelining hides the rest).
///
/// On compute capability 2.x the L2 absorbs re-reads and the paper notes
/// "the effect of partition camping is taken care of by cached memory
/// reads" — modeled by draining at the *ideal* (spread) rate regardless
/// of the histogram.
#[must_use]
pub fn camping_cycles(traffic: &PartitionTraffic, spec: &DeviceSpec) -> u64 {
    let total = traffic.total();
    if total == 0 {
        return 0;
    }
    let queue = if spec.compute_capability.has_cached_global() {
        total.div_ceil(u64::from(spec.partitions))
    } else {
        traffic.max_queue()
    };
    spec.global_latency_cycles + queue * spec.transaction_service_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn partition_interleave() {
        assert_eq!(partition_of(0, 8, 256), 0);
        assert_eq!(partition_of(255, 8, 256), 0);
        assert_eq!(partition_of(256, 8, 256), 1);
        assert_eq!(partition_of(256 * 8, 8, 256), 0); // wraps
        assert_eq!(partition_of(256 * 9 + 3, 8, 256), 1);
    }

    #[test]
    fn camping_vs_spread_fig6_fig7() {
        let spec = DeviceSpec::c1060();
        // Fig. 6: 30 warps, all transactions to partition 0.
        let mut camped = PartitionTraffic::new(&spec);
        for _ in 0..30 {
            camped.record(0);
        }
        // Fig. 7: the same 30 transactions spread round-robin (Eq. 11).
        let mut spread = PartitionTraffic::new(&spec);
        for w in 0..30u64 {
            spread.record((w % 8) * 256);
        }
        assert_eq!(camped.total(), spread.total());
        assert_eq!(camped.distinct_partitions(), 1);
        assert_eq!(spread.distinct_partitions(), 8);
        assert_eq!(camped.max_queue(), 30);
        assert_eq!(spread.max_queue(), 4); // ⌈30/8⌉
        let t_camped = camping_cycles(&camped, &spec);
        let t_spread = camping_cycles(&spread, &spec);
        assert!(t_camped > t_spread);
        // Queue term shrinks by ~p×.
        assert_eq!(
            t_camped - spec.global_latency_cycles,
            30 * spec.transaction_service_cycles
        );
        assert_eq!(
            t_spread - spec.global_latency_cycles,
            4 * spec.transaction_service_cycles
        );
    }

    #[test]
    fn camping_factor_bounds() {
        let spec = DeviceSpec::c1060();
        let mut t = PartitionTraffic::new(&spec);
        assert_eq!(t.camping_factor(), 1.0); // empty
        for i in 0..64u64 {
            t.record(i * 256); // perfect spread
        }
        assert!((t.camping_factor() - 1.0).abs() < 1e-12);
        let mut bad = PartitionTraffic::new(&spec);
        for _ in 0..64 {
            bad.record(512); // all partition 2
        }
        assert!((bad.camping_factor() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cc2_cache_neutralizes_camping() {
        // §X: on 2.x cached reads hide camping — same cycles either way.
        let spec = DeviceSpec::c2050();
        let mut camped = PartitionTraffic::new(&spec);
        for _ in 0..60 {
            camped.record(0);
        }
        let mut spread = PartitionTraffic::new(&spec);
        for w in 0..60u64 {
            spread.record((w % 6) * 256);
        }
        assert_eq!(
            camping_cycles(&camped, &spec),
            camping_cycles(&spread, &spec)
        );
    }

    #[test]
    fn merge_accumulates() {
        let spec = DeviceSpec::c1060();
        let mut a = PartitionTraffic::new(&spec);
        a.record(0);
        a.record(256);
        let mut b = PartitionTraffic::new(&spec);
        b.record_all(&[0, 512]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[1], 1);
        assert_eq!(a.counts()[2], 1);
    }

    #[test]
    fn empty_traffic_is_free() {
        let spec = DeviceSpec::c1060();
        let t = PartitionTraffic::new(&spec);
        assert_eq!(camping_cycles(&t, &spec), 0);
        assert_eq!(t.max_queue(), 0);
        assert_eq!(t.distinct_partitions(), 0);
    }

    #[test]
    #[should_panic(expected = "partition count mismatch")]
    fn merge_rejects_layout_mismatch() {
        let mut a = PartitionTraffic::new(&DeviceSpec::c1060()); // 8 partitions
        let b = PartitionTraffic::new(&DeviceSpec::c2050()); // 6 partitions
        a.merge(&b);
    }
}
