//! Shared-memory bank conflicts (§IV, Eq. 9).
//!
//! "The on-chip shared memory … is further divided into 16 (or 32) banks
//! … when data is accessed from the same bank, significant performance
//! loss occurs due to bank conflicts (the only exception being the case
//! where all the threads access the same element leading to a
//! broadcast)."
//!
//! Banks are 32 bits wide; word `w` lives in bank `w mod B`. A half-warp
//! access serializes by its *conflict degree* — the largest number of
//! distinct words mapped to one bank. Eq. 9 expresses the same thing as
//! access time inversely proportional to the number of distinct banks
//! covered.

const BANK_WIDTH: u64 = 4;

/// Conflict degree of one half-warp's shared-memory access: the number of
/// serialized passes needed. 1 = conflict-free. Multiple threads reading
/// the *same word* broadcast and do not conflict.
///
/// `addrs` are byte addresses into shared memory; `banks` is the device's
/// bank count (16 on the C1060, 32 on Fermi).
///
/// ```
/// use trigon_gpu_sim::bank_conflict_degree;
/// // 16 threads, consecutive words: conflict-free on 16 banks.
/// let seq: Vec<u64> = (0..16).map(|i| i * 4).collect();
/// assert_eq!(bank_conflict_degree(&seq, 16), 1);
/// // Stride of 2 words: pairs collide, degree 2.
/// let strided: Vec<u64> = (0..16).map(|i| i * 8).collect();
/// assert_eq!(bank_conflict_degree(&strided, 16), 2);
/// ```
#[must_use]
pub fn bank_conflict_degree(addrs: &[u64], banks: u32) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    // Count distinct words per bank.
    let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); banks as usize];
    for &a in addrs {
        let word = a / BANK_WIDTH;
        let bank = (word % u64::from(banks)) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank
        .iter()
        .map(|words| words.len() as u32)
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Cycles for one half-warp shared access: `latency × degree` — the
/// serialization the paper's Eq. 9 captures (time inversely proportional
/// to distinct banks used).
#[must_use]
pub fn shared_access_cycles(addrs: &[u64], banks: u32, latency: u64) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    latency * u64::from(bank_conflict_degree(addrs, banks))
}

/// Number of distinct banks touched — the denominator of Eq. 9.
#[must_use]
pub fn distinct_banks(addrs: &[u64], banks: u32) -> u32 {
    let mut seen = vec![false; banks as usize];
    let mut count = 0;
    for &a in addrs {
        let bank = ((a / BANK_WIDTH) % u64::from(banks)) as usize;
        if !seen[bank] {
            seen[bank] = true;
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_sequential() {
        let addrs: Vec<u64> = (0..16).map(|i| i * 4).collect();
        assert_eq!(bank_conflict_degree(&addrs, 16), 1);
        assert_eq!(distinct_banks(&addrs, 16), 16);
        assert_eq!(shared_access_cycles(&addrs, 16, 24), 24);
    }

    #[test]
    fn broadcast_is_free() {
        // All 16 threads read the same word: degree 1 (broadcast).
        let addrs = vec![64u64; 16];
        assert_eq!(bank_conflict_degree(&addrs, 16), 1);
        assert_eq!(distinct_banks(&addrs, 16), 1);
    }

    #[test]
    fn same_bank_different_words_worst_case() {
        // Stride of exactly `banks` words: every thread in bank 0.
        let addrs: Vec<u64> = (0..16).map(|i| i * 16 * 4).collect();
        assert_eq!(bank_conflict_degree(&addrs, 16), 16);
        assert_eq!(distinct_banks(&addrs, 16), 1);
        assert_eq!(shared_access_cycles(&addrs, 16, 24), 24 * 16);
    }

    #[test]
    fn stride_two_degree_two() {
        let addrs: Vec<u64> = (0..16).map(|i| i * 8).collect();
        assert_eq!(bank_conflict_degree(&addrs, 16), 2);
        assert_eq!(distinct_banks(&addrs, 16), 8);
    }

    #[test]
    fn wider_banks_fix_stride_two() {
        // 32 banks absorb a stride-2 pattern from 16 threads.
        let addrs: Vec<u64> = (0..16).map(|i| i * 8).collect();
        assert_eq!(bank_conflict_degree(&addrs, 32), 1);
    }

    #[test]
    fn mixed_broadcast_and_conflict() {
        // Two threads share a word (broadcast pair), two hit another word
        // in the same bank: degree 2.
        let addrs = vec![0u64, 0, 64, 64, 128];
        // words 0, 16, 32 — all bank 0 on 16 banks: 3 distinct words.
        assert_eq!(bank_conflict_degree(&addrs, 16), 3);
    }

    #[test]
    fn empty_access() {
        assert_eq!(bank_conflict_degree(&[], 16), 0);
        assert_eq!(shared_access_cycles(&[], 16, 24), 0);
        assert_eq!(distinct_banks(&[], 16), 0);
    }

    #[test]
    fn eq9_inverse_proportionality() {
        // Same element count, more distinct banks ⇒ fewer cycles.
        let spread: Vec<u64> = (0..16).map(|i| i * 4).collect();
        let bunched: Vec<u64> = (0..16)
            .map(|i| (i % 4) * 64 * 4 + (i / 4) * 16 * 4)
            .collect();
        let t_spread = shared_access_cycles(&spread, 16, 24);
        let t_bunched = shared_access_cycles(&bunched, 16, 24);
        assert!(distinct_banks(&spread, 16) > distinct_banks(&bunched, 16));
        assert!(t_spread < t_bunched);
    }
}
