//! Performance-counter profiles: attribution of the simulator's counter
//! totals to the work that caused them.
//!
//! The simulator already *prices* every quantity the paper argues in —
//! global-memory transactions under the Table III coalescing rules,
//! partition queueing (Eq. 10), bank conflicts (Eq. 9), per-block cycle
//! costs — but a run-level aggregate cannot answer *which ALS windows or
//! SMs burn the transactions*. This module holds the attribution
//! records: a [`CounterSet`] per adjacent level set, per SM, and in
//! total, collected by every executor into one [`ProfileData`].
//!
//! Counters are priced at simulation time, before dispatch, so they are
//! independent of scheduling, thread width, and fault recovery: the same
//! graph and config produce bit-identical profiles under any fault plan
//! (recovery recomputes results, never re-prices traffic).
//!
//! [`RooflinePoint`] derives a naive roofline placement from the
//! Table I [`DeviceSpec`] constants: compute roof `cores × clock`,
//! memory roof one 128-byte transaction per partition per
//! `transaction_service_cycles`, and the run's arithmetic intensity
//! from its instruction and transaction totals.

use crate::device::DeviceSpec;

/// Modeled instructions per combination test: three adjacency loads,
/// three bit tests with short-circuit control flow, and the combinadic
/// index update. A documented constant, not a measurement — what
/// matters is that instruction totals are exact integer functions of
/// the test counts, identical across executors and fidelity modes.
pub const INSTRUCTIONS_PER_TEST: u64 = 12;

/// Modeled instructions per adjacency-intersection operation (one merge
/// comparison, one galloping probe, or one 64-bit bitmap word): a load,
/// a compare/`AND`, a predicated cursor or popcount update, and the
/// accumulate. Like [`INSTRUCTIONS_PER_TEST`], a documented constant so
/// instruction totals stay exact integer functions of the op counts.
pub const INSTRUCTIONS_PER_INTERSECT_OP: u64 = 4;

/// Bytes moved per global-memory transaction for roofline purposes: the
/// maximal Table III segment. (CC 1.2+ devices may issue narrower
/// segments; the roofline uses the uniform upper bound so intensity is
/// a pure function of the transaction count.)
pub const BYTES_PER_TRANSACTION: u64 = 128;

/// One bundle of profiler counters — the unit of attribution. Every
/// field is an exact integer priced at simulation time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    /// Combination tests performed (or accounted, in sampled fidelity).
    pub tests: u128,
    /// Modeled instructions: `tests ×` [`INSTRUCTIONS_PER_TEST`] for
    /// combination kernels, `ops ×` [`INSTRUCTIONS_PER_INTERSECT_OP`]
    /// for the adjacency-intersection kernels.
    pub instructions: u64,
    /// Global-memory transactions issued under the device's coalescing
    /// rules (§IX, Table III).
    pub transactions: u64,
    /// The minimal transaction count a perfectly coalesced access
    /// pattern would have issued for the same loads (one 128-byte
    /// segment per warp-phase). `min_transactions / transactions` is
    /// the coalescing efficiency.
    pub min_transactions: u64,
    /// Extra shared-memory accesses serialized by bank conflicts
    /// (Eq. 9); zero on the global-memory path.
    pub bank_conflicts: u64,
    /// Compute cycles priced for this work.
    pub compute_cycles: u64,
    /// Base (pre-camping) memory cycles priced for this work.
    pub mem_cycles: u64,
    /// Thread blocks (or pseudo-blocks / chunks) that carried the work.
    pub blocks: u64,
}

impl CounterSet {
    /// Accumulates `other` into `self`, field-wise.
    pub fn merge(&mut self, other: &CounterSet) {
        self.tests += other.tests;
        self.instructions = self.instructions.saturating_add(other.instructions);
        self.transactions += other.transactions;
        self.min_transactions += other.min_transactions;
        self.bank_conflicts += other.bank_conflicts;
        self.compute_cycles += other.compute_cycles;
        self.mem_cycles += other.mem_cycles;
        self.blocks += other.blocks;
    }

    /// Modeled instructions for `tests` combination tests, saturating
    /// at `u64::MAX` (sampled runs on huge graphs).
    #[must_use]
    pub fn instructions_for_tests(tests: u128) -> u64 {
        u64::try_from(tests.saturating_mul(u128::from(INSTRUCTIONS_PER_TEST))).unwrap_or(u64::MAX)
    }

    /// Modeled instructions for `ops` adjacency-intersection operations,
    /// saturating at `u64::MAX`.
    #[must_use]
    pub fn instructions_for_intersect_ops(ops: u128) -> u64 {
        u64::try_from(ops.saturating_mul(u128::from(INSTRUCTIONS_PER_INTERSECT_OP)))
            .unwrap_or(u64::MAX)
    }

    /// Total priced cycles (compute + base memory).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.compute_cycles + self.mem_cycles
    }

    /// `min_transactions / transactions` — 1.0 means every warp access
    /// coalesced perfectly; 1/32 is the fully-scattered worst case.
    /// Defined as 1.0 when no transactions were issued.
    #[must_use]
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.transactions == 0 {
            1.0
        } else {
            self.min_transactions as f64 / self.transactions as f64
        }
    }
}

/// A run's placement on the naive roofline of one device, derived
/// entirely from Table I constants and the run's integer counters — no
/// fault- or schedule-dependent quantity enters, so the point is
/// bit-identical under any fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Compute roof: `cores × clock_hz` modeled instructions per second.
    pub compute_roof_ops_s: f64,
    /// Memory roof: one [`BYTES_PER_TRANSACTION`]-byte transaction per
    /// partition per `transaction_service_cycles`.
    pub mem_roof_bytes_s: f64,
    /// Ridge point `compute_roof / mem_roof` in instructions per byte.
    pub ridge_ops_byte: f64,
    /// The run's arithmetic intensity: instructions per byte moved.
    pub intensity_ops_byte: f64,
    /// Achieved instruction throughput at the ideal (perfectly
    /// balanced) dispatch: `instructions / cycles_to_seconds(ceil(total
    /// cycles / sm_count))`.
    pub achieved_ops_s: f64,
    /// `"memory"` when the intensity sits left of the ridge,
    /// `"compute"` otherwise.
    pub bound: &'static str,
}

impl RooflinePoint {
    /// Places `counters` on `spec`'s roofline.
    #[must_use]
    pub fn from_counters(spec: &DeviceSpec, counters: &CounterSet) -> Self {
        let clock = spec.clock_hz as f64;
        let compute_roof_ops_s = f64::from(spec.cores) * clock;
        let mem_roof_bytes_s = f64::from(spec.partitions) * BYTES_PER_TRANSACTION as f64 * clock
            / spec.transaction_service_cycles as f64;
        let ridge_ops_byte = compute_roof_ops_s / mem_roof_bytes_s;
        let bytes = counters
            .transactions
            .saturating_mul(BYTES_PER_TRANSACTION)
            .max(1);
        let intensity_ops_byte = counters.instructions as f64 / bytes as f64;
        let ideal_cycles = counters.cycles().div_ceil(u64::from(spec.sm_count).max(1));
        let achieved_ops_s = if ideal_cycles == 0 {
            0.0
        } else {
            counters.instructions as f64 / spec.cycles_to_seconds(ideal_cycles)
        };
        let bound = if intensity_ops_byte < ridge_ops_byte {
            "memory"
        } else {
            "compute"
        };
        RooflinePoint {
            compute_roof_ops_s,
            mem_roof_bytes_s,
            ridge_ops_byte,
            intensity_ops_byte,
            achieved_ops_s,
            bound,
        }
    }
}

/// One device's share of a run: its counter totals plus its roofline
/// placement. Fleet runs carry one entry per shard device; single-device
/// and hybrid runs carry exactly one.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Device model name (Table I).
    pub device: String,
    /// Counters attributed to this device.
    pub counters: CounterSet,
    /// The device's roofline placement for those counters.
    pub roofline: RooflinePoint,
}

impl DeviceProfile {
    /// Builds the entry for `spec`, deriving the roofline placement.
    #[must_use]
    pub fn new(spec: &DeviceSpec, counters: CounterSet) -> Self {
        let roofline = RooflinePoint::from_counters(spec, &counters);
        DeviceProfile {
            device: spec.name.to_string(),
            counters,
            roofline,
        }
    }
}

/// A full run profile: counters attributed per adjacent level set, per
/// SM (by *scheduled* assignment — fault recovery may migrate a block,
/// but its priced counters stay with the SM the §VI schedule chose, so
/// profiles are fault-plan-independent), and in total, plus per-device
/// roofline entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileData {
    /// Counters per ALS index (the per-chunk attribution).
    pub per_als: Vec<CounterSet>,
    /// Counters per SM index of the scheduled assignment.
    pub per_sm: Vec<CounterSet>,
    /// Totals over all work.
    pub totals: CounterSet,
    /// One entry per device that ran a shard of the work.
    pub devices: Vec<DeviceProfile>,
}

impl ProfileData {
    /// An empty profile with `n_als` ALS slots and `n_sm` SM slots.
    #[must_use]
    pub fn new(n_als: usize, n_sm: usize) -> Self {
        ProfileData {
            per_als: vec![CounterSet::default(); n_als],
            per_sm: vec![CounterSet::default(); n_sm],
            totals: CounterSet::default(),
            devices: Vec::new(),
        }
    }

    /// Attributes one counter bundle to ALS `als_idx` and SM `sm`.
    pub fn record(&mut self, als_idx: usize, sm: usize, counters: &CounterSet) {
        self.per_als[als_idx].merge(counters);
        if sm < self.per_sm.len() {
            self.per_sm[sm].merge(counters);
        }
        self.totals.merge(counters);
    }

    /// Attributes one counter bundle to ALS `als_idx` only (host
    /// executors have no SM axis).
    pub fn record_als(&mut self, als_idx: usize, counters: &CounterSet) {
        self.per_als[als_idx].merge(counters);
        self.totals.merge(counters);
    }

    /// ALS indices of the `n` hottest sets by priced cycles (ties and
    /// cycle-free host profiles fall back to test counts, then to the
    /// ALS index), hottest first. Deterministic.
    #[must_use]
    pub fn hotspots(&self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.per_als.len())
            .filter(|&i| self.per_als[i].tests > 0 || self.per_als[i].cycles() > 0)
            .collect();
        idx.sort_by(|&a, &b| {
            let (ca, cb) = (&self.per_als[a], &self.per_als[b]);
            cb.cycles()
                .cmp(&ca.cycles())
                .then(cb.tests.cmp(&ca.tests))
                .then(a.cmp(&b))
        });
        idx.truncate(n);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tests: u128, tx: u64, min_tx: u64, cc: u64, mc: u64) -> CounterSet {
        CounterSet {
            tests,
            instructions: CounterSet::instructions_for_tests(tests),
            transactions: tx,
            min_transactions: min_tx,
            bank_conflicts: 0,
            compute_cycles: cc,
            mem_cycles: mc,
            blocks: 1,
        }
    }

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = set(10, 30, 3, 100, 200);
        a.merge(&set(5, 10, 1, 50, 25));
        assert_eq!(a.tests, 15);
        assert_eq!(a.instructions, 15 * INSTRUCTIONS_PER_TEST);
        assert_eq!(a.transactions, 40);
        assert_eq!(a.min_transactions, 4);
        assert_eq!(a.cycles(), 375);
        assert_eq!(a.blocks, 2);
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        assert_eq!(CounterSet::default().coalescing_efficiency(), 1.0);
        let c = set(1, 32, 1, 0, 0);
        assert!((c.coalescing_efficiency() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn record_attributes_to_all_three_axes() {
        let mut p = ProfileData::new(3, 2);
        p.record(1, 0, &set(10, 4, 2, 7, 9));
        p.record(1, 1, &set(20, 8, 4, 3, 1));
        p.record(2, 0, &set(5, 2, 1, 2, 2));
        assert_eq!(p.per_als[0].tests, 0);
        assert_eq!(p.per_als[1].tests, 30);
        assert_eq!(p.per_sm[0].tests, 15);
        assert_eq!(p.totals.tests, 35);
        assert_eq!(p.totals.blocks, 3);
    }

    #[test]
    fn hotspots_rank_by_cycles_then_tests() {
        let mut p = ProfileData::new(4, 1);
        p.record_als(0, &set(100, 0, 0, 10, 0));
        p.record_als(1, &set(1, 0, 0, 99, 0));
        p.record_als(3, &set(50, 0, 0, 10, 0));
        assert_eq!(p.hotspots(10), vec![1, 0, 3]);
        assert_eq!(p.hotspots(1), vec![1]);
    }

    #[test]
    fn roofline_is_a_pure_function_of_spec_and_counters() {
        let spec = DeviceSpec::c1060();
        let c = set(1_000_000, 40_000, 10_000, 500_000, 700_000);
        let r1 = RooflinePoint::from_counters(&spec, &c);
        let r2 = RooflinePoint::from_counters(&spec, &c);
        assert_eq!(r1, r2);
        assert!(r1.compute_roof_ops_s > 0.0);
        assert!(r1.mem_roof_bytes_s > 0.0);
        // 12M instructions over ~5MB moved: well left of any ridge on
        // these devices — memory bound.
        assert_eq!(r1.bound, "memory");
        assert!(r1.intensity_ops_byte < r1.ridge_ops_byte);
        assert!(r1.achieved_ops_s > 0.0);
    }

    #[test]
    fn device_profile_carries_the_model_name() {
        let spec = DeviceSpec::c2050();
        let d = DeviceProfile::new(&spec, set(10, 4, 2, 5, 5));
        assert_eq!(d.device, "C2050");
        assert_eq!(d.counters.tests, 10);
    }
}
