//! Text rendering of partition traffic and per-SM timelines — the
//! Fig. 6 / Fig. 7 pictures as terminal output, used by the examples,
//! the repro harness, and `trigon count --verbose` to *show* camping
//! and SM occupancy rather than just report a factor.

use crate::partition::PartitionTraffic;
use trigon_telemetry::SmLane;

/// Renders a horizontal bar chart of per-partition transaction queues.
///
/// ```text
/// P0 |##################################################| 30
/// P1 |                                                  | 0
/// ...
/// ```
#[must_use]
pub fn render_partition_histogram(traffic: &PartitionTraffic, width: usize) -> String {
    let counts = traffic.counts();
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (p, &c) in counts.iter().enumerate() {
        let filled = (c as usize * width).div_ceil(max as usize).min(width);
        out.push_str(&format!(
            "P{p} |{}{}| {c}\n",
            "#".repeat(filled),
            " ".repeat(width - filled)
        ));
    }
    out.push_str(&format!(
        "distinct {} / {}   max queue {}   camping factor {:.2}\n",
        traffic.distinct_partitions(),
        counts.len(),
        traffic.max_queue(),
        traffic.camping_factor()
    ));
    out
}

/// Renders device-timeline lanes (from `Tracer::sm_occupancy`) as an
/// ASCII chart in the same bar style as the partition histogram: one
/// row per lane, `#`/`+`/`.` cells by busy fraction, and a trailing
/// busy% / span-count column.
///
/// ```text
/// PCIe  |####                | busy  20%  1 span
/// SM  0 |    ###########     | busy  55%  4 spans
/// ```
#[must_use]
pub fn render_sm_timeline(lanes: &[SmLane]) -> String {
    let mut out = String::new();
    if lanes.is_empty() {
        out.push_str("(no device spans recorded)\n");
        return out;
    }
    let label_w = lanes.iter().map(|l| l.label.len()).max().unwrap_or(0);
    for lane in lanes {
        let bar: String = lane
            .cells
            .iter()
            .map(|&f| {
                if f >= 0.75 {
                    '#'
                } else if f >= 0.25 {
                    '+'
                } else if f > 0.0 {
                    '.'
                } else {
                    ' '
                }
            })
            .collect();
        out.push_str(&format!(
            "{:<label_w$} |{bar}| busy {:>3.0}%  {} span{}\n",
            lane.label,
            lane.busy_frac * 100.0,
            lane.spans,
            if lane.spans == 1 { "" } else { "s" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn renders_camped_and_spread() {
        let spec = DeviceSpec::c1060();
        let mut camped = PartitionTraffic::new(&spec);
        for _ in 0..30 {
            camped.record(0);
        }
        let s = render_partition_histogram(&camped, 20);
        assert!(s.contains("P0 |####################| 30"));
        // ideal = ⌈30/8⌉ = 4, max queue 30 ⇒ factor 7.50.
        assert!(s.contains("camping factor 7.50"), "{s}");
        assert_eq!(s.lines().count(), 9); // 8 partitions + summary

        let mut spread = PartitionTraffic::new(&spec);
        for i in 0..32u64 {
            spread.record(i * 256);
        }
        let s2 = render_partition_histogram(&spread, 20);
        assert!(s2.contains("camping factor 1.00"));
        assert!(s2.contains("distinct 8 / 8"));
    }

    #[test]
    fn sm_timeline_renders_lanes() {
        use trigon_telemetry::{Tracer, Track};
        let t = Tracer::new();
        t.device_span("xfer", "pcie", Track::Pcie, 0, 25, &[]);
        t.device_span("b0", "kernel", Track::Sm(0), 25, 75, &[]);
        t.device_span("b1", "kernel", Track::Sm(1), 25, 25, &[]);
        let s = render_sm_timeline(&t.sm_occupancy(20));
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("PCIe"), "{s}");
        assert!(s.contains("SM  0"), "{s}");
        assert!(s.contains("busy  75%"), "{s}");
        assert!(s.contains("1 span\n"), "{s}");
        // SM 0 busy in the back three quarters, idle up front.
        let sm0 = s.lines().find(|l| l.starts_with("SM  0")).unwrap();
        assert!(sm0.contains(' '), "{sm0}");
        assert!(sm0.contains('#'), "{sm0}");
    }

    #[test]
    fn sm_timeline_handles_empty() {
        assert!(render_sm_timeline(&[]).contains("no device spans"));
    }

    #[test]
    fn empty_traffic_renders() {
        let spec = DeviceSpec::c1060();
        let t = PartitionTraffic::new(&spec);
        let s = render_partition_histogram(&t, 10);
        assert!(s.contains("max queue 0"));
    }
}
