//! Text rendering of partition traffic — the Fig. 6 / Fig. 7 pictures as
//! terminal output, used by the examples and the repro harness to *show*
//! camping rather than just report a factor.

use crate::partition::PartitionTraffic;

/// Renders a horizontal bar chart of per-partition transaction queues.
///
/// ```text
/// P0 |##################################################| 30
/// P1 |                                                  | 0
/// ...
/// ```
#[must_use]
pub fn render_partition_histogram(traffic: &PartitionTraffic, width: usize) -> String {
    let counts = traffic.counts();
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (p, &c) in counts.iter().enumerate() {
        let filled = (c as usize * width).div_ceil(max as usize).min(width);
        out.push_str(&format!(
            "P{p} |{}{}| {c}\n",
            "#".repeat(filled),
            " ".repeat(width - filled)
        ));
    }
    out.push_str(&format!(
        "distinct {} / {}   max queue {}   camping factor {:.2}\n",
        traffic.distinct_partitions(),
        counts.len(),
        traffic.max_queue(),
        traffic.camping_factor()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn renders_camped_and_spread() {
        let spec = DeviceSpec::c1060();
        let mut camped = PartitionTraffic::new(&spec);
        for _ in 0..30 {
            camped.record(0);
        }
        let s = render_partition_histogram(&camped, 20);
        assert!(s.contains("P0 |####################| 30"));
        // ideal = ⌈30/8⌉ = 4, max queue 30 ⇒ factor 7.50.
        assert!(s.contains("camping factor 7.50"), "{s}");
        assert_eq!(s.lines().count(), 9); // 8 partitions + summary

        let mut spread = PartitionTraffic::new(&spec);
        for i in 0..32u64 {
            spread.record(i * 256);
        }
        let s2 = render_partition_histogram(&spread, 20);
        assert!(s2.contains("camping factor 1.00"));
        assert!(s2.contains("distinct 8 / 8"));
    }

    #[test]
    fn empty_traffic_renders() {
        let spec = DeviceSpec::c1060();
        let t = PartitionTraffic::new(&spec);
        let s = render_partition_histogram(&t, 10);
        assert!(s.contains("max queue 0"));
    }
}
