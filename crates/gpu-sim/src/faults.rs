//! Deterministic fault injection for the simulated pipeline.
//!
//! The paper's chunk-level decomposition (§V) plus makespan scheduling
//! (§VI) make triangle counting restartable at chunk granularity — the
//! same property the distributed variants (Sanders & Uhl; Arifuzzaman
//! et al.) exploit for per-partition recovery. This module supplies the
//! *adversary*: a seeded [`FaultPlan`] that decides, reproducibly,
//! where ECC read corruptions, PCIe transfer failures, kernel aborts,
//! and SM stalls strike a simulated run. The recovery policy lives in
//! the executor (`trigon-core`); this crate only defines the plan, the
//! knobs ([`FaultConfig`]), and the event vocabulary
//! ([`FaultEvent`] / [`FaultOutcome`]) recovery reports back in.
//!
//! Everything is a pure function of `(spec, seed)` plus the site counts
//! the executor hands in — identical inputs give identical fault
//! schedules on any host, which is what makes the recovery property
//! tests (`counts stay bit-identical under every plan`) checkable.

use std::fmt;

/// How many faults of each kind a plan injects.
///
/// Parsed from the CLI `--faults` syntax: comma-separated `kind:count`
/// pairs, e.g. `"xfer:1,ecc:2"`. Kinds: `ecc` (read corruption of one
/// chunk's result), `xfer` (failed H2D PCIe transfer), `abort` (kernel
/// abort of one chunk mid-flight), `stall` (one SM stops dispatching).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// ECC read corruptions of completed chunk results.
    pub ecc: u32,
    /// Failed host→device transfer attempts.
    pub xfer: u32,
    /// Kernel aborts of in-flight chunks.
    pub abort: u32,
    /// SMs that stall and stop dispatching work.
    pub stall: u32,
}

impl FaultSpec {
    /// Parses the `kind:count[,kind:count...]` CLI syntax.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending fragment: unknown
    /// kind, missing/garbled count, duplicate kind, or an empty spec.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        let mut seen = [false; 4];
        if s.trim().is_empty() {
            return Err("empty fault spec; expected kind:count[,kind:count...]".into());
        }
        for part in s.split(',') {
            let part = part.trim();
            let (kind, count) = part
                .split_once(':')
                .ok_or_else(|| format!("fault {part:?} is not kind:count"))?;
            let n: u32 = count
                .parse()
                .map_err(|_| format!("fault count {count:?} in {part:?} is not a number"))?;
            let idx = match kind {
                "ecc" => 0,
                "xfer" => 1,
                "abort" => 2,
                "stall" => 3,
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (expected ecc|xfer|abort|stall)"
                    ));
                }
            };
            if seen[idx] {
                return Err(format!("duplicate fault kind {kind:?}"));
            }
            seen[idx] = true;
            match idx {
                0 => spec.ecc = n,
                1 => spec.xfer = n,
                2 => spec.abort = n,
                _ => spec.stall = n,
            }
        }
        Ok(spec)
    }

    /// Whether the spec injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ecc == 0 && self.xfer == 0 && self.abort == 0 && self.stall == 0
    }

    /// Total faults across all kinds.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.ecc + self.xfer + self.abort + self.stall
    }
}

impl fmt::Display for FaultSpec {
    /// Canonical `kind:count` form (kinds in `ecc,xfer,abort,stall`
    /// order, zero counts omitted; `"none"` when empty).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for (name, n) in [
            ("ecc", self.ecc),
            ("xfer", self.xfer),
            ("abort", self.abort),
            ("stall", self.stall),
        ] {
            if n == 0 {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{name}:{n}")?;
            first = false;
        }
        Ok(())
    }
}

/// SplitMix64 — the tiny, dependency-free PRNG the plan draws targets
/// from. One independent stream per fault kind keeps target choices
/// decoupled: adding `stall:1` to a spec does not move where the `ecc`
/// faults land.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A seeded, deterministic fault plan: *what* to inject ([`FaultSpec`])
/// and *where*, derived reproducibly from the seed once the executor
/// reports how many injection sites (chunks, SMs, rounds) exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
}

impl FaultPlan {
    /// Builds a plan from a spec and a seed.
    #[must_use]
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        Self { spec, seed }
    }

    /// The spec this plan injects.
    #[must_use]
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// The seed the targets derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One independent target stream per fault kind.
    fn stream(&self, kind_tag: u64) -> SplitMix64 {
        SplitMix64(self.seed ^ kind_tag.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Chunk indices hit by ECC read corruption (with replacement: the
    /// same chunk can be struck more than once). Empty when there are
    /// no chunks.
    #[must_use]
    pub fn ecc_targets(&self, chunks: usize) -> Vec<usize> {
        self.draw_chunks(1, self.spec.ecc, chunks)
    }

    /// Chunk indices whose kernel execution aborts mid-flight.
    #[must_use]
    pub fn abort_targets(&self, chunks: usize) -> Vec<usize> {
        self.draw_chunks(2, self.spec.abort, chunks)
    }

    /// `(sm, round)` pairs of SMs that stall. SMs are distinct and at
    /// least one SM always survives, so recovery has somewhere to move
    /// the stranded work (a full-device loss is a transfer-exhaustion /
    /// CPU-fallback scenario, not a stall one).
    #[must_use]
    pub fn stall_targets(&self, sms: u32, rounds: usize) -> Vec<(u32, usize)> {
        if sms <= 1 || rounds == 0 || self.spec.stall == 0 {
            return Vec::new();
        }
        let mut rng = self.stream(3);
        let max_stalls = (sms - 1).min(self.spec.stall);
        let mut hit: Vec<u32> = Vec::with_capacity(max_stalls as usize);
        while hit.len() < max_stalls as usize {
            let sm = (rng.next() % u64::from(sms)) as u32;
            if !hit.contains(&sm) {
                hit.push(sm);
            }
        }
        hit.into_iter()
            .map(|sm| (sm, (rng.next() % rounds as u64) as usize))
            .collect()
    }

    /// The deterministic garbage a struck chunk's result is XORed with —
    /// always nonzero, so a corruption never silently preserves the
    /// value.
    #[must_use]
    pub fn corruption_mask(&self, chunk: usize, occurrence: u32) -> u64 {
        let mut rng = self.stream(4 ^ (chunk as u64) << 8 ^ u64::from(occurrence) << 40);
        rng.next() | 1
    }

    fn draw_chunks(&self, tag: u64, count: u32, chunks: usize) -> Vec<usize> {
        if chunks == 0 || count == 0 {
            return Vec::new();
        }
        let mut rng = self.stream(tag);
        (0..count)
            .map(|_| (rng.next() % chunks as u64) as usize)
            .collect()
    }
}

/// Fault injection plus the recovery knobs the executor honors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// The seeded plan.
    pub plan: FaultPlan,
    /// Whether recovery runs. With `false`, faults land uncorrected —
    /// the negative control the property suite uses to prove the
    /// injection is real (counts *must* drift without recovery).
    pub recovery: bool,
    /// Transfer attempts before the whole run degrades to the CPU path.
    pub max_transfer_retries: u32,
    /// Re-executions of one chunk before it degrades to the CPU path.
    pub max_chunk_retries: u32,
    /// Base of the capped exponential retry backoff, in device cycles.
    pub backoff_base_cycles: u64,
    /// Backoff cap in device cycles.
    pub backoff_cap_cycles: u64,
}

impl FaultConfig {
    /// A config with the default recovery policy: recovery on, 8
    /// transfer retries, 3 chunk retries, 1k-cycle base backoff capped
    /// at 64k cycles.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            recovery: true,
            max_transfer_retries: 8,
            max_chunk_retries: 3,
            backoff_base_cycles: 1_000,
            backoff_cap_cycles: 64_000,
        }
    }

    /// Capped exponential backoff before retry `attempt` (1-based):
    /// `min(base · 2^(attempt−1), cap)` simulated cycles.
    #[must_use]
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        let shifted = self
            .backoff_base_cycles
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        shifted.min(self.backoff_cap_cycles)
    }
}

/// One fault or recovery action, in the order it happened. The sequence
/// is part of the determinism contract: same graph + config + plan ⇒
/// byte-identical event list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// H2D transfer attempt `attempt` (1-based) failed.
    XferFault {
        /// Failed attempt number.
        attempt: u32,
    },
    /// Transfer retry scheduled after a backoff.
    XferRetry {
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Backoff paid before the retry, in device cycles.
        backoff_cycles: u64,
    },
    /// Transfer retries exhausted — the whole run fell back to the CPU
    /// path.
    RunCpuFallback,
    /// SM `sm` stalled at dispatch round `round`.
    SmStall {
        /// Stalled SM.
        sm: u32,
        /// Round the stall struck.
        round: u32,
    },
    /// A stranded chunk was moved from a stalled SM to a survivor.
    ChunkReassigned {
        /// Chunk (block) index.
        chunk: usize,
        /// SM it was queued on.
        from: u32,
        /// Surviving SM it moved to.
        to: u32,
    },
    /// ECC corrupted chunk `chunk`'s result as SM `sm` completed it.
    EccCorruption {
        /// Chunk (block) index.
        chunk: usize,
        /// SM that held the corrupted result.
        sm: u32,
        /// Dispatch round of the corruption.
        round: u32,
    },
    /// Chunk `chunk` aborted mid-kernel on SM `sm`.
    KernelAbort {
        /// Chunk (block) index.
        chunk: usize,
        /// SM it aborted on.
        sm: u32,
        /// Dispatch round of the abort.
        round: u32,
    },
    /// A faulted chunk was requeued for re-execution.
    ChunkRequeued {
        /// Chunk (block) index.
        chunk: usize,
        /// SM it was requeued on.
        to: u32,
        /// Re-execution attempt number (1-based).
        attempt: u32,
        /// Backoff paid before relaunch, in device cycles.
        backoff_cycles: u64,
    },
    /// A chunk exhausted its retries and was recomputed on the host.
    ChunkCpuFallback {
        /// Chunk (block) index.
        chunk: usize,
    },
}

/// Everything recovery did during one run — the numbers the
/// `RunReport.faults` section summarizes, plus the ordered event log
/// the determinism tests compare.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Faults actually injected (≤ the spec when sites ran out — e.g.
    /// more stalls than SMs).
    pub injected: FaultSpec,
    /// Failed transfer attempts that were retried.
    pub transfer_retries: u32,
    /// Chunk re-executions (ECC + abort recoveries).
    pub chunk_retries: u32,
    /// Chunks moved off stalled SMs onto survivors.
    pub reassigned_chunks: u64,
    /// Chunks that exhausted retries and recomputed on the host.
    pub cpu_fallback_chunks: u64,
    /// Whether transfer exhaustion degraded the whole run to the CPU.
    pub run_cpu_fallback: bool,
    /// SMs that stalled.
    pub stalled_sms: u32,
    /// Total backoff paid, in device cycles.
    pub backoff_cycles: u64,
    /// Ordered fault/recovery log.
    pub events: Vec<FaultEvent>,
}

impl FaultOutcome {
    /// An empty outcome (no faults fired yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event to the ordered log.
    pub fn record(&mut self, event: FaultEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_canonical_order() {
        let s = FaultSpec::parse("xfer:1,ecc:2").unwrap();
        assert_eq!(s.ecc, 2);
        assert_eq!(s.xfer, 1);
        assert_eq!(s.to_string(), "ecc:2,xfer:1");
        let all = FaultSpec::parse("stall:3,abort:1,ecc:2,xfer:1").unwrap();
        assert_eq!(all.to_string(), "ecc:2,xfer:1,abort:1,stall:3");
        assert_eq!(all.total(), 7);
        assert_eq!(FaultSpec::default().to_string(), "none");
        assert!(FaultSpec::default().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "  ",
            "ecc",
            "ecc:",
            "ecc:x",
            "ecc:-1",
            "flip:1",
            "ecc:1,ecc:2",
            "ecc:1,,xfer:2",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn targets_are_deterministic_per_seed() {
        let spec = FaultSpec::parse("ecc:3,abort:2,stall:2").unwrap();
        let a = FaultPlan::new(spec, 7);
        let b = FaultPlan::new(spec, 7);
        assert_eq!(a.ecc_targets(100), b.ecc_targets(100));
        assert_eq!(a.abort_targets(100), b.abort_targets(100));
        assert_eq!(a.stall_targets(30, 12), b.stall_targets(30, 12));
        let c = FaultPlan::new(spec, 8);
        assert!(
            a.ecc_targets(1000) != c.ecc_targets(1000)
                || a.abort_targets(1000) != c.abort_targets(1000),
            "different seeds should move targets"
        );
    }

    #[test]
    fn kind_streams_are_independent() {
        let with_stall = FaultPlan::new(FaultSpec::parse("ecc:3,stall:2").unwrap(), 42);
        let without = FaultPlan::new(FaultSpec::parse("ecc:3").unwrap(), 42);
        assert_eq!(with_stall.ecc_targets(64), without.ecc_targets(64));
    }

    #[test]
    fn targets_respect_site_counts() {
        let plan = FaultPlan::new(FaultSpec::parse("ecc:5,stall:40").unwrap(), 1);
        assert!(plan.ecc_targets(0).is_empty());
        assert!(plan.ecc_targets(3).iter().all(|&b| b < 3));
        // At least one SM survives.
        let stalls = plan.stall_targets(4, 10);
        assert_eq!(stalls.len(), 3);
        let mut sms: Vec<u32> = stalls.iter().map(|&(s, _)| s).collect();
        sms.sort_unstable();
        sms.dedup();
        assert_eq!(sms.len(), 3, "stalled SMs must be distinct");
        assert!(stalls.iter().all(|&(s, r)| s < 4 && r < 10));
        assert!(plan.stall_targets(1, 10).is_empty());
        assert!(plan.stall_targets(4, 0).is_empty());
    }

    #[test]
    fn corruption_mask_never_zero() {
        let plan = FaultPlan::new(FaultSpec::parse("ecc:1").unwrap(), 0);
        for chunk in 0..50 {
            for occ in 0..4 {
                assert_ne!(plan.corruption_mask(chunk, occ), 0);
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let fc = FaultConfig::new(FaultPlan::new(FaultSpec::default(), 0));
        assert_eq!(fc.backoff_cycles(1), 1_000);
        assert_eq!(fc.backoff_cycles(2), 2_000);
        assert_eq!(fc.backoff_cycles(3), 4_000);
        assert_eq!(fc.backoff_cycles(7), 64_000);
        assert_eq!(fc.backoff_cycles(30), 64_000, "cap holds");
        assert_eq!(fc.backoff_cycles(100), 64_000, "no shift overflow");
    }

    #[test]
    fn outcome_event_log_is_ordered() {
        let mut o = FaultOutcome::new();
        o.record(FaultEvent::XferFault { attempt: 1 });
        o.record(FaultEvent::XferRetry {
            attempt: 1,
            backoff_cycles: 1000,
        });
        assert_eq!(o.events.len(), 2);
        assert_eq!(o.events[0], FaultEvent::XferFault { attempt: 1 });
    }
}
