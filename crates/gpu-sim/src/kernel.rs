//! Kernel-launch cost accounting (§V–§VI).
//!
//! A simulated kernel is a bag of *thread blocks*, each with a compute
//! cost (warp instruction-issue cycles) and a memory cost (already priced
//! by the [`crate::coalesce`] and [`crate::partition`] models). Blocks are
//! assigned to streaming multiprocessors; an SM runs its blocks back to
//! back; SMs run in parallel — so kernel time is the **makespan** of the
//! assignment, which is precisely why §VI reduces chunk scheduling to
//! makespan scheduling.
//!
//! Within one block, compute and memory overlap: with enough resident
//! warps the SM hides memory latency behind arithmetic from other warps,
//! so a block costs `max(compute, memory)` cycles rather than their sum.

use crate::device::DeviceSpec;

/// Priced cost of one thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCost {
    /// Arithmetic cycles: warp instruction issues × issue width.
    pub compute_cycles: u64,
    /// Memory cycles: coalesced transactions through the partition model.
    pub mem_cycles: u64,
}

impl BlockCost {
    /// Effective cycles the block occupies its SM, with compute/memory
    /// overlap.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.mem_cycles)
    }
}

/// A simulated kernel: device + block costs.
#[derive(Debug, Clone)]
pub struct KernelSim {
    spec: DeviceSpec,
    blocks: Vec<BlockCost>,
}

/// Timing result of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Busy cycles per SM under the chosen assignment.
    pub per_sm_cycles: Vec<u64>,
    /// `max(per_sm_cycles)` — the §VI makespan.
    pub makespan_cycles: u64,
    /// Fixed launch overhead in seconds.
    pub launch_s: f64,
    /// End-to-end kernel seconds: launch + makespan at the core clock.
    pub total_s: f64,
}

impl KernelSim {
    /// New empty kernel on `spec`.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            blocks: Vec::new(),
        }
    }

    /// Adds one block.
    pub fn push_block(&mut self, b: BlockCost) {
        self.blocks.push(b);
    }

    /// Number of blocks queued.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Block costs queued so far (for external schedulers).
    #[must_use]
    pub fn blocks(&self) -> &[BlockCost] {
        &self.blocks
    }

    /// The device spec this kernel is priced on.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Times the kernel under an explicit block→SM assignment
    /// (`assignment[i]` is the SM index of block `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length or any SM index is out of range.
    #[must_use]
    pub fn timing_with_assignment(&self, assignment: &[u32]) -> KernelTiming {
        assert_eq!(
            assignment.len(),
            self.blocks.len(),
            "assignment length mismatch"
        );
        let mut per_sm = vec![0u64; self.spec.sm_count as usize];
        for (block, &sm) in self.blocks.iter().zip(assignment) {
            assert!((sm as usize) < per_sm.len(), "SM index {sm} out of range");
            per_sm[sm as usize] += block.cycles();
        }
        self.finish(per_sm)
    }

    /// Times the kernel under the hardware's default greedy dispatch:
    /// blocks go to the currently least-loaded SM in queue order (a
    /// list-scheduling baseline — what a real GigaThread engine
    /// approximates).
    #[must_use]
    pub fn timing_greedy(&self) -> KernelTiming {
        let mut per_sm = vec![0u64; self.spec.sm_count as usize];
        for block in &self.blocks {
            let idx = per_sm
                .iter()
                .enumerate()
                .min_by_key(|&(i, &c)| (c, i))
                .map(|(i, _)| i)
                .expect("device has at least one SM");
            per_sm[idx] += block.cycles();
        }
        self.finish(per_sm)
    }

    /// Times the kernel under naive round-robin dispatch (block `i` to SM
    /// `i mod sm_count`) — the §VI strawman.
    #[must_use]
    pub fn timing_round_robin(&self) -> KernelTiming {
        let sm_count = self.spec.sm_count as usize;
        let mut per_sm = vec![0u64; sm_count];
        for (i, block) in self.blocks.iter().enumerate() {
            per_sm[i % sm_count] += block.cycles();
        }
        self.finish(per_sm)
    }

    fn finish(&self, per_sm_cycles: Vec<u64>) -> KernelTiming {
        let makespan_cycles = per_sm_cycles.iter().copied().max().unwrap_or(0);
        let launch_s = self.spec.kernel_launch_s;
        let total_s = launch_s + self.spec.cycles_to_seconds(makespan_cycles);
        KernelTiming {
            per_sm_cycles,
            makespan_cycles,
            launch_s,
            total_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn block(compute: u64, mem: u64) -> BlockCost {
        BlockCost {
            compute_cycles: compute,
            mem_cycles: mem,
        }
    }

    #[test]
    fn block_overlap_is_max() {
        assert_eq!(block(100, 40).cycles(), 100);
        assert_eq!(block(40, 100).cycles(), 100);
        assert_eq!(block(0, 0).cycles(), 0);
    }

    #[test]
    fn empty_kernel_costs_launch_only() {
        let k = KernelSim::new(DeviceSpec::c1060());
        let t = k.timing_greedy();
        assert_eq!(t.makespan_cycles, 0);
        assert!((t.total_s - DeviceSpec::c1060().kernel_launch_s).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_max_sm_load() {
        let mut k = KernelSim::new(DeviceSpec::c1060());
        for c in [100u64, 200, 300] {
            k.push_block(block(c, 0));
        }
        // Explicit: all on SM 0.
        let t = k.timing_with_assignment(&[0, 0, 0]);
        assert_eq!(t.makespan_cycles, 600);
        assert_eq!(t.per_sm_cycles[0], 600);
        // Spread across three SMs.
        let t2 = k.timing_with_assignment(&[0, 1, 2]);
        assert_eq!(t2.makespan_cycles, 300);
    }

    #[test]
    fn greedy_beats_or_ties_round_robin() {
        // Pathological order: big blocks first at positions that round-robin
        // stacks onto the same SM (31 blocks on a 30-SM device).
        let mut k = KernelSim::new(DeviceSpec::c1060());
        for i in 0..31u64 {
            k.push_block(block(if i % 30 == 0 { 1000 } else { 10 }, 0));
        }
        let rr = k.timing_round_robin();
        let greedy = k.timing_greedy();
        assert!(greedy.makespan_cycles <= rr.makespan_cycles);
        assert_eq!(rr.makespan_cycles, 2000); // blocks 0 and 30 both on SM 0
        assert_eq!(greedy.makespan_cycles, 1000 + 10);
    }

    #[test]
    fn seconds_track_clock() {
        let spec = DeviceSpec::c1060();
        let mut k = KernelSim::new(spec.clone());
        k.push_block(block(spec.clock_hz, 0)); // exactly one second of work
        let t = k.timing_greedy();
        assert!((t.total_s - (1.0 + spec.kernel_launch_s)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "assignment length mismatch")]
    fn rejects_bad_assignment_len() {
        let mut k = KernelSim::new(DeviceSpec::c1060());
        k.push_block(block(1, 1));
        let _ = k.timing_with_assignment(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_sm_index() {
        let mut k = KernelSim::new(DeviceSpec::c1060());
        k.push_block(block(1, 1));
        let _ = k.timing_with_assignment(&[99]);
    }
}
