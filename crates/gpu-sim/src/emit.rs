//! Emit hooks: record simulator accounting into a telemetry
//! [`Collector`].
//!
//! The kernel, partition, and transfer models each know their own
//! numbers; these helpers give them one shared vocabulary of counter and
//! gauge names so every layer of a pipeline run lands in the same
//! collector. Names are namespaced `gpu.*`, `partition.*`, `xfer.*`.

use crate::kernel::KernelTiming;
use crate::partition::PartitionTraffic;
use crate::xfer::TransferModel;
use trigon_telemetry::{AttrValue, Collector, Tracer, Track};

/// Records a partition-traffic histogram: total transactions, distinct
/// partitions touched, the deepest queue, the camping factor (Eq. 10),
/// and one `p{i}` counter per partition so renderers can rebuild the
/// full queue picture from a collector. `prefix` namespaces the entries
/// (e.g. `"kernel"`).
pub fn emit_traffic(c: &mut Collector, prefix: &str, traffic: &PartitionTraffic) {
    if !c.enabled() {
        return;
    }
    c.add(&format!("partition.{prefix}.transactions"), traffic.total());
    c.gauge(
        &format!("partition.{prefix}.distinct"),
        traffic.distinct_partitions() as f64,
    );
    c.gauge(
        &format!("partition.{prefix}.max_queue"),
        traffic.max_queue() as f64,
    );
    if traffic.total() > 0 {
        c.gauge(
            &format!("partition.{prefix}.camping_factor"),
            traffic.camping_factor(),
        );
    }
    for (p, &n) in traffic.counts().iter().enumerate() {
        c.add(&format!("partition.{prefix}.p{p}"), n);
    }
}

/// Records one kernel timing: makespan cycles, per-SM load spread, and
/// the derived SM utilization (mean load / makespan, 1.0 = perfectly
/// balanced).
pub fn emit_kernel_timing(c: &mut Collector, t: &KernelTiming) {
    if !c.enabled() {
        return;
    }
    c.add("gpu.makespan_cycles", t.makespan_cycles);
    c.gauge("gpu.sm_utilization", sm_utilization(&t.per_sm_cycles));
    c.phase_seconds("kernel", t.total_s);
}

/// Records a host↔device transfer: bytes moved and modeled seconds
/// (accumulated into the `xfer` phase).
pub fn emit_transfer(c: &mut Collector, model: &TransferModel, bytes: u64) {
    if !c.enabled() {
        return;
    }
    c.add("xfer.bytes", bytes);
    c.phase_seconds("xfer", model.transfer_seconds(bytes));
}

/// Records a host→device transfer as a span on the tracer's PCIe lane,
/// starting at `start_cycles` on the simulated clock. Returns the end
/// cycle so callers can schedule kernel spans after the data has
/// landed. The span duration is the transfer model's affine cost
/// converted to device cycles at `clock_hz`.
pub fn trace_transfer(
    tracer: &Tracer,
    model: &TransferModel,
    bytes: u64,
    clock_hz: u64,
    start_cycles: u64,
) -> u64 {
    trace_transfer_labeled(tracer, "H2D transfer", model, bytes, clock_hz, start_cycles)
}

/// [`trace_transfer`] with an explicit span label — fault injection uses
/// it to distinguish failed attempts (`"H2D transfer (failed)"`) from
/// the one that lands.
pub fn trace_transfer_labeled(
    tracer: &Tracer,
    label: &str,
    model: &TransferModel,
    bytes: u64,
    clock_hz: u64,
    start_cycles: u64,
) -> u64 {
    let dur_cycles = (model.transfer_seconds(bytes) * clock_hz as f64).ceil() as u64;
    tracer.device_span(
        label,
        "pcie",
        Track::Pcie,
        start_cycles,
        dur_cycles,
        &[
            ("bytes", AttrValue::UInt(bytes)),
            ("bandwidth_Bps", AttrValue::UInt(model.bandwidth)),
            ("latency_s", AttrValue::Float(model.latency_s)),
        ],
    );
    start_cycles + dur_cycles
}

/// Mean-load / makespan utilization of a per-SM cycle vector;
/// 1.0 when empty or perfectly balanced.
#[must_use]
pub fn sm_utilization(per_sm_cycles: &[u64]) -> f64 {
    let max = per_sm_cycles.iter().copied().max().unwrap_or(0);
    if max == 0 || per_sm_cycles.is_empty() {
        return 1.0;
    }
    let mean = per_sm_cycles.iter().sum::<u64>() as f64 / per_sm_cycles.len() as f64;
    mean / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn traffic_emission_names_and_values() {
        let spec = DeviceSpec::c1060();
        let mut t = PartitionTraffic::new(&spec);
        for _ in 0..6 {
            t.record(256);
        }
        t.record(256 + spec.partition_width);
        let mut c = Collector::new();
        emit_traffic(&mut c, "kernel", &t);
        assert_eq!(c.counter("partition.kernel.transactions"), 7);
        assert_eq!(c.gauge_value("partition.kernel.distinct"), Some(2.0));
        assert!(c.gauge_value("partition.kernel.camping_factor").unwrap() > 1.0);
        // Per-partition counters rebuild the queue picture (addr 256
        // with a 256-byte partition width lands in partition 1).
        assert_eq!(c.counter("partition.kernel.p1"), 6);
        assert_eq!(c.counter("partition.kernel.p2"), 1);
    }

    #[test]
    fn trace_transfer_spans_the_pcie_lane() {
        let spec = DeviceSpec::c1060();
        let model = TransferModel::from_spec(&spec);
        let tracer = Tracer::new();
        let end = trace_transfer(&tracer, &model, 1 << 20, spec.clock_hz, 0);
        assert!(end > 0);
        let expect = (model.transfer_seconds(1 << 20) * spec.clock_hz as f64).ceil() as u64;
        assert_eq!(end, expect);
        assert_eq!(tracer.span_count(), 1);
        // Chained transfers start where the previous one ended.
        let end2 = trace_transfer(&tracer, &model, 1 << 20, spec.clock_hz, end);
        assert_eq!(end2, 2 * expect);
    }

    #[test]
    fn transfer_emission_accumulates_phase() {
        let spec = DeviceSpec::c1060();
        let model = TransferModel::from_spec(&spec);
        let mut c = Collector::new();
        emit_transfer(&mut c, &model, 1 << 20);
        emit_transfer(&mut c, &model, 1 << 20);
        assert_eq!(c.counter("xfer.bytes"), 2 << 20);
        let expect = 2.0 * model.transfer_seconds(1 << 20);
        assert!((c.phase_total("xfer") - expect).abs() < 1e-12);
    }

    #[test]
    fn utilization_bounds() {
        assert_eq!(sm_utilization(&[]), 1.0);
        assert_eq!(sm_utilization(&[5, 5, 5]), 1.0);
        let u = sm_utilization(&[10, 0, 0]);
        assert!((u - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_collector_is_untouched() {
        let spec = DeviceSpec::c1060();
        let mut t = PartitionTraffic::new(&spec);
        t.record(0);
        let mut c = Collector::disabled();
        emit_traffic(&mut c, "k", &t);
        emit_transfer(&mut c, &TransferModel::from_spec(&spec), 100);
        assert_eq!(c.counter("partition.k.transactions"), 0);
        assert_eq!(c.counter("xfer.bytes"), 0);
    }
}
