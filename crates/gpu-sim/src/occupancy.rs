//! SM occupancy: how many blocks/warps are resident per streaming
//! multiprocessor given the kernel's resource appetite.
//!
//! The paper's §V scheduling discussion assumes warps are available to
//! hide latency; whether they *are* depends on the occupancy limits of
//! the architecture. This model reproduces the CUDA occupancy rules of
//! the era: residency is the minimum over the thread, register, shared
//! memory and block-count constraints.

use crate::device::{ComputeCapability, DeviceSpec};

/// Per-architecture residency limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmLimits {
    /// Max resident threads per SM.
    pub max_threads: u32,
    /// Max resident blocks per SM.
    pub max_blocks: u32,
    /// Registers per SM (32-bit).
    pub registers: u32,
    /// Max warps per SM.
    pub max_warps: u32,
}

impl SmLimits {
    /// Limits for a compute capability (GT200 vs Fermi).
    #[must_use]
    pub fn for_cc(cc: ComputeCapability) -> Self {
        match cc {
            ComputeCapability::Cc10 | ComputeCapability::Cc11 => Self {
                max_threads: 768,
                max_blocks: 8,
                registers: 8 * 1024,
                max_warps: 24,
            },
            ComputeCapability::Cc12 | ComputeCapability::Cc13 => Self {
                max_threads: 1024,
                max_blocks: 8,
                registers: 16 * 1024,
                max_warps: 32,
            },
            ComputeCapability::Cc20 => Self {
                max_threads: 1536,
                max_blocks: 8,
                registers: 32 * 1024,
                max_warps: 48,
            },
        }
    }
}

/// A kernel's per-block resource appetite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory bytes per block.
    pub shared_bytes_per_block: u64,
}

/// Occupancy result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
    /// Fraction of the architecture's warp capacity in use (0–1).
    pub fraction: f64,
    /// Which resource binds: "threads", "blocks", "registers" or
    /// "shared".
    pub limiter: &'static str,
}

/// Computes occupancy for `res` on `spec`.
///
/// # Panics
///
/// Panics if `threads_per_block` is 0 or not a multiple of the warp size.
#[must_use]
pub fn occupancy(spec: &DeviceSpec, res: &KernelResources) -> Occupancy {
    assert!(
        res.threads_per_block > 0 && res.threads_per_block.is_multiple_of(spec.warp_size),
        "threads per block must be a positive multiple of the warp size"
    );
    let lim = SmLimits::for_cc(spec.compute_capability);
    let by_threads = lim.max_threads / res.threads_per_block;
    let by_blocks = lim.max_blocks;
    let by_regs = lim
        .registers
        .checked_div(res.regs_per_thread * res.threads_per_block)
        .unwrap_or(u32::MAX);
    let by_shared = spec
        .shared_mem_bytes
        .checked_div(res.shared_bytes_per_block)
        .map_or(u32::MAX, |b| b as u32);
    let candidates = [
        (by_threads, "threads"),
        (by_blocks, "blocks"),
        (by_regs, "registers"),
        (by_shared, "shared"),
    ];
    let (blocks_per_sm, limiter) = candidates
        .into_iter()
        .min_by_key(|&(b, _)| b)
        .expect("non-empty candidates");
    let warps_per_block = res.threads_per_block / spec.warp_size;
    let warps = (blocks_per_sm * warps_per_block).min(lim.max_warps);
    Occupancy {
        blocks_per_sm,
        warps_per_sm: warps,
        fraction: f64::from(warps) / f64::from(lim.max_warps),
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn res(threads: u32, regs: u32, shared: u64) -> KernelResources {
        KernelResources {
            threads_per_block: threads,
            regs_per_thread: regs,
            shared_bytes_per_block: shared,
        }
    }

    #[test]
    fn light_kernel_fills_the_sm() {
        let spec = DeviceSpec::c1060();
        let o = occupancy(&spec, &res(128, 10, 256));
        // 1024/128 = 8 blocks by threads, 8 by block limit,
        // 16384/(10·128) = 12 by regs, 16K/256 = 64 by shared → 8 blocks.
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.warps_per_sm, 32);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_pressure_limits() {
        let spec = DeviceSpec::c1060();
        let o = occupancy(&spec, &res(256, 32, 0));
        // 16384/(32·256) = 2 blocks.
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, "registers");
        assert_eq!(o.warps_per_sm, 16);
    }

    #[test]
    fn shared_memory_limits() {
        let spec = DeviceSpec::c1060();
        // Each block wants 8 KB of the 16 KB shared memory.
        let o = occupancy(&spec, &res(64, 8, 8 * 1024));
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, "shared");
    }

    #[test]
    fn fermi_has_more_headroom() {
        let r = res(256, 20, 1024);
        let tesla = occupancy(&DeviceSpec::c1060(), &r);
        let fermi = occupancy(&DeviceSpec::c2050(), &r);
        assert!(fermi.warps_per_sm > tesla.warps_per_sm);
    }

    #[test]
    fn zero_appetite_is_block_limited() {
        let spec = DeviceSpec::c2050();
        let o = occupancy(&spec, &res(32, 0, 0));
        assert_eq!(o.blocks_per_sm, 8); // block-count cap
        assert_eq!(o.limiter, "blocks");
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn rejects_ragged_blocks() {
        let _ = occupancy(&DeviceSpec::c1060(), &res(48, 8, 0));
    }
}
