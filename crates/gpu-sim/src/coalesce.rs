//! Memory-access coalescing (§IX).
//!
//! "Data from the global memory is accessed in the form of transactions
//! … minimizing the number of global memory accesses is equivalent to
//! minimizing the number of transactions." This module turns the byte
//! addresses issued by one warp into a transaction count under the rules
//! of each compute capability, reproducing the paper's Table III:
//!
//! | CC  | pattern        | 128 B by a warp | transactions |
//! |-----|----------------|-----------------|--------------|
//! | 1.0 | sequential     | 32 × 4 B        | 2            |
//! | 1.1 | sequential     |                 | 2            |
//! | 1.2 | sequential     |                 | 2            |
//! | 1.3 | sequential     |                 | 2            |
//! | 2.0 | sequential     |                 | 1            |
//! | 1.0 | non-sequential |                 | 32           |
//! | 1.1 | non-sequential |                 | 32           |
//! | 1.2 | non-sequential |                 | 2            |
//! | 1.3 | non-sequential |                 | 2            |
//! | 2.0 | non-sequential |                 | 1            |
//!
//! Rules modeled:
//! * **CC 1.0/1.1** — a *half-warp* (16 threads) coalesces into one
//!   transaction only if thread `i` accesses `base + i·word` with `base`
//!   aligned to `16·word`; otherwise the half-warp serializes into one
//!   transaction per active thread.
//! * **CC 1.2/1.3** — per half-warp, the hardware issues one transaction
//!   per distinct aligned *segment* touched (segment size `32·word`
//!   bytes, i.e. 128 B for 4-byte words), regardless of ordering.
//! * **CC 2.0** — per *full warp*, one transaction per distinct 128-byte
//!   cache line touched.

use crate::device::ComputeCapability;

/// Result of coalescing one warp's access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceSummary {
    /// Number of memory transactions issued.
    pub transactions: u32,
    /// Base byte address of each transaction's segment/line, sorted and
    /// deduplicated — fed to the partition model (§X).
    pub segment_addrs: Vec<u64>,
}

const CACHE_LINE: u64 = 128;
const HALF_WARP: usize = 16;

/// Coalesces the byte addresses issued by the threads of one warp, each
/// reading `word` bytes. `addrs` may contain up to `warp_size` entries;
/// inactive lanes are simply omitted. Duplicate addresses are allowed
/// (broadcast reads).
///
/// # Panics
///
/// Panics if `word` is not a power of two in `1..=16`.
#[must_use]
pub fn warp_transactions(cc: ComputeCapability, addrs: &[u64], word: u64) -> CoalesceSummary {
    assert!(
        word.is_power_of_two() && (1..=16).contains(&word),
        "unsupported word size {word}"
    );
    match cc {
        ComputeCapability::Cc20 => {
            // Whole warp, distinct 128-byte lines (reads are cached).
            let mut lines: Vec<u64> = addrs.iter().map(|a| line_of(*a, CACHE_LINE)).collect();
            lines.sort_unstable();
            lines.dedup();
            CoalesceSummary {
                transactions: lines.len() as u32,
                segment_addrs: lines,
            }
        }
        ComputeCapability::Cc12 | ComputeCapability::Cc13 => {
            // Per half-warp, distinct aligned segments of 32·word bytes.
            let seg = 32 * word;
            let mut all = Vec::new();
            for half in addrs.chunks(HALF_WARP) {
                let mut segs: Vec<u64> = half.iter().map(|a| line_of(*a, seg)).collect();
                segs.sort_unstable();
                segs.dedup();
                all.extend(segs);
            }
            let transactions = all.len() as u32;
            all.sort_unstable();
            all.dedup();
            CoalesceSummary {
                transactions,
                segment_addrs: all,
            }
        }
        ComputeCapability::Cc10 | ComputeCapability::Cc11 => {
            let seg = 16 * word; // one transaction spans a half-warp's worth
            let mut transactions = 0u32;
            let mut segments = Vec::new();
            for half in addrs.chunks(HALF_WARP) {
                if is_strict_sequential(half, word) {
                    transactions += 1;
                    segments.push(line_of(half[0], seg));
                } else {
                    // Serialized: one transaction per active thread.
                    transactions += half.len() as u32;
                    segments.extend(half.iter().map(|a| line_of(*a, seg)));
                }
            }
            segments.sort_unstable();
            segments.dedup();
            CoalesceSummary {
                transactions,
                segment_addrs: segments,
            }
        }
    }
}

/// CC 1.0/1.1 strict rule: thread `i` must access `base + i·word`, with
/// `base` aligned to a half-warp's span.
fn is_strict_sequential(half: &[u64], word: u64) -> bool {
    if half.is_empty() {
        return false;
    }
    let base = half[0];
    if !base.is_multiple_of(u64::from(HALF_WARP as u32) * word) {
        return false;
    }
    half.iter()
        .enumerate()
        .all(|(i, &a)| a == base + i as u64 * word)
}

#[inline]
fn line_of(addr: u64, granule: u64) -> u64 {
    addr / granule * granule
}

/// Builds the sequential warp pattern of Table III: thread `i` reads
/// `base + i·word`.
#[must_use]
pub fn sequential_pattern(base: u64, threads: usize, word: u64) -> Vec<u64> {
    (0..threads as u64).map(|i| base + i * word).collect()
}

/// Builds the non-sequential pattern of Table III: the same 128-byte
/// region, permuted (reversed) so no thread is in-order.
#[must_use]
pub fn nonsequential_pattern(base: u64, threads: usize, word: u64) -> Vec<u64> {
    (0..threads as u64).rev().map(|i| base + i * word).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ComputeCapability as CC;

    /// The full Table III: (cc, sequential?) → transactions for a 32-thread
    /// warp reading 128 bytes as 4-byte words.
    #[test]
    fn table3_reproduced() {
        let cases = [
            (CC::Cc10, true, 2u32),
            (CC::Cc11, true, 2),
            (CC::Cc12, true, 2),
            (CC::Cc13, true, 2),
            (CC::Cc20, true, 1),
            (CC::Cc10, false, 32),
            (CC::Cc11, false, 32),
            (CC::Cc12, false, 2),
            (CC::Cc13, false, 2),
            (CC::Cc20, false, 1),
        ];
        for (cc, seq, expect) in cases {
            let addrs = if seq {
                sequential_pattern(0, 32, 4)
            } else {
                nonsequential_pattern(0, 32, 4)
            };
            let got = warp_transactions(cc, &addrs, 4).transactions;
            assert_eq!(got, expect, "cc {cc} sequential={seq}");
        }
    }

    #[test]
    fn misaligned_sequential_on_cc10_serializes() {
        // Aligned requirement: base not a multiple of 64 ⇒ 16 transactions
        // per half-warp even though the accesses are in order.
        let addrs = sequential_pattern(4, 32, 4);
        assert_eq!(warp_transactions(CC::Cc10, &addrs, 4).transactions, 32);
        // CC 1.2 tolerates it but straddles a segment boundary: the first
        // half-warp touches segments 0 and 128.
        let t12 = warp_transactions(CC::Cc12, &addrs, 4).transactions;
        assert_eq!(t12, 3); // [4,64) seg0 + [64,68) seg... = segs {0,128} in half 1? verified below
    }

    #[test]
    fn scattered_across_segments_worst_case() {
        // Each thread hits its own 128-byte segment: every CC pays one
        // transaction per thread.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        for cc in CC::all() {
            assert_eq!(warp_transactions(cc, &addrs, 4).transactions, 32, "cc {cc}");
        }
    }

    #[test]
    fn broadcast_same_address() {
        // All threads read the same word: 2.0 and 1.2/1.3 collapse to
        // 1 line/2 half-warp segments; 1.0 serializes (not in-order).
        let addrs = vec![256u64; 32];
        assert_eq!(warp_transactions(CC::Cc20, &addrs, 4).transactions, 1);
        assert_eq!(warp_transactions(CC::Cc13, &addrs, 4).transactions, 2);
        assert_eq!(warp_transactions(CC::Cc10, &addrs, 4).transactions, 32);
    }

    #[test]
    fn half_warp_only() {
        // 16 active threads, sequential: one transaction on 1.x, one line
        // on 2.0.
        let addrs = sequential_pattern(0, 16, 4);
        assert_eq!(warp_transactions(CC::Cc10, &addrs, 4).transactions, 1);
        assert_eq!(warp_transactions(CC::Cc13, &addrs, 4).transactions, 1);
        assert_eq!(warp_transactions(CC::Cc20, &addrs, 4).transactions, 1);
    }

    #[test]
    fn segment_addrs_are_partition_ready() {
        let addrs = sequential_pattern(1024, 32, 4);
        let s = warp_transactions(CC::Cc20, &addrs, 4);
        assert_eq!(s.segment_addrs, vec![1024]);
        let s13 = warp_transactions(CC::Cc13, &addrs, 4);
        assert_eq!(s13.segment_addrs, vec![1024]); // both half-warps in one 128B segment
        assert_eq!(s13.transactions, 2); // but one transaction each
    }

    #[test]
    fn byte_sized_words() {
        // 32 threads × 1 byte sequential from 0: CC1.3 segment = 32 B.
        let addrs = sequential_pattern(0, 32, 1);
        let s = warp_transactions(CC::Cc13, &addrs, 1);
        assert_eq!(s.transactions, 2); // two half-warps, one 32B segment each
        let s20 = warp_transactions(CC::Cc20, &addrs, 1);
        assert_eq!(s20.transactions, 1); // one 128 B line
    }

    #[test]
    fn empty_access_is_free() {
        for cc in CC::all() {
            let s = warp_transactions(cc, &[], 4);
            assert_eq!(s.transactions, 0, "cc {cc}");
            assert!(s.segment_addrs.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unsupported word size")]
    fn rejects_bad_word_size() {
        let _ = warp_transactions(CC::Cc20, &[0], 3);
    }

    #[test]
    fn strided_pattern_transaction_growth() {
        // Stride of 2 words: half the density, same segments on 1.2+; on
        // 1.0 it serializes.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 8).collect(); // stride 8B, 4B words
        assert_eq!(warp_transactions(CC::Cc10, &addrs, 4).transactions, 32);
        assert_eq!(warp_transactions(CC::Cc13, &addrs, 4).transactions, 2); // 2 segs per 128B... spans 256B → 2 segs, 1 per half-warp? verify: half 1 spans [0,128) = seg 0 → 1; half 2 spans [128,256) = seg 1 → 1. Total 2.
        assert_eq!(warp_transactions(CC::Cc20, &addrs, 4).transactions, 2); // 2 lines
    }
}
