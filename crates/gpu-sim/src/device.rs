//! Device specifications — the paper's Table I plus documented timing
//! constants.
//!
//! | Model | Cores | Global (GB) | Shared (KB) | Banks | CC  |
//! |-------|-------|-------------|-------------|-------|-----|
//! | C1060 | 240   | 4           | 16          | 16    | 1.3 |
//! | C2050 | 448   | 3           | 48          | 32    | 2.0 |
//! | C2070 | 448   | 6           | 48          | 32    | 2.0 |
//!
//! Beyond Table I, the cost model needs per-device constants (latencies,
//! service rates, clocks). They are taken from the vendor programming
//! guide figures of the period and are *documented calibration inputs*,
//! recorded in EXPERIMENTS.md — the reproduction targets the paper's
//! relative bands, not absolute silicon timings.

/// CUDA compute capability, which selects the coalescing rules (§IX,
/// Table III) and whether global reads are cached (§X: "for devices of
/// compute capability 2.x or higher, the effect of partition camping is
/// taken care of by cached memory reads").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComputeCapability {
    /// CC 1.0 — strict in-order coalescing, no segment hardware.
    Cc10,
    /// CC 1.1 — same coalescing behaviour as 1.0.
    Cc11,
    /// CC 1.2 — segment-based coalescing (any pattern within a segment).
    Cc12,
    /// CC 1.3 — as 1.2 (the C1060).
    Cc13,
    /// CC 2.0 — cached 128-byte lines per full warp (the C2050/C2070).
    Cc20,
}

impl ComputeCapability {
    /// Human-readable version string ("1.3" etc.).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            ComputeCapability::Cc10 => "1.0",
            ComputeCapability::Cc11 => "1.1",
            ComputeCapability::Cc12 => "1.2",
            ComputeCapability::Cc13 => "1.3",
            ComputeCapability::Cc20 => "2.0",
        }
    }

    /// Whether global memory reads go through an L1/L2 cache (2.x).
    #[must_use]
    pub fn has_cached_global(&self) -> bool {
        matches!(self, ComputeCapability::Cc20)
    }

    /// All modeled capabilities, in Table III row order.
    #[must_use]
    pub fn all() -> [ComputeCapability; 5] {
        [
            ComputeCapability::Cc10,
            ComputeCapability::Cc11,
            ComputeCapability::Cc12,
            ComputeCapability::Cc13,
            ComputeCapability::Cc20,
        ]
    }
}

impl std::fmt::Display for ComputeCapability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Full parameter set of a modeled device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name ("C1060", …).
    pub name: &'static str,
    /// Total scalar cores (Table I "Cores #").
    pub cores: u32,
    /// Streaming multiprocessors; `cores / sp_per_sm`.
    pub sm_count: u32,
    /// Scalar processors per SM (8 on GT200, 32 on Fermi).
    pub sp_per_sm: u32,
    /// Global memory in bytes (Table I "Global Mem.").
    pub global_mem_bytes: u64,
    /// Shared memory per SM in bytes (Table I "Sh. Mem.").
    pub shared_mem_bytes: u64,
    /// Shared memory banks (Table I "# of Mem. Banks").
    pub shared_banks: u32,
    /// Compute capability (Table I "Comp. Cap.").
    pub compute_capability: ComputeCapability,
    /// Global memory partitions (§X: "6 (or 8) partitions on 8- and
    /// 9-series GPUs (or 200- and 10-series GPUs) of 256-byte width").
    pub partitions: u32,
    /// Partition width in bytes (256 per §X).
    pub partition_width: u64,
    /// Threads per warp.
    pub warp_size: u32,
    /// Core clock in Hz — converts cycles to seconds.
    pub clock_hz: u64,
    /// Global memory round-trip latency in core cycles.
    pub global_latency_cycles: u64,
    /// Cycles a partition needs to service one transaction (pipelined
    /// throughput term, distinct from the one-off latency above).
    pub transaction_service_cycles: u64,
    /// Shared memory access latency in cycles (conflict-free).
    pub shared_latency_cycles: u64,
    /// PCIe bandwidth host→device in bytes/second.
    pub pcie_bandwidth: u64,
    /// Fixed per-transfer PCIe + driver latency in seconds.
    pub pcie_latency_s: f64,
    /// Fixed kernel-launch overhead in seconds.
    pub kernel_launch_s: f64,
}

impl DeviceSpec {
    /// Tesla C1060 — the card the paper's experiments ran on (§XI).
    #[must_use]
    pub fn c1060() -> Self {
        Self {
            name: "C1060",
            cores: 240,
            sm_count: 30,
            sp_per_sm: 8,
            global_mem_bytes: 4 * GIB,
            shared_mem_bytes: 16 * KIB,
            shared_banks: 16,
            compute_capability: ComputeCapability::Cc13,
            partitions: 8,
            partition_width: 256,
            warp_size: 32,
            clock_hz: 1_296_000_000,
            global_latency_cycles: 550,
            transaction_service_cycles: 36,
            shared_latency_cycles: 24,
            pcie_bandwidth: 5_500_000_000,
            pcie_latency_s: 15e-6,
            kernel_launch_s: 8e-6,
        }
    }

    /// Tesla C2050 (Fermi, 3 GB).
    #[must_use]
    pub fn c2050() -> Self {
        Self {
            name: "C2050",
            cores: 448,
            sm_count: 14,
            sp_per_sm: 32,
            global_mem_bytes: 3 * GIB,
            shared_mem_bytes: 48 * KIB,
            shared_banks: 32,
            compute_capability: ComputeCapability::Cc20,
            partitions: 6,
            partition_width: 256,
            warp_size: 32,
            clock_hz: 1_150_000_000,
            global_latency_cycles: 450,
            transaction_service_cycles: 24,
            shared_latency_cycles: 28,
            pcie_bandwidth: 5_900_000_000,
            pcie_latency_s: 12e-6,
            kernel_launch_s: 6e-6,
        }
    }

    /// Tesla C2070 (Fermi, 6 GB).
    #[must_use]
    pub fn c2070() -> Self {
        Self {
            global_mem_bytes: 6 * GIB,
            name: "C2070",
            ..Self::c2050()
        }
    }

    /// All Table I devices, in row order.
    #[must_use]
    pub fn table1() -> Vec<DeviceSpec> {
        vec![Self::c1060(), Self::c2050(), Self::c2070()]
    }

    /// Global memory size in bits — the `Smem` of the §IV capacity
    /// equations.
    #[must_use]
    pub fn global_mem_bits(&self) -> u128 {
        u128::from(self.global_mem_bytes) * 8
    }

    /// Shared memory size in bits (per SM) — the `SSM` of §V.
    #[must_use]
    pub fn shared_mem_bits(&self) -> u128 {
        u128::from(self.shared_mem_bytes) * 8
    }

    /// Converts core cycles to seconds on this device.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Cycles a warp needs to issue one arithmetic instruction for all its
    /// threads: `warp_size / sp_per_sm` (4 on GT200, 1 on Fermi).
    #[must_use]
    pub fn warp_issue_cycles(&self) -> u64 {
        u64::from(self.warp_size / self.sp_per_sm).max(1)
    }
}

/// 1 KiB.
pub const KIB: u64 = 1024;
/// 1 GiB.
pub const GIB: u64 = 1024 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let t = DeviceSpec::table1();
        assert_eq!(t.len(), 3);
        let c1060 = &t[0];
        assert_eq!(c1060.cores, 240);
        assert_eq!(c1060.global_mem_bytes, 4 * GIB);
        assert_eq!(c1060.shared_mem_bytes, 16 * KIB);
        assert_eq!(c1060.shared_banks, 16);
        assert_eq!(c1060.compute_capability, ComputeCapability::Cc13);

        let c2050 = &t[1];
        assert_eq!(c2050.cores, 448);
        assert_eq!(c2050.global_mem_bytes, 3 * GIB);
        assert_eq!(c2050.shared_mem_bytes, 48 * KIB);
        assert_eq!(c2050.shared_banks, 32);
        assert_eq!(c2050.compute_capability, ComputeCapability::Cc20);

        let c2070 = &t[2];
        assert_eq!(c2070.global_mem_bytes, 6 * GIB);
        // C2070 differs from C2050 only in memory size.
        assert_eq!(c2070.cores, c2050.cores);
        assert_eq!(c2070.shared_banks, c2050.shared_banks);
    }

    #[test]
    fn sm_decomposition_consistent() {
        for d in DeviceSpec::table1() {
            assert_eq!(d.sm_count * d.sp_per_sm, d.cores, "{}", d.name);
        }
    }

    #[test]
    fn warp_issue_cycles_per_arch() {
        assert_eq!(DeviceSpec::c1060().warp_issue_cycles(), 4);
        assert_eq!(DeviceSpec::c2050().warp_issue_cycles(), 1);
    }

    #[test]
    fn cycle_conversion() {
        let d = DeviceSpec::c1060();
        let s = d.cycles_to_seconds(d.clock_hz);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(d.cycles_to_seconds(0), 0.0);
    }

    #[test]
    fn capability_strings_and_cache_flag() {
        assert_eq!(ComputeCapability::Cc13.to_string(), "1.3");
        assert!(!ComputeCapability::Cc13.has_cached_global());
        assert!(ComputeCapability::Cc20.has_cached_global());
        assert_eq!(ComputeCapability::all().len(), 5);
    }

    #[test]
    fn memory_bit_sizes() {
        let d = DeviceSpec::c1060();
        assert_eq!(d.global_mem_bits(), 4 * 1024 * 1024 * 1024 * 8);
        assert_eq!(d.shared_mem_bits(), 16 * 1024 * 8);
    }
}
