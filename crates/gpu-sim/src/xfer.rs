//! Host ↔ device transfer model.
//!
//! §XI observes that "for smaller size graphs, due to overhead in
//! transferring data from the host … to the device …, the timings are
//! almost similar" between CPU and GPU — the crossover at the left edge of
//! Fig. 10. The model is the usual affine one: a fixed latency (PCIe +
//! driver) plus bytes over sustained bandwidth.

use crate::device::DeviceSpec;

/// Affine transfer-cost model derived from a device spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Fixed per-transfer cost in seconds.
    pub latency_s: f64,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: u64,
}

impl TransferModel {
    /// Extracts the transfer model from a device spec.
    #[must_use]
    pub fn from_spec(spec: &DeviceSpec) -> Self {
        Self {
            latency_s: spec.pcie_latency_s,
            bandwidth: spec.pcie_bandwidth,
        }
    }

    /// Seconds to move `bytes` in one transfer.
    #[must_use]
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth as f64
    }

    /// Seconds for `n` separate transfers of `bytes` each (each pays the
    /// fixed latency — why Algorithm 1's splitting batches its chunk
    /// uploads).
    #[must_use]
    pub fn batched_seconds(&self, n: u64, bytes: u64) -> f64 {
        n as f64 * self.transfer_seconds(bytes)
    }

    /// A 10 Gb/s Ethernet-class inter-node link: kernel-bypass-free
    /// stacks of the paper's era paid ~50 µs per message and ~1.25 GB/s
    /// sustained. The commodity-cluster tier of the two-tier network
    /// model.
    #[must_use]
    pub fn ethernet_10g() -> Self {
        Self {
            latency_s: 50e-6,
            bandwidth: 1_250_000_000,
        }
    }

    /// A QDR InfiniBand-class inter-node link (4×QDR, 32 Gb/s data
    /// rate): ~1.3 µs end-to-end latency, ~4 GB/s sustained. The HPC
    /// interconnect tier contemporary with Table I's Tesla parts.
    #[must_use]
    pub fn infiniband_qdr() -> Self {
        Self {
            latency_s: 1.3e-6,
            bandwidth: 4_000_000_000,
        }
    }

    /// An NVLink-class intra-node link (~1 µs, 25 GB/s per direction) —
    /// the fast end of the NVLink/PCIe intra-node tier, for rosters
    /// modeled beyond the PCIe parts of Table I.
    #[must_use]
    pub fn nvlink() -> Self {
        Self {
            latency_s: 1e-6,
            bandwidth: 25_000_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn zero_bytes_costs_latency() {
        let m = TransferModel::from_spec(&DeviceSpec::c1060());
        assert!((m.transfer_seconds(0) - m.latency_s).abs() < 1e-15);
    }

    #[test]
    fn affine_in_bytes() {
        let m = TransferModel {
            latency_s: 1e-5,
            bandwidth: 1_000_000_000,
        };
        let t1 = m.transfer_seconds(1_000_000);
        let t2 = m.transfer_seconds(2_000_000);
        assert!(((t2 - m.latency_s) - 2.0 * (t1 - m.latency_s)).abs() < 1e-12);
        assert!((t1 - (1e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn one_big_transfer_beats_many_small() {
        let m = TransferModel::from_spec(&DeviceSpec::c1060());
        let whole = m.transfer_seconds(1 << 20);
        let split = m.batched_seconds(64, (1 << 20) / 64);
        assert!(whole < split);
        // The gap is exactly 63 extra latencies.
        assert!(((split - whole) - 63.0 * m.latency_s).abs() < 1e-9);
    }

    #[test]
    fn link_classes_order_by_tier() {
        // NVLink < IB < Ethernet on a 1 MiB payload, and the fabric
        // tiers pay their class latencies even for empty messages.
        let nv = TransferModel::nvlink();
        let ib = TransferModel::infiniband_qdr();
        let eth = TransferModel::ethernet_10g();
        let b = 1u64 << 20;
        assert!(nv.transfer_seconds(b) < ib.transfer_seconds(b));
        assert!(ib.transfer_seconds(b) < eth.transfer_seconds(b));
        assert!(eth.transfer_seconds(0) > 10.0 * ib.transfer_seconds(0));
    }

    #[test]
    fn fermi_is_slightly_faster() {
        let a = TransferModel::from_spec(&DeviceSpec::c1060());
        let b = TransferModel::from_spec(&DeviceSpec::c2050());
        assert!(b.transfer_seconds(1 << 26) < a.transfer_seconds(1 << 26));
    }
}
