//! Warp access traces: record a kernel's memory behaviour, replay it
//! against any device, and summarize coalescing efficiency.
//!
//! This is the analysis tool behind statements like the paper's §IX
//! "organize the data so that κ (total global accesses) is minimized":
//! capture once, replay under every compute capability, compare the
//! transaction totals.

use crate::coalesce::warp_transactions;
use crate::device::{ComputeCapability, DeviceSpec};
use crate::partition::PartitionTraffic;

/// One recorded warp access: the byte addresses its lanes issued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpAccess {
    /// Lane byte addresses (≤ warp size entries).
    pub addrs: Vec<u64>,
    /// Word size in bytes.
    pub word: u64,
}

/// A sequence of warp accesses.
#[derive(Debug, Clone, Default)]
pub struct AccessTrace {
    accesses: Vec<WarpAccess>,
}

/// Replay summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySummary {
    /// Total transactions under the replayed capability.
    pub transactions: u64,
    /// Lane-accesses replayed (Σ active lanes).
    pub lane_accesses: u64,
    /// Transactions per lane-access: 1/32 ≈ perfect coalescing for full
    /// warps, 1.0 = fully serialized.
    pub transactions_per_access: f64,
    /// Partition histogram of the whole trace.
    pub traffic: PartitionTraffic,
}

impl AccessTrace {
    /// Empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one warp access.
    pub fn record(&mut self, addrs: Vec<u64>, word: u64) {
        self.accesses.push(WarpAccess { addrs, word });
    }

    /// Number of warp accesses recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Replays the trace under `cc`, accumulating partition traffic on
    /// `spec`'s geometry.
    #[must_use]
    pub fn replay(&self, cc: ComputeCapability, spec: &DeviceSpec) -> ReplaySummary {
        let mut transactions = 0u64;
        let mut lane_accesses = 0u64;
        let mut traffic = PartitionTraffic::new(spec);
        for a in &self.accesses {
            let s = warp_transactions(cc, &a.addrs, a.word);
            transactions += u64::from(s.transactions);
            lane_accesses += a.addrs.len() as u64;
            traffic.record_all(&s.segment_addrs);
        }
        ReplaySummary {
            transactions,
            lane_accesses,
            transactions_per_access: if lane_accesses == 0 {
                0.0
            } else {
                transactions as f64 / lane_accesses as f64
            },
            traffic,
        }
    }

    /// Replays under every modeled compute capability — the Table III
    /// experiment for an arbitrary workload.
    #[must_use]
    pub fn replay_all(&self, spec: &DeviceSpec) -> Vec<(ComputeCapability, u64)> {
        ComputeCapability::all()
            .into_iter()
            .map(|cc| (cc, self.replay(cc, spec).transactions))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::{nonsequential_pattern, sequential_pattern};
    use crate::device::DeviceSpec;

    fn spec() -> DeviceSpec {
        DeviceSpec::c1060()
    }

    #[test]
    fn replay_matches_direct_coalescing() {
        let mut t = AccessTrace::new();
        t.record(sequential_pattern(0, 32, 4), 4);
        t.record(nonsequential_pattern(4096, 32, 4), 4);
        let r = t.replay(ComputeCapability::Cc13, &spec());
        assert_eq!(r.transactions, 2 + 2);
        assert_eq!(r.lane_accesses, 64);
        let r10 = t.replay(ComputeCapability::Cc10, &spec());
        assert_eq!(r10.transactions, 2 + 32);
    }

    #[test]
    fn replay_all_is_monotone_in_capability() {
        // Newer capabilities never need more transactions for the same
        // trace.
        let mut t = AccessTrace::new();
        for i in 0..16u64 {
            t.record(sequential_pattern(i * 512 + 4, 32, 4), 4);
            t.record(nonsequential_pattern(i * 131, 32, 4), 4);
        }
        let table = t.replay_all(&spec());
        for w in table.windows(2) {
            assert!(
                w[1].1 <= w[0].1,
                "{} needs more transactions than {}",
                w[1].0,
                w[0].0
            );
        }
    }

    #[test]
    fn transactions_per_access_bounds() {
        let mut perfect = AccessTrace::new();
        perfect.record(sequential_pattern(0, 32, 4), 4);
        let r = perfect.replay(ComputeCapability::Cc20, &spec());
        assert!((r.transactions_per_access - 1.0 / 32.0).abs() < 1e-12);

        let mut awful = AccessTrace::new();
        awful.record((0..32u64).map(|i| i * 4096).collect(), 4);
        let r2 = awful.replay(ComputeCapability::Cc20, &spec());
        assert!((r2.transactions_per_access - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_accumulates_across_accesses() {
        let mut t = AccessTrace::new();
        t.record(vec![0], 4);
        t.record(vec![256], 4);
        t.record(vec![256 * 8], 4); // wraps to partition 0
        let r = t.replay(ComputeCapability::Cc20, &spec());
        assert_eq!(r.traffic.counts()[0], 2);
        assert_eq!(r.traffic.counts()[1], 1);
    }

    #[test]
    fn empty_trace() {
        let t = AccessTrace::new();
        assert!(t.is_empty());
        let r = t.replay(ComputeCapability::Cc13, &spec());
        assert_eq!(r.transactions, 0);
        assert_eq!(r.transactions_per_access, 0.0);
    }
}
