//! # trigon-gpu-sim
//!
//! A deterministic cost-model simulator of the GPU memory hierarchy that
//! *On Analyzing Large Graphs Using GPUs* (IPDPSW 2013) optimizes against.
//! No GPU hardware is required: the simulator reproduces, from first
//! principles, exactly the quantities the paper's primitives act on —
//!
//! * **memory transactions** per warp access under the coalescing rules of
//!   each compute capability ([`coalesce`], Table III of the paper);
//! * **partition queueing** in global memory, the "partition camping"
//!   effect of §X ([`partition`], Eqs. 10–11);
//! * **bank conflicts** in shared memory ([`shared`], Eq. 9);
//! * **SM/block dispatch** and makespan-style kernel timing ([`kernel`],
//!   §V–VI);
//! * **host↔device transfer** over PCIe ([`xfer`]), which dominates small
//!   inputs in Fig. 10.
//!
//! Device parameters ([`device`]) carry the paper's Table I architecture
//! comparison (C1060 / C2050 / C2070) plus documented timing constants;
//! all accounting is in integer cycles, so identical inputs give identical
//! simulated timings on any host.
//!
//! What this is *not*: a functional ISA emulator. The workload (triangle
//! counting in `trigon-core`) executes natively in Rust; this crate prices
//! the memory traffic and compute that execution would generate on the
//! modeled device.

#![deny(missing_docs)]

pub mod coalesce;
pub mod device;
pub mod emit;
pub mod faults;
pub mod kernel;
pub mod occupancy;
pub mod partition;
pub mod profile;
pub mod shared;
pub mod trace;
pub mod viz;
pub mod xfer;

pub use coalesce::{warp_transactions, CoalesceSummary};
pub use device::{ComputeCapability, DeviceSpec};
pub use emit::{emit_kernel_timing, emit_traffic, emit_transfer, sm_utilization};
pub use emit::{trace_transfer, trace_transfer_labeled};
pub use faults::{FaultConfig, FaultEvent, FaultOutcome, FaultPlan, FaultSpec};
pub use kernel::{BlockCost, KernelSim, KernelTiming};
pub use occupancy::{occupancy, KernelResources, Occupancy, SmLimits};
pub use partition::{camping_cycles, PartitionTraffic};
pub use profile::{
    CounterSet, DeviceProfile, ProfileData, RooflinePoint, BYTES_PER_TRANSACTION,
    INSTRUCTIONS_PER_INTERSECT_OP, INSTRUCTIONS_PER_TEST,
};
pub use shared::{bank_conflict_degree, shared_access_cycles};
pub use trace::{AccessTrace, ReplaySummary, WarpAccess};
pub use viz::{render_partition_histogram, render_sm_timeline};
pub use xfer::TransferModel;
