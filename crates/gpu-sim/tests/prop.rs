//! Property tests for the GPU memory-model simulator.

use proptest::prelude::*;
use trigon_gpu_sim::{
    bank_conflict_degree, camping_cycles, warp_transactions, ComputeCapability, DeviceSpec,
    PartitionTraffic,
};

fn arb_addrs() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, 1..=32).prop_map(|mut v| {
        // Word-align to the 4-byte accesses the kernels issue.
        for a in &mut v {
            *a &= !3;
        }
        v
    })
}

proptest! {
    /// Transaction counts are bounded: between 1 and the lane count, and
    /// newer capabilities never require more transactions.
    #[test]
    fn coalescing_bounds_and_monotonicity(addrs in arb_addrs()) {
        let mut prev: Option<u32> = None;
        for cc in ComputeCapability::all() {
            let t = warp_transactions(cc, &addrs, 4).transactions;
            prop_assert!(t >= 1);
            prop_assert!(t as usize <= addrs.len().max(2), "cc {cc}: {t} for {} lanes", addrs.len());
            if let Some(p) = prev {
                prop_assert!(t <= p, "cc {cc} regressed: {t} > {p}");
            }
            prev = Some(t);
        }
    }

    /// Segment addresses returned by coalescing cover every lane address.
    #[test]
    fn segments_cover_addresses(addrs in arb_addrs()) {
        for cc in [ComputeCapability::Cc13, ComputeCapability::Cc20] {
            let s = warp_transactions(cc, &addrs, 4);
            for &a in &addrs {
                prop_assert!(
                    s.segment_addrs.iter().any(|&seg| seg <= a && a < seg + 128),
                    "address {a} uncovered under {cc}"
                );
            }
        }
    }

    /// Bank conflict degree is within [1, lanes] and never exceeds the
    /// distinct-word count.
    #[test]
    fn bank_conflicts_bounded(addrs in arb_addrs(), banks in prop_oneof![Just(16u32), Just(32u32)]) {
        let d = bank_conflict_degree(&addrs, banks);
        prop_assert!(d >= 1);
        let distinct_words: std::collections::BTreeSet<u64> =
            addrs.iter().map(|a| a / 4).collect();
        prop_assert!(d as usize <= distinct_words.len());
    }

    /// Partition accounting: camping cycles shrink or stay equal when the
    /// same transactions are spread round-robin instead of concentrated.
    #[test]
    fn spreading_never_hurts(count in 1u64..200) {
        let spec = DeviceSpec::c1060();
        let mut camped = PartitionTraffic::new(&spec);
        for _ in 0..count {
            camped.record(0);
        }
        let mut spread = PartitionTraffic::new(&spec);
        for i in 0..count {
            spread.record((i % u64::from(spec.partitions)) * spec.partition_width);
        }
        prop_assert!(camping_cycles(&spread, &spec) <= camping_cycles(&camped, &spec));
        prop_assert!(spread.camping_factor() <= camped.camping_factor() + 1e-12);
        prop_assert_eq!(spread.total(), camped.total());
    }

    /// Camping factor is always within [1, partitions].
    #[test]
    fn camping_factor_bounds(addrs in proptest::collection::vec(0u64..100_000, 1..100)) {
        let spec = DeviceSpec::c1060();
        let mut t = PartitionTraffic::new(&spec);
        for a in addrs {
            t.record(a);
        }
        let f = t.camping_factor();
        prop_assert!(f >= 1.0 - 1e-12);
        prop_assert!(f <= f64::from(spec.partitions) + 1e-12);
    }
}
