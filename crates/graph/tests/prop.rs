//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use trigon_graph::storage::AdjacencyStorage;
use trigon_graph::{bfs::BfsTree, connected_components, gen, graph::Graph, triangles};

/// Strategy: a random simple graph as (n, edge list).
fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges are valid")
        })
    })
}

proptest! {
    /// All four CPU triangle counters agree on arbitrary graphs.
    #[test]
    fn counters_agree(g in arb_graph(60)) {
        let brute = triangles::count_brute_force(&g);
        prop_assert_eq!(triangles::count_matrix(&g.to_bitmatrix()), brute);
        prop_assert_eq!(triangles::count_edge_iterator(&g), brute);
        prop_assert_eq!(triangles::count_forward(&g), brute);
    }

    /// Every storage model answers every edge query identically.
    #[test]
    fn storages_agree(g in arb_graph(50)) {
        let bm = g.to_bitmatrix();
        let utm = g.to_utm();
        let sutm = g.to_sutm();
        let csr = g.csr();
        for u in 0..g.n() {
            for v in 0..g.n() {
                let e = g.has_edge(u, v);
                prop_assert_eq!(bm.has_edge(u, v), e);
                prop_assert_eq!(utm.has_edge(u, v), e);
                prop_assert_eq!(sutm.has_edge(u, v), e);
                prop_assert_eq!(csr.has_edge(u, v), e);
            }
        }
    }

    /// BFS levels: root at 0, parents one level up, every edge spans ≤ 1
    /// level — the invariant Algorithm 2's completeness rests on.
    #[test]
    fn bfs_invariants(g in arb_graph(50), root_raw in any::<u32>()) {
        let root = root_raw % g.n();
        let t = BfsTree::new(&g, root);
        prop_assert_eq!(t.level_of(root), Some(0));
        prop_assert_eq!(t.check_level_adjacency(&g), None);
        for v in 0..g.n() {
            if let Some(p) = t.parent_of(v) {
                prop_assert!(g.has_edge(p, v));
                prop_assert_eq!(t.level_of(p).unwrap() + 1, t.level_of(v).unwrap());
            }
        }
    }

    /// Components partition V and never split an edge.
    #[test]
    fn components_partition(g in arb_graph(50)) {
        let cc = connected_components(&g);
        let mut all: Vec<u32> = cc.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..g.n()).collect::<Vec<_>>());
        let mut owner = vec![usize::MAX; g.n() as usize];
        for (i, members) in cc.iter().enumerate() {
            for &v in members {
                owner[v as usize] = i;
            }
        }
        for (u, v) in g.edges() {
            prop_assert_eq!(owner[u as usize], owner[v as usize]);
        }
    }

    /// Local triangle counts sum to 3ϑ and clustering coefficients stay in
    /// [0, 1].
    #[test]
    fn local_count_identities(g in arb_graph(40)) {
        let total = triangles::count_edge_iterator(&g);
        let local = triangles::local_counts(&g);
        prop_assert_eq!(local.iter().sum::<u64>(), 3 * total);
        for c in triangles::clustering_coefficients(&g) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        }
    }

    /// Generators are deterministic in their seed.
    #[test]
    fn generators_deterministic(seed in any::<u64>()) {
        prop_assert_eq!(gen::gnp(40, 0.1, seed), gen::gnp(40, 0.1, seed));
        prop_assert_eq!(
            gen::barabasi_albert(40, 3, seed),
            gen::barabasi_albert(40, 3, seed)
        );
    }

    /// Edge-list IO round-trips structure for any graph.
    #[test]
    fn io_roundtrip(g in arb_graph(40)) {
        let mut buf = Vec::new();
        trigon_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let (g2, back) = trigon_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g2.m(), g.m());
        let orig: std::collections::BTreeSet<(u32, u32)> = g.edges().collect();
        let got: std::collections::BTreeSet<(u32, u32)> = g2
            .edges()
            .map(|(u, v)| {
                let (a, b) = (back[u as usize] as u32, back[v as usize] as u32);
                (a.min(b), a.max(b))
            })
            .collect();
        prop_assert_eq!(got, orig);
    }
}
