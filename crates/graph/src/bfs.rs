//! Breadth-first search trees and level sets.
//!
//! Both of the paper's algorithms are driven by BFS structure: Algorithm 1
//! splits a component "into sets of consecutive level nodes using
//! Breadth-first search property", and Algorithm 2 counts triangles per
//! adjacent level set. The property that makes this *correct* is the
//! classic BFS invariant, exposed here as
//! [`BfsTree::check_level_adjacency`]: **every edge of the graph connects
//! vertices in the same or adjacent BFS levels**, hence any triangle lies
//! within at most two consecutive levels.

use crate::graph::Graph;
use std::collections::VecDeque;

/// A BFS tree of one connected component, rooted at `root`.
#[derive(Debug, Clone)]
pub struct BfsTree {
    root: u32,
    /// `parent[v]` for every visited v except the root.
    parent: Vec<Option<u32>>,
    /// `level[v]`, or `u32::MAX` for vertices outside the component.
    level: Vec<u32>,
    /// Vertices grouped by level, each level sorted ascending.
    levels: Vec<Vec<u32>>,
}

impl BfsTree {
    /// Runs BFS on `g` from `root`, visiting exactly the connected
    /// component of `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root ≥ g.n()`.
    #[must_use]
    pub fn new(g: &Graph, root: u32) -> Self {
        assert!(root < g.n(), "root {root} out of range");
        let n = g.n() as usize;
        let mut parent = vec![None; n];
        let mut level = vec![u32::MAX; n];
        let mut levels: Vec<Vec<u32>> = Vec::new();
        let mut q = VecDeque::new();
        level[root as usize] = 0;
        q.push_back(root);
        levels.push(vec![root]);
        while let Some(u) = q.pop_front() {
            let lu = level[u as usize];
            for &v in g.neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = lu + 1;
                    parent[v as usize] = Some(u);
                    if levels.len() as u32 <= lu + 1 {
                        levels.push(Vec::new());
                    }
                    levels[(lu + 1) as usize].push(v);
                    q.push_back(v);
                }
            }
        }
        // Neighbor lists are sorted, but discovery interleaves parents;
        // sort each level for deterministic downstream layouts.
        for l in &mut levels {
            l.sort_unstable();
        }
        Self {
            root,
            parent,
            level,
            levels,
        }
    }

    /// The BFS root.
    #[must_use]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Depth of the tree = number of levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Vertices at `level` (sorted), or an empty slice past the depth.
    #[must_use]
    pub fn level_set(&self, level: usize) -> &[u32] {
        self.levels.get(level).map_or(&[], Vec::as_slice)
    }

    /// All level sets.
    #[must_use]
    pub fn levels(&self) -> &[Vec<u32>] {
        &self.levels
    }

    /// Level of `v`, or `None` if `v` is outside the root's component.
    #[must_use]
    pub fn level_of(&self, v: u32) -> Option<u32> {
        let l = self.level[v as usize];
        (l != u32::MAX).then_some(l)
    }

    /// BFS parent of `v` (`None` for the root and unreached vertices).
    #[must_use]
    pub fn parent_of(&self, v: u32) -> Option<u32> {
        self.parent[v as usize]
    }

    /// Number of vertices reached (component size).
    #[must_use]
    pub fn component_size(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Verifies the BFS level-adjacency invariant on `g`: every edge with
    /// both endpoints in this component joins levels differing by at most
    /// one. Returns the violating edge if any (always `None` for a correct
    /// BFS — exercised heavily in tests because Algorithm 2's completeness
    /// depends on it).
    #[must_use]
    pub fn check_level_adjacency(&self, g: &Graph) -> Option<(u32, u32)> {
        for (u, v) in g.edges() {
            if let (Some(lu), Some(lv)) = (self.level_of(u), self.level_of(v)) {
                if lu.abs_diff(lv) > 1 {
                    return Some((u, v));
                }
            }
        }
        None
    }
}

/// O(1) BFS-placement queries over a whole graph: for every vertex, the
/// connected component it belongs to, its BFS level within that
/// component's tree, and its rank inside the (ascending-sorted) level
/// set.
///
/// This is the support structure behind ALS membership tests: "is `v`
/// in level `l` of component `c`?" and "what is `v`'s position within
/// its level?" are both array lookups, replacing the per-probe
/// `binary_search` the triangle-counting hot loop used to pay. One map
/// is shared by every ALS of a graph, so the memory cost is `O(n)`
/// total, not per ALS.
#[derive(Debug, Clone)]
pub struct LevelMap {
    /// Component id per vertex (`u32::MAX` = not recorded yet).
    component: Vec<u32>,
    /// BFS level per vertex (`u32::MAX` = not recorded yet).
    level: Vec<u32>,
    /// Rank of the vertex inside its sorted level set.
    rank: Vec<u32>,
}

impl LevelMap {
    /// An empty map for a graph with `n` vertices.
    #[must_use]
    pub fn new(n: u32) -> Self {
        let n = n as usize;
        Self {
            component: vec![u32::MAX; n],
            level: vec![u32::MAX; n],
            rank: vec![0; n],
        }
    }

    /// Records every vertex of `tree` (one component) under component id
    /// `component`. Levels and ranks follow the tree's sorted level
    /// sets, the same order ALS construction uses.
    pub fn record_tree(&mut self, tree: &BfsTree, component: u32) {
        for (lvl, verts) in tree.levels().iter().enumerate() {
            for (r, &v) in verts.iter().enumerate() {
                self.component[v as usize] = component;
                self.level[v as usize] = lvl as u32;
                self.rank[v as usize] = r as u32;
            }
        }
    }

    /// Builds the map for all of `g`: one BFS tree per component, rooted
    /// at the component's smallest vertex (the `build_als` convention).
    #[must_use]
    pub fn from_graph(g: &Graph) -> Self {
        let mut map = Self::new(g.n());
        for (ci, comp) in crate::components::connected_components(g)
            .iter()
            .enumerate()
        {
            let tree = BfsTree::new(g, comp[0]);
            map.record_tree(&tree, ci as u32);
        }
        map
    }

    /// Component id of `v`, or `None` if `v` was never recorded.
    #[inline]
    #[must_use]
    pub fn component_of(&self, v: u32) -> Option<u32> {
        let c = self.component[v as usize];
        (c != u32::MAX).then_some(c)
    }

    /// BFS level of `v` within its component, or `None` if unrecorded.
    #[inline]
    #[must_use]
    pub fn level_of(&self, v: u32) -> Option<u32> {
        let l = self.level[v as usize];
        (l != u32::MAX).then_some(l)
    }

    /// Rank of `v` inside its sorted level set (meaningless for
    /// unrecorded vertices).
    #[inline]
    #[must_use]
    pub fn rank_of(&self, v: u32) -> u32 {
        self.rank[v as usize]
    }

    /// True iff `v` sits at `level` of `component` — the O(1) membership
    /// probe ALS window tests compile down to.
    #[inline]
    #[must_use]
    pub fn is_at(&self, v: u32, component: u32, level: u32) -> bool {
        self.component[v as usize] == component && self.level[v as usize] == level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_graph_levels() {
        let g = gen::path(5);
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.depth(), 5);
        for v in 0..5 {
            assert_eq!(t.level_of(v), Some(v));
        }
        assert_eq!(t.parent_of(0), None);
        assert_eq!(t.parent_of(3), Some(2));
    }

    #[test]
    fn star_graph_two_levels() {
        let g = gen::star(6); // center 0 + 5 leaves
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.level_set(0), &[0]);
        assert_eq!(t.level_set(1), &[1, 2, 3, 4, 5]);
        // Rooted at a leaf: three levels (leaf, center, other leaves).
        let t2 = BfsTree::new(&g, 3);
        assert_eq!(t2.depth(), 3);
        assert_eq!(t2.level_set(1), &[0]);
        assert_eq!(t2.level_set(2), &[1, 2, 4, 5]);
    }

    #[test]
    fn component_restriction() {
        // Two disjoint triangles.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.component_size(), 3);
        assert_eq!(t.level_of(4), None);
        assert_eq!(t.parent_of(4), None);
    }

    #[test]
    fn level_adjacency_invariant_holds() {
        for seed in 0..5u64 {
            let g = gen::gnp(80, 0.08, seed);
            for root in [0u32, 17, 79] {
                let t = BfsTree::new(&g, root);
                assert_eq!(t.check_level_adjacency(&g), None, "seed {seed} root {root}");
            }
        }
    }

    #[test]
    fn level_sets_partition_component() {
        let g = gen::gnp(60, 0.1, 3);
        let t = BfsTree::new(&g, 0);
        let mut seen = std::collections::BTreeSet::new();
        for (i, lvl) in t.levels().iter().enumerate() {
            assert!(!lvl.is_empty(), "level {i} empty");
            assert!(lvl.windows(2).all(|w| w[0] < w[1]), "level sorted");
            for &v in lvl {
                assert!(seen.insert(v), "vertex {v} in two levels");
                assert_eq!(t.level_of(v), Some(i as u32));
            }
        }
        assert_eq!(seen.len(), t.component_size());
    }

    #[test]
    fn parent_is_one_level_up() {
        let g = gen::gnp(70, 0.07, 9);
        let t = BfsTree::new(&g, 5);
        for v in 0..70u32 {
            if let Some(p) = t.parent_of(v) {
                assert_eq!(t.level_of(p).unwrap() + 1, t.level_of(v).unwrap());
                assert!(g.has_edge(p, v), "tree edge must be a graph edge");
            }
        }
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.component_size(), 1);
    }

    #[test]
    fn level_map_matches_trees() {
        let g = gen::gnp(80, 0.04, 11); // sparse: several components
        let map = LevelMap::from_graph(&g);
        for (ci, comp) in crate::components::connected_components(&g)
            .iter()
            .enumerate()
        {
            let tree = BfsTree::new(&g, comp[0]);
            for (lvl, verts) in tree.levels().iter().enumerate() {
                for (r, &v) in verts.iter().enumerate() {
                    assert_eq!(map.component_of(v), Some(ci as u32));
                    assert_eq!(map.level_of(v), Some(lvl as u32));
                    assert_eq!(map.rank_of(v), r as u32);
                    assert!(map.is_at(v, ci as u32, lvl as u32));
                    assert!(!map.is_at(v, ci as u32, lvl as u32 + 1));
                }
            }
        }
    }

    #[test]
    fn level_map_covers_every_vertex() {
        let g = gen::gnp(60, 0.1, 4);
        let map = LevelMap::from_graph(&g);
        for v in 0..60 {
            assert!(map.component_of(v).is_some(), "vertex {v} unrecorded");
            assert!(map.level_of(v).is_some(), "vertex {v} unrecorded");
        }
        let empty_map = LevelMap::new(5);
        assert_eq!(empty_map.component_of(0), None);
        assert_eq!(empty_map.level_of(0), None);
    }
}
