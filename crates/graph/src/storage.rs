//! Adjacency storage models (§IV, "Storing Graphs on GPUs").
//!
//! The paper stores one edge per *bit* and compares three packings:
//!
//! * full adjacency matrix — `n²` bits (Eq. 1);
//! * upper triangular matrix (UTM) — `n(n+1)/2` bits (Eq. 2), valid for
//!   undirected graphs where `(i,j) = (j,i)`;
//! * strictly upper triangular (S-UTM) — `n(n-1)/2` bits, dropping the
//!   always-zero diagonal, which "increases the size of the largest graph
//!   by 1".
//!
//! All three implement [`AdjacencyStorage`] and report their exact
//! footprint via [`AdjacencyStorage::size_bits`], which Table II is
//! computed from. [`Csr`] is the compacted adjacency list used by the CPU
//! reference algorithms (and by Harish & Narayanan's GPU work the paper
//! cites).

/// Common query interface over the §IV storage models.
pub trait AdjacencyStorage {
    /// Number of vertices.
    fn n(&self) -> u32;
    /// Whether the undirected edge `{u, v}` is present. Symmetric;
    /// `has_edge(u, u)` is `false` for simple graphs.
    fn has_edge(&self, u: u32, v: u32) -> bool;
    /// Exact storage footprint in bits under this model's packing — the
    /// quantity the paper's capacity equations constrain.
    fn size_bits(&self) -> u128;
}

/// Bit-packed `n × n` adjacency matrix, row-major in 64-bit words.
///
/// Rows are padded to whole words so each row is independently word
/// addressable — the layout the simulated GPU kernels read rows from. The
/// *model* footprint reported by [`AdjacencyStorage::size_bits`] is the
/// paper's `n²` (Eq. 1), not the padded in-RAM size (see
/// [`BitMatrix::padded_bits`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: u32,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an empty (edgeless) matrix on `n` vertices.
    #[must_use]
    pub fn new(n: u32) -> Self {
        let words_per_row = (n as usize).div_ceil(64);
        Self {
            n,
            words_per_row,
            words: vec![0; words_per_row * n as usize],
        }
    }

    /// Inserts the undirected edge `{u, v}` (sets both orientations).
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range vertices.
    pub fn set_edge(&mut self, u: u32, v: u32) {
        assert!(u != v, "self-loop {u}");
        assert!(u < self.n && v < self.n, "vertex out of range");
        self.set_bit(u, v);
        self.set_bit(v, u);
    }

    #[inline]
    fn set_bit(&mut self, r: u32, c: u32) {
        let idx = r as usize * self.words_per_row + (c as usize >> 6);
        self.words[idx] |= 1u64 << (c & 63);
    }

    #[inline]
    fn get_bit(&self, r: u32, c: u32) -> bool {
        let idx = r as usize * self.words_per_row + (c as usize >> 6);
        (self.words[idx] >> (c & 63)) & 1 == 1
    }

    /// Word-slice view of row `r` — the unit of coalesced access in the
    /// simulated kernels and of the AND/popcount triangle counter.
    #[inline]
    #[must_use]
    pub fn row(&self, r: u32) -> &[u64] {
        let s = r as usize * self.words_per_row;
        &self.words[s..s + self.words_per_row]
    }

    /// Number of 64-bit words per row (row pitch).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// In-RAM padded footprint in bits (`n · ⌈n/64⌉ · 64`).
    #[must_use]
    pub fn padded_bits(&self) -> u128 {
        self.words.len() as u128 * 64
    }

    /// Number of common neighbors of `u` and `v` with index strictly
    /// greater than `hi` — the inner step of the matrix triangle counter.
    #[must_use]
    pub fn common_neighbors_above(&self, u: u32, v: u32, hi: u32) -> u64 {
        let ru = self.row(u);
        let rv = self.row(v);
        let start_word = (hi as usize + 1) >> 6;
        let mut count = 0u64;
        for w in start_word..self.words_per_row {
            let mut x = ru[w] & rv[w];
            if w == start_word {
                let lo_bit = (hi as usize + 1) & 63;
                x &= !0u64 << lo_bit;
            }
            count += u64::from(x.count_ones());
        }
        count
    }

    /// Degree of `u` (popcount of its row).
    #[must_use]
    pub fn degree(&self, u: u32) -> u32 {
        self.row(u).iter().map(|w| w.count_ones()).sum()
    }
}

impl AdjacencyStorage for BitMatrix {
    fn n(&self) -> u32 {
        self.n
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        u != v && self.get_bit(u, v)
    }

    fn size_bits(&self) -> u128 {
        // Eq. (1): n² bits, one bit per ordered pair.
        u128::from(self.n) * u128::from(self.n)
    }
}

/// Upper triangular matrix *including* the diagonal: `n(n+1)/2` bits.
///
/// Linear index of `(i, j)` with `i ≤ j`:
/// `i·n − i(i−1)/2 + (j − i)` — row `i` contributes `n − i` cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Utm {
    n: u32,
    bits: Vec<u64>,
}

impl Utm {
    /// Creates an empty UTM on `n` vertices.
    #[must_use]
    pub fn new(n: u32) -> Self {
        let cells = u64::from(n) * (u64::from(n) + 1) / 2;
        Self {
            n,
            bits: vec![0; (cells as usize).div_ceil(64)],
        }
    }

    /// Linear bit offset of the unordered pair, after sorting `u ≤ v`.
    #[inline]
    #[must_use]
    pub fn offset(&self, u: u32, v: u32) -> u64 {
        let (i, j) = if u <= v { (u, v) } else { (v, u) };
        let i = u64::from(i);
        let n = u64::from(self.n);
        // Rows 0..i hold n, n-1, …, n-i+1 cells: start = i·n − i(i−1)/2.
        i * n - i * i.saturating_sub(1) / 2 + (u64::from(j) - i)
    }

    /// Inserts the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range vertices.
    pub fn set_edge(&mut self, u: u32, v: u32) {
        assert!(u != v, "self-loop {u}");
        assert!(u < self.n && v < self.n, "vertex out of range");
        let off = self.offset(u, v);
        self.bits[(off >> 6) as usize] |= 1u64 << (off & 63);
    }
}

impl AdjacencyStorage for Utm {
    fn n(&self) -> u32 {
        self.n
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v || u >= self.n || v >= self.n {
            return false;
        }
        let off = self.offset(u, v);
        (self.bits[(off >> 6) as usize] >> (off & 63)) & 1 == 1
    }

    fn size_bits(&self) -> u128 {
        // Eq. (2): n(n+1)/2 bits.
        u128::from(self.n) * (u128::from(self.n) + 1) / 2
    }
}

/// Strictly upper triangular matrix (no diagonal): `n(n−1)/2` bits — the
/// paper's S-UTM, its densest exact representation.
///
/// Linear index of `(i, j)` with `i < j`:
/// `i·(n−1) − i(i−1)/2 + (j − i − 1)` — row `i` contributes `n − 1 − i`
/// cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SUtm {
    n: u32,
    bits: Vec<u64>,
}

impl SUtm {
    /// Creates an empty S-UTM on `n` vertices.
    #[must_use]
    pub fn new(n: u32) -> Self {
        let cells = u64::from(n) * u64::from(n.saturating_sub(1)) / 2;
        Self {
            n,
            bits: vec![0; (cells as usize).div_ceil(64)],
        }
    }

    /// Linear bit offset of the unordered pair, after sorting to `i < j`.
    ///
    /// # Panics
    ///
    /// Debug-asserts `u != v`.
    #[inline]
    #[must_use]
    pub fn offset(&self, u: u32, v: u32) -> u64 {
        debug_assert!(u != v);
        let (i, j) = if u < v { (u, v) } else { (v, u) };
        let i = u64::from(i);
        let n = u64::from(self.n);
        i * (n - 1) - i * i.saturating_sub(1) / 2 + (u64::from(j) - i - 1)
    }

    /// Inserts the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range vertices.
    pub fn set_edge(&mut self, u: u32, v: u32) {
        assert!(u != v, "self-loop {u}");
        assert!(u < self.n && v < self.n, "vertex out of range");
        let off = self.offset(u, v);
        self.bits[(off >> 6) as usize] |= 1u64 << (off & 63);
    }
}

impl AdjacencyStorage for SUtm {
    fn n(&self) -> u32 {
        self.n
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v || u >= self.n || v >= self.n {
            return false;
        }
        let off = self.offset(u, v);
        (self.bits[(off >> 6) as usize] >> (off & 63)) & 1 == 1
    }

    fn size_bits(&self) -> u128 {
        u128::from(self.n) * u128::from(self.n.saturating_sub(1)) / 2
    }
}

/// Compressed sparse row adjacency: `offsets[u] .. offsets[u+1]` indexes
/// the sorted neighbor list of `u` in `targets`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds from undirected edges; each `{u, v}` appears in both rows.
    /// Neighbor lists come out sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range vertices.
    #[must_use]
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n as usize];
        for &(u, v) in edges {
            assert!(u != v, "self-loop {u}");
            assert!(u < n && v < n, "vertex out of range: ({u},{v}) with n={n}");
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        offsets.push(0);
        for d in &deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut targets = vec![0u32; offsets[n as usize]];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sort + dedup each row in place.
        let mut dedup_targets = Vec::with_capacity(targets.len());
        let mut new_offsets = Vec::with_capacity(n as usize + 1);
        new_offsets.push(0);
        for u in 0..n as usize {
            let row = &mut targets[offsets[u]..offsets[u + 1]];
            row.sort_unstable();
            let before = dedup_targets.len();
            let mut last: Option<u32> = None;
            for &t in row.iter() {
                if last != Some(t) {
                    dedup_targets.push(t);
                    last = Some(t);
                }
            }
            new_offsets.push(before + (dedup_targets.len() - before));
        }
        Self {
            offsets: new_offsets,
            targets: dedup_targets,
        }
    }

    /// Sorted neighbors of `u`.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Degree of `u`.
    #[inline]
    #[must_use]
    pub fn degree(&self, u: u32) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Total directed arc count (`2m` for a simple undirected graph).
    #[must_use]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }
}

impl AdjacencyStorage for Csr {
    fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        u != v && u < self.n() && v < self.n() && self.neighbors(u).binary_search(&v).is_ok()
    }

    fn size_bits(&self) -> u128 {
        // Offsets as usize words + targets as u32s; reported for the
        // "compacted adjacency list" comparison of §II.
        (self.offsets.len() as u128) * 64 + (self.targets.len() as u128) * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> Vec<(u32, u32)> {
        vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    }

    fn check_storage<S: AdjacencyStorage>(s: &S, n: u32, edges: &[(u32, u32)]) {
        assert_eq!(s.n(), n);
        for u in 0..n {
            assert!(!s.has_edge(u, u), "diagonal must read false");
            for v in 0..n {
                let expect = edges
                    .iter()
                    .any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u));
                assert_eq!(s.has_edge(u, v), expect, "edge ({u},{v})");
                assert_eq!(s.has_edge(u, v), s.has_edge(v, u), "symmetry ({u},{v})");
            }
        }
    }

    #[test]
    fn bitmatrix_roundtrip() {
        let mut m = BitMatrix::new(5);
        for &(u, v) in &sample_edges() {
            m.set_edge(u, v);
        }
        check_storage(&m, 5, &sample_edges());
        assert_eq!(m.size_bits(), 25);
        assert_eq!(m.degree(0), 3);
        assert_eq!(m.degree(4), 0);
    }

    #[test]
    fn utm_roundtrip() {
        let mut m = Utm::new(5);
        for &(u, v) in &sample_edges() {
            m.set_edge(u, v);
        }
        check_storage(&m, 5, &sample_edges());
        assert_eq!(m.size_bits(), 15); // 5·6/2
    }

    #[test]
    fn sutm_roundtrip() {
        let mut m = SUtm::new(5);
        for &(u, v) in &sample_edges() {
            m.set_edge(u, v);
        }
        check_storage(&m, 5, &sample_edges());
        assert_eq!(m.size_bits(), 10); // 5·4/2
    }

    #[test]
    fn csr_roundtrip() {
        let c = Csr::from_edges(5, &sample_edges());
        check_storage(&c, 5, &sample_edges());
        assert_eq!(c.neighbors(0), &[1, 2, 3]);
        assert_eq!(c.neighbors(4), &[] as &[u32]);
        assert_eq!(c.arc_count(), 10);
    }

    #[test]
    fn csr_dedups_duplicate_edges() {
        let c = Csr::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(c.neighbors(0), &[1]);
        assert_eq!(c.neighbors(1), &[0]);
        assert_eq!(c.arc_count(), 2);
    }

    #[test]
    fn sutm_offsets_are_a_bijection() {
        // Every unordered pair maps to a distinct offset in [0, n(n-1)/2).
        let n = 17u32;
        let m = SUtm::new(n);
        let cells = u64::from(n) * u64::from(n - 1) / 2;
        let mut seen = vec![false; cells as usize];
        for i in 0..n {
            for j in i + 1..n {
                let off = m.offset(i, j) as usize;
                assert!(off < cells as usize, "offset {off} out of range");
                assert!(!seen[off], "collision at ({i},{j})");
                seen[off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn utm_offsets_are_a_bijection() {
        let n = 13u32;
        let m = Utm::new(n);
        let cells = u64::from(n) * u64::from(n + 1) / 2;
        let mut seen = vec![false; cells as usize];
        for i in 0..n {
            for j in i..n {
                let off = m.offset(i, j) as usize;
                assert!(off < cells as usize);
                assert!(!seen[off], "collision at ({i},{j})");
                seen[off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn storage_sizes_ordered_as_paper() {
        // n² > n(n+1)/2 > n(n-1)/2 for n ≥ 2 — the §IV motivation.
        for n in 2..50u32 {
            let full = BitMatrix::new(n).size_bits();
            let utm = Utm::new(n).size_bits();
            let sutm = SUtm::new(n).size_bits();
            assert!(full > utm && utm > sutm, "n = {n}");
        }
    }

    #[test]
    fn common_neighbors_above_counts() {
        // Triangle 0-1-2 plus pendant 3 connected to 0 and 1.
        let mut m = BitMatrix::new(4);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)] {
            m.set_edge(u, v);
        }
        // Common neighbors of 0 and 1 are {2, 3}.
        assert_eq!(m.common_neighbors_above(0, 1, 1), 2);
        assert_eq!(m.common_neighbors_above(0, 1, 2), 1);
        assert_eq!(m.common_neighbors_above(0, 1, 3), 0);
    }

    #[test]
    fn common_neighbors_across_word_boundary() {
        // Vertices beyond index 63 exercise the multi-word path.
        let n = 130u32;
        let mut m = BitMatrix::new(n);
        // u = 0, v = 1 share neighbors 64, 100, 129.
        for &w in &[64u32, 100, 129] {
            m.set_edge(0, w);
            m.set_edge(1, w);
        }
        m.set_edge(0, 1);
        assert_eq!(m.common_neighbors_above(0, 1, 1), 3);
        assert_eq!(m.common_neighbors_above(0, 1, 64), 2);
        assert_eq!(m.common_neighbors_above(0, 1, 128), 1);
        assert_eq!(m.common_neighbors_above(0, 1, 129), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn bitmatrix_rejects_self_loop() {
        BitMatrix::new(3).set_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn csr_rejects_out_of_range() {
        let _ = Csr::from_edges(3, &[(0, 3)]);
    }

    #[test]
    fn empty_and_single_vertex() {
        let m = SUtm::new(0);
        assert_eq!(m.size_bits(), 0);
        let m1 = SUtm::new(1);
        assert_eq!(m1.size_bits(), 0);
        assert!(!m1.has_edge(0, 0));
        let c = Csr::from_edges(1, &[]);
        assert_eq!(c.degree(0), 0);
    }
}
