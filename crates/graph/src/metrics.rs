//! Structural graph metrics used to characterize workloads.
//!
//! The paper's motivation is structural ("properties of the graphs that
//! define the underlying structure point towards large connected
//! components"); these metrics quantify what each generator produces and
//! feed the workload analyzer in the CLI (`trigon analyze`).

use crate::bfs::BfsTree;
use crate::graph::Graph;

/// Degree-distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Degree histogram: `hist[d]` = number of vertices of degree `d`.
    pub histogram: Vec<usize>,
}

/// Computes the degree distribution (empty graph → zeroed stats).
#[must_use]
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.n();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            histogram: Vec::new(),
        };
    }
    let mut degs: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    let max = *degs.last().unwrap();
    let mut histogram = vec![0usize; max + 1];
    for &d in &degs {
        histogram[d] += 1;
    }
    DegreeStats {
        min: degs[0],
        max,
        mean: 2.0 * g.m() as f64 / f64::from(n),
        median: degs[degs.len() / 2],
        histogram,
    }
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Positive for social networks, negative for hub-and-spoke
/// topologies; `None` when undefined (no edges or zero variance).
#[must_use]
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    if g.m() == 0 {
        return None;
    }
    // Over directed arcs (each edge twice, symmetric).
    let mut sx = 0.0f64;
    let mut sxx = 0.0f64;
    let mut sxy = 0.0f64;
    let mut cnt = 0.0f64;
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        for (a, b) in [(du, dv), (dv, du)] {
            sx += a;
            sxx += a * a;
            sxy += a * b;
            cnt += 1.0;
        }
    }
    let mean = sx / cnt;
    let var = sxx / cnt - mean * mean;
    if var <= f64::EPSILON {
        return None;
    }
    Some((sxy / cnt - mean * mean) / var)
}

/// Double-sweep lower bound on the diameter of the component containing
/// `start`: BFS to the farthest vertex, then BFS again from it. Exact on
/// trees; a strong lower bound in general.
#[must_use]
pub fn double_sweep_diameter(g: &Graph, start: u32) -> u32 {
    let t1 = BfsTree::new(g, start);
    let far = deepest_vertex(&t1);
    let t2 = BfsTree::new(g, far);
    t2.depth() as u32 - 1
}

fn deepest_vertex(t: &BfsTree) -> u32 {
    let last = t.levels().last().expect("BFS tree has at least one level");
    last[0]
}

/// Exact eccentricity of every vertex via all-pairs BFS — `O(n·m)`, for
/// small graphs and tests. `ecc[v] = u32::MAX` for a disconnected graph's
/// unreachable pairs is avoided by computing per component.
#[must_use]
pub fn eccentricities(g: &Graph) -> Vec<u32> {
    (0..g.n())
        .map(|v| {
            let t = BfsTree::new(g, v);
            t.depth() as u32 - 1
        })
        .collect()
}

/// Exact diameter of a connected graph (`None` if disconnected or empty).
#[must_use]
pub fn exact_diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 || !crate::components::is_connected(g) {
        return None;
    }
    eccentricities(g).into_iter().max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn degree_stats_on_known_graphs() {
        let s = degree_stats(&gen::star(6));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.median, 1);
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.histogram[1], 5);
        assert_eq!(s.histogram[5], 1);

        let c = degree_stats(&gen::cycle(10));
        assert_eq!((c.min, c.max, c.median), (2, 2, 2));
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = gen::gnp(200, 0.05, 1);
        let s = degree_stats(&g);
        assert_eq!(s.histogram.iter().sum::<usize>(), 200);
    }

    #[test]
    fn assortativity_signs() {
        // Star: maximally disassortative.
        let a = degree_assortativity(&gen::star(20)).unwrap();
        assert!(a < -0.9, "star assortativity {a}");
        // Regular graph: undefined (zero variance).
        assert_eq!(degree_assortativity(&gen::cycle(10)), None);
        assert_eq!(degree_assortativity(&gen::complete(6)), None);
        // No edges: undefined.
        assert_eq!(
            degree_assortativity(&Graph::from_edges(4, &[]).unwrap()),
            None
        );
        // BA graphs trend disassortative-to-neutral; just bound it.
        let ba = degree_assortativity(&gen::barabasi_albert(400, 3, 1)).unwrap();
        assert!((-1.0..=1.0).contains(&ba));
    }

    #[test]
    fn diameter_known_values() {
        assert_eq!(exact_diameter(&gen::path(10)), Some(9));
        assert_eq!(exact_diameter(&gen::cycle(10)), Some(5));
        assert_eq!(exact_diameter(&gen::complete(7)), Some(1));
        assert_eq!(exact_diameter(&gen::star(9)), Some(2));
        assert_eq!(exact_diameter(&gen::grid2d(3, 4)), Some(5)); // (3-1)+(4-1)
        assert_eq!(exact_diameter(&gen::disjoint_cliques(2, 3)), None);
        assert_eq!(exact_diameter(&Graph::from_edges(0, &[]).unwrap()), None);
    }

    #[test]
    fn double_sweep_is_a_lower_bound_and_tight_on_trees() {
        // Exact on paths (trees).
        assert_eq!(double_sweep_diameter(&gen::path(30), 15), 29);
        // Lower bound in general.
        for seed in 0..4u64 {
            let g = gen::gnp(60, 0.08, seed);
            if let Some(d) = exact_diameter(&g) {
                let ds = double_sweep_diameter(&g, 0);
                assert!(ds <= d, "seed {seed}: sweep {ds} > diameter {d}");
                // Double sweep is usually tight on these graphs.
                assert!(ds + 1 >= d, "seed {seed}: sweep {ds} far below {d}");
            }
        }
    }

    #[test]
    fn eccentricity_extremes_bound_diameter() {
        let g = gen::watts_strogatz(80, 4, 0.1, 2);
        if let Some(d) = exact_diameter(&g) {
            let ecc = eccentricities(&g);
            assert_eq!(*ecc.iter().max().unwrap(), d);
            // Radius ≥ diameter / 2.
            let r = *ecc.iter().min().unwrap();
            assert!(2 * r >= d);
        }
    }
}
