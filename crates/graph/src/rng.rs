//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the reproduction must be bit-reproducible across
//! platforms and crate versions, so instead of depending on `rand` we ship
//! SplitMix64 (for seeding) and Xoshiro256++ (for generation) — both are
//! public-domain algorithms by Blackman & Vigna with published reference
//! outputs that the tests below pin.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a single `u64` seed into the 256-bit Xoshiro state, as
/// recommended by the Xoshiro authors.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Xoshiro256++ generator.
///
/// Period `2^256 - 1`; passes BigCrush. All `trigon` generators take a
/// `u64` seed and construct one of these, so identical seeds give
/// identical graphs everywhere.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator by running SplitMix64 four times.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Rejection threshold for exact uniformity.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct values from `[0, n)` (unordered, returned
    /// sorted) by Floyd's algorithm — `O(k)` expected, no `O(n)` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(k as u64 <= n, "sample_distinct: k > n");
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k as u64)..n {
            let t = self.next_below(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the published SplitMix64
        // C implementation.
        let mut s = 1234567u64;
        let outs: Vec<u64> = (0..3).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(outs[0], 6457827717110365317);
        assert_eq!(outs[1], 3203168211198807973);
        assert_eq!(outs[2], 9817491932198370423);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn next_f64_unit_interval_mean() {
        let mut r = Xoshiro256pp::seed_from_u64(99);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..100 {
            let s = r.sample_distinct(50, 10);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert!(s.iter().all(|&v| v < 50));
        }
        // Edge: k == n returns everything.
        let all = r.sample_distinct(8, 8);
        assert_eq!(all, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.next_bool(0.0)));
        assert!((0..100).all(|_| r.next_bool(1.0)));
    }
}
