//! Seeded graph generators.
//!
//! The paper evaluates on (a) random graphs of 200–1200 nodes (Fig. 10,
//! Fig. 12) and (b) "data available on the Stanford Network Analysis
//! Project" at 5 000–100 000 nodes (Fig. 11). The SNAP files themselves
//! are not redistributable here, so per DESIGN.md we substitute seeded
//! synthetic models with the structural properties that matter for
//! triangle workloads: heavy-tailed degrees (Barabási–Albert) and high
//! clustering (Watts–Strogatz). Deterministic structured families
//! (paths, stars, cliques, bipartite, grids) provide closed-form triangle
//! counts for testing.

use crate::graph::Graph;
use crate::rng::Xoshiro256pp;

/// Path `0 – 1 – … – (n-1)`. Zero triangles.
#[must_use]
pub fn path(n: u32) -> Graph {
    let edges: Vec<_> = (1..n).map(|v| (v - 1, v)).collect();
    Graph::from_edges(n, &edges).expect("path edges are valid")
}

/// Cycle on `n ≥ 3` vertices; `n < 3` degenerates to a path. One triangle
/// iff `n == 3`.
#[must_use]
pub fn cycle(n: u32) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut edges: Vec<_> = (1..n).map(|v| (v - 1, v)).collect();
    edges.push((n - 1, 0));
    Graph::from_edges(n, &edges).expect("cycle edges are valid")
}

/// Star: vertex 0 joined to `1 … n-1`. Zero triangles; the worst case for
/// BFS-level balance (level 1 holds everything).
#[must_use]
pub fn star(n: u32) -> Graph {
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges).expect("star edges are valid")
}

/// Complete graph `K_n` — `C(n, 3)` triangles, the paper's §VII identity
/// `ϑ(n-clique) = nC3`.
#[must_use]
pub fn complete(n: u32) -> Graph {
    let mut edges = Vec::with_capacity((n as usize * (n as usize - 1)) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("complete edges are valid")
}

/// Complete bipartite `K_{a,b}` — triangle-free (girth 4), exercising the
/// §VII triangle-free test.
#[must_use]
pub fn complete_bipartite(a: u32, b: u32) -> Graph {
    let mut edges = Vec::with_capacity(a as usize * b as usize);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("bipartite edges are valid")
}

/// `rows × cols` grid — triangle-free, deep BFS trees with small levels
/// (the friendly case for shared-memory chunking).
#[must_use]
pub fn grid2d(rows: u32, cols: u32) -> Graph {
    let id = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("grid edges are valid")
}

/// `k` disjoint cliques of `size` vertices each — multi-component input
/// for Algorithm 1, with exactly `k · C(size, 3)` triangles.
#[must_use]
pub fn disjoint_cliques(k: u32, size: u32) -> Graph {
    let mut edges = Vec::new();
    for c in 0..k {
        let base = c * size;
        for u in 0..size {
            for v in u + 1..size {
                edges.push((base + u, base + v));
            }
        }
    }
    Graph::from_edges(k * size, &edges).expect("clique edges are valid")
}

/// Erdős–Rényi `G(n, p)`: every unordered pair independently an edge.
/// Seeded and deterministic. Used for the paper's 200–1200-node suites.
#[must_use]
pub fn gnp(n: u32, p: f64, seed: u64) -> Graph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x6E70_6E70);
    let mut edges = Vec::new();
    if p >= 1.0 {
        return complete(n);
    }
    if p > 0.0 {
        // Geometric skipping: O(m) instead of O(n²) draws.
        let ln_q = (1.0 - p).ln();
        let total_pairs = u64::from(n) * u64::from(n.saturating_sub(1)) / 2;
        let mut idx: u64 = 0;
        loop {
            let r = rng.next_f64().max(f64::MIN_POSITIVE);
            let skip = (r.ln() / ln_q).floor() as u64;
            idx = match idx.checked_add(skip) {
                Some(i) if i < total_pairs => i,
                _ => break,
            };
            // Decode pair index → (u, v) with u < v (row-major over S-UTM).
            let (u, v) = pair_from_index(n, idx);
            edges.push((u, v));
            idx += 1;
            if idx >= total_pairs {
                break;
            }
        }
    }
    Graph::from_edges(n, &edges).expect("gnp edges are valid")
}

/// Decodes a strictly-upper-triangular linear index into `(u, v)`, the
/// inverse of the S-UTM offset map.
fn pair_from_index(n: u32, idx: u64) -> (u32, u32) {
    let n64 = u64::from(n);
    // Find row u: largest u with start(u) ≤ idx, start(u) = u·(n-1) − u(u−1)/2.
    let mut lo = 0u64;
    let mut hi = n64 - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let start = mid * (n64 - 1) - mid * (mid - 1) / 2;
        if start <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let start = u * (n64 - 1) - u * u.saturating_sub(1) / 2;
    let v = u + 1 + (idx - start);
    (u as u32, v as u32)
}

/// Barabási–Albert preferential attachment: starts from an `m`-clique and
/// attaches each new vertex to `m` distinct existing vertices chosen
/// proportionally to degree. Heavy-tailed degrees approximate the SNAP
/// social graphs of Fig. 11.
///
/// # Panics
///
/// Panics if `n < m + 1` or `m == 0`.
#[must_use]
pub fn barabasi_albert(n: u32, m: u32, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count must be ≥ 1");
    assert!(n > m, "need n > m");
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xBA00_00BA);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n as usize * m as usize);
    // Repeated-endpoints urn: picking a uniform element is degree-
    // proportional sampling.
    let mut urn: Vec<u32> = Vec::with_capacity(2 * n as usize * m as usize);
    // Seed clique on m+1 vertices.
    for u in 0..=m {
        for v in u + 1..=m {
            edges.push((u, v));
            urn.push(u);
            urn.push(v);
        }
    }
    let mut picked = Vec::with_capacity(m as usize);
    for v in m + 1..n {
        picked.clear();
        while picked.len() < m as usize {
            let t = urn[rng.next_below(urn.len() as u64) as usize];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((t, v));
            urn.push(t);
            urn.push(v);
        }
    }
    Graph::from_edges(n, &edges).expect("BA edges are valid")
}

/// Watts–Strogatz small world: ring lattice where each vertex joins its
/// `k/2` clockwise neighbors, then each lattice edge is rewired with
/// probability `beta`. High clustering ⇒ triangle-rich, like the SNAP
/// community graphs.
///
/// # Panics
///
/// Panics unless `k` is even, `k ≥ 2`, and `n > k`.
#[must_use]
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and ≥ 2");
    assert!(n > k, "need n > k");
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5733_0000);
    // Track adjacency in a set alongside the edge list to keep the graph
    // simple under rewiring.
    let mut present = std::collections::BTreeSet::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let norm = |u: u32, v: u32| if u < v { (u, v) } else { (v, u) };
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            let e = norm(u, v);
            if present.insert(e) {
                edges.push(e);
            }
        }
    }
    // Rewire pass.
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
    for &(u, v) in &edges {
        if rng.next_bool(beta) {
            // Try a handful of times to find a fresh endpoint.
            let mut rewired = None;
            for _ in 0..16 {
                let w = rng.next_below(u64::from(n)) as u32;
                if w != u && w != v {
                    let e = norm(u, w);
                    if !present.contains(&e) {
                        rewired = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = rewired {
                present.remove(&norm(u, v));
                present.insert(e);
                out.push(e);
                continue;
            }
        }
        out.push((u, v));
    }
    Graph::from_edges(n, &out).expect("WS edges are valid")
}

/// Random bipartite graph on parts of size `a` and `b` with edge
/// probability `p` — triangle-free by construction, arbitrary density.
#[must_use]
pub fn random_bipartite(a: u32, b: u32, p: f64, seed: u64) -> Graph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xB1B1_0000);
    let mut edges = Vec::new();
    for u in 0..a {
        for v in 0..b {
            if rng.next_bool(p) {
                edges.push((u, a + v));
            }
        }
    }
    Graph::from_edges(a + b, &edges).expect("bipartite edges are valid")
}

/// The "SNAP-like" preset used by the Fig. 11 reproduction: BA skeleton
/// with `m = 8` — heavy-tailed, small diameter, triangle-rich.
#[must_use]
pub fn snap_like(n: u32, seed: u64) -> Graph {
    barabasi_albert(n, 8, seed)
}

/// R-MAT (recursive matrix) generator — the model behind SNAP's
/// synthetic social/web graphs. Each of the `m` edges picks its cell by
/// recursively descending the adjacency matrix's quadrants with
/// probabilities `(a, b, c, d)`; the classic "social" parameterization
/// is `(0.57, 0.19, 0.19, 0.05)`. Self-loops are re-rolled, duplicate
/// edges merged (so the final edge count can fall slightly below `m`).
///
/// # Panics
///
/// Panics unless `n` is a power of two and the probabilities sum to ≈ 1.
#[must_use]
pub fn rmat(n: u32, m: usize, probs: (f64, f64, f64, f64), seed: u64) -> Graph {
    assert!(
        n.is_power_of_two() && n >= 2,
        "R-MAT needs a power-of-two n ≥ 2"
    );
    let (a, b, c, d) = probs;
    assert!(
        ((a + b + c + d) - 1.0).abs() < 1e-9 && a > 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "quadrant probabilities must sum to 1"
    );
    let levels = n.trailing_zeros();
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x52_4D_41_54);
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < 20 * m {
        attempts += 1;
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..levels {
            let r = rng.next_f64();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("R-MAT edges are valid")
}

/// The classic "social" R-MAT parameterization.
#[must_use]
pub fn rmat_social(n: u32, m: usize, seed: u64) -> Graph {
    rmat(n, m, (0.57, 0.19, 0.19, 0.05), seed)
}

/// Ring of dense communities: `⌈n / comm_size⌉` communities of
/// `comm_size` vertices, each an internal `G(s, p_in)`, with `bridges`
/// random links between each pair of adjacent communities (ring-closed).
///
/// This is the *bounded-level-width* SNAP stand-in: BFS levels stay
/// around one community in size, so the graph is deep — exactly the
/// regime the paper's shared-memory level splitting (§V) and ALS counting
/// target, and the structure of SNAP's road/community networks. Contrast
/// with [`barabasi_albert`], whose explosive levels model the social
/// graphs.
#[must_use]
pub fn community_ring(n: u32, comm_size: u32, p_in: f64, bridges: u32, seed: u64) -> Graph {
    assert!(comm_size >= 2, "communities need at least 2 vertices");
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xC0_33_00_17);
    let communities = n.div_ceil(comm_size);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let size_of = |c: u32| -> u32 {
        if c + 1 < communities || n.is_multiple_of(comm_size) {
            comm_size
        } else {
            n % comm_size
        }
    };
    for c in 0..communities {
        let base = c * comm_size;
        let s = size_of(c);
        // Internal G(s, p_in) plus a Hamiltonian path to keep the
        // community (and thus the whole ring) connected.
        for u in 0..s {
            if u + 1 < s {
                edges.push((base + u, base + u + 1));
            }
            for v in u + 1..s {
                if rng.next_bool(p_in) {
                    edges.push((base + u, base + v));
                }
            }
        }
        // Bridges to the next community around the ring.
        if communities > 1 {
            let nc = (c + 1) % communities;
            let nbase = nc * comm_size;
            let ns = size_of(nc);
            for _ in 0..bridges.max(1) {
                let u = base + rng.next_below(u64::from(s)) as u32;
                let v = nbase + rng.next_below(u64::from(ns)) as u32;
                if u != v {
                    edges.push((u, v));
                }
            }
        }
    }
    Graph::from_edges(n, &edges).expect("community ring edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_families_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(2).m(), 1); // degenerates to path
        assert_eq!(star(6).m(), 5);
        assert_eq!(complete(6).m(), 15);
        assert_eq!(complete_bipartite(3, 4).m(), 12);
        assert_eq!(grid2d(3, 4).m(), 17); // 3·3 + 2·4
        assert_eq!(disjoint_cliques(3, 4).m(), 18);
    }

    #[test]
    fn gnp_deterministic_per_seed() {
        let a = gnp(100, 0.05, 7);
        let b = gnp(100, 0.05, 7);
        assert_eq!(a, b);
        let c = gnp(100, 0.05, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 300u32;
        let p = 0.1;
        let g = gnp(n, p, 1);
        let expect = p * f64::from(n) * f64::from(n - 1) / 2.0;
        let got = g.m() as f64;
        // 5 sigma band: sigma = sqrt(N p (1-p)), N = C(n,2).
        let sigma = (f64::from(n) * f64::from(n - 1) / 2.0 * p * (1.0 - p)).sqrt();
        assert!(
            (got - expect).abs() < 5.0 * sigma,
            "m = {got}, expect {expect}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 3).m(), 0);
        assert_eq!(gnp(20, 1.0, 3).m(), 190);
    }

    #[test]
    fn pair_index_roundtrip() {
        let n = 37u32;
        let mut idx = 0u64;
        for u in 0..n {
            for v in u + 1..n {
                assert_eq!(pair_from_index(n, idx), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn ba_degree_and_determinism() {
        let g = barabasi_albert(500, 3, 9);
        assert_eq!(g, barabasi_albert(500, 3, 9));
        // Every non-seed vertex has degree ≥ m.
        for v in 4..500u32 {
            assert!(g.degree(v) >= 3, "vertex {v} degree {}", g.degree(v));
        }
        // Edge count: C(m+1, 2) + (n - m - 1)·m.
        assert_eq!(g.m(), 6 + (500 - 4) * 3);
        // Heavy tail: hub degree far above m.
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    fn ws_is_simple_and_connected_enough() {
        let g = watts_strogatz(200, 6, 0.1, 4);
        assert_eq!(g, watts_strogatz(200, 6, 0.1, 4));
        // Rewiring preserves edge count (every edge kept or moved).
        assert_eq!(g.m(), 200 * 3);
        // beta = 0 keeps the pure lattice.
        let lattice = watts_strogatz(50, 4, 0.0, 1);
        for u in 0..50u32 {
            assert_eq!(lattice.degree(u), 4);
        }
    }

    #[test]
    fn bipartite_has_no_odd_cycles() {
        let g = random_bipartite(20, 30, 0.3, 5);
        // Two-coloring check: parts 0..20 and 20..50.
        for (u, v) in g.edges() {
            assert!((u < 20) != (v < 20), "edge inside one part: ({u},{v})");
        }
    }

    #[test]
    fn snap_like_is_dense_enough() {
        let g = snap_like(2000, 11);
        assert!(g.m() > 15_000);
        assert!(g.max_degree() > 50);
    }

    #[test]
    fn rmat_skew_and_determinism() {
        let g = rmat_social(1024, 8000, 3);
        assert_eq!(g, rmat_social(1024, 8000, 3));
        assert_eq!(g.n(), 1024);
        // Duplicates merge: the skewed corner re-draws the same cells, so
        // the final count sits noticeably below the request.
        assert!(g.m() <= 8000 && g.m() > 4500, "m = {}", g.m());
        // The 0.57 corner concentrates degree: heavy-tailed.
        let max_d = g.max_degree();
        let mean_d = 2.0 * g.m() as f64 / 1024.0;
        assert!(
            max_d as f64 > 4.0 * mean_d,
            "max degree {max_d} vs mean {mean_d:.1} — not skewed"
        );
    }

    #[test]
    fn rmat_uniform_quadrants_are_not_skewed() {
        // (0.25, 0.25, 0.25, 0.25) degenerates to uniform pairs.
        let g = rmat(512, 4000, (0.25, 0.25, 0.25, 0.25), 1);
        let max_d = g.max_degree();
        let mean_d = 2.0 * g.m() as f64 / 512.0;
        assert!((max_d as f64) < 4.0 * mean_d, "unexpected skew: {max_d}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rmat_rejects_non_power_of_two() {
        let _ = rmat_social(1000, 100, 0);
    }

    #[test]
    fn community_ring_structure() {
        let g = community_ring(1000, 100, 0.2, 3, 5);
        assert_eq!(g, community_ring(1000, 100, 0.2, 3, 5));
        assert_eq!(g.n(), 1000);
        // Connected: Hamiltonian paths + ring bridges.
        assert!(crate::components::is_connected(&g));
        // Deep BFS: level width bounded near the community size.
        let t = crate::bfs::BfsTree::new(&g, 0);
        assert!(t.depth() >= 4, "depth {}", t.depth());
        let widest = t.levels().iter().map(Vec::len).max().unwrap();
        assert!(
            widest <= 2 * 100,
            "level width {widest} exceeds 2 communities"
        );
        // Triangle-rich inside communities.
        assert!(crate::triangles::count_edge_iterator(&g) > 1000);
    }

    #[test]
    fn community_ring_uneven_tail() {
        // n not a multiple of comm_size: the last community is smaller.
        let g = community_ring(250, 100, 0.3, 2, 1);
        assert_eq!(g.n(), 250);
        assert!(crate::components::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "n > m")]
    fn ba_rejects_tiny_n() {
        let _ = barabasi_albert(3, 3, 0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn ws_rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }
}
