//! Connected components — the first step of the paper's Algorithm 1
//! (`{CCi} ← findConnectedComponents{G}`), which then splits each
//! component independently.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Returns the connected components of `g`, each as a sorted vertex list.
/// Components are ordered by their smallest vertex, so the output is
/// deterministic. Isolated vertices form singleton components.
///
/// ```
/// use trigon_graph::{connected_components, Graph};
/// let g = Graph::from_edges(5, &[(0, 1), (3, 4)]).unwrap();
/// assert_eq!(connected_components(&g), vec![vec![0, 1], vec![2], vec![3, 4]]);
/// ```
#[must_use]
pub fn connected_components(g: &Graph) -> Vec<Vec<u32>> {
    let n = g.n() as usize;
    let mut comp = vec![usize::MAX; n];
    let mut out: Vec<Vec<u32>> = Vec::new();
    let mut q = VecDeque::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let id = out.len();
        let mut members = vec![s as u32];
        comp[s] = id;
        q.push_back(s as u32);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = id;
                    members.push(v);
                    q.push_back(v);
                }
            }
        }
        members.sort_unstable();
        out.push(members);
    }
    out
}

/// Whether `g` is connected (vacuously true for `n ≤ 1`).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn empty_graph_all_singletons() {
        let g = Graph::from_edges(4, &[]).unwrap();
        assert_eq!(
            connected_components(&g),
            vec![vec![0], vec![1], vec![2], vec![3]]
        );
        assert!(!is_connected(&g));
    }

    #[test]
    fn zero_vertices_connected() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(connected_components(&g).is_empty());
        assert!(is_connected(&g));
    }

    #[test]
    fn complete_graph_single_component() {
        let g = gen::complete(10);
        let cc = connected_components(&g);
        assert_eq!(cc.len(), 1);
        assert_eq!(cc[0], (0..10).collect::<Vec<_>>());
        assert!(is_connected(&g));
    }

    #[test]
    fn components_partition_vertices() {
        let g = gen::gnp(100, 0.01, 42); // sparse: likely several components
        let cc = connected_components(&g);
        let mut all: Vec<u32> = cc.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // No edge crosses components.
        let comp_of = {
            let mut c = vec![0usize; 100];
            for (i, members) in cc.iter().enumerate() {
                for &v in members {
                    c[v as usize] = i;
                }
            }
            c
        };
        for (u, v) in g.edges() {
            assert_eq!(comp_of[u as usize], comp_of[v as usize]);
        }
    }

    #[test]
    fn components_are_internally_connected() {
        let g = gen::gnp(60, 0.03, 7);
        for members in connected_components(&g) {
            let (sub, _) = g.induced_subgraph(&members);
            assert!(is_connected(&sub));
        }
    }
}
