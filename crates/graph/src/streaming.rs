//! Semi-streaming local triangle estimation — Becchetti, Boldi, Castillo
//! & Gionis (KDD '08), the paper's reference \[1\] and its §VII "spam
//! detection" citation.
//!
//! The scheme approximates, for every vertex `u`, the number of triangles
//! through `u`, using `O(n·h)` memory and a constant number of passes
//! over the edge stream: each vertex keeps `h` *min-wise hashes* of its
//! neighborhood; for an edge `{u, v}` the fraction of agreeing hashes
//! estimates the Jaccard coefficient `J = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|`,
//! from which the intersection follows, and
//! `T(u) = ½ Σ_{v ∈ N(u)} |N(u) ∩ N(v)|`.
//!
//! Pass structure (faithful to the semi-streaming model):
//! 1. one pass per hash function to fold every edge into both endpoints'
//!    running minima (done as `h` logical passes over one scan here);
//! 2. one pass over edges to combine signatures into estimates.

use crate::graph::Graph;
use crate::rng::splitmix64;

/// Per-vertex estimates from one run.
#[derive(Debug, Clone)]
pub struct LocalTriangleEstimate {
    /// Estimated triangles through each vertex.
    pub local: Vec<f64>,
    /// Estimated total `ϑ(G) ≈ Σ local / 3`.
    pub total: f64,
    /// Hash functions used.
    pub hashes: u32,
}

/// Runs the min-wise estimator with `h` hash functions.
///
/// # Panics
///
/// Panics if `h == 0`.
#[must_use]
pub fn local_triangles_minwise(g: &Graph, h: u32, seed: u64) -> LocalTriangleEstimate {
    assert!(h > 0, "need at least one hash function");
    let n = g.n() as usize;
    // Signature matrix: sig[v][i] = min over w in N(v) of hash_i(w).
    let mut sig = vec![u64::MAX; n * h as usize];
    // Pass 1 (h logical passes): fold edges into min-hashes.
    let hash = |i: u32, x: u32| -> u64 {
        let mut s = seed ^ (u64::from(i) << 32) ^ u64::from(x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut s)
    };
    for (u, v) in g.edges() {
        for i in 0..h {
            let hv = hash(i, v);
            let hu = hash(i, u);
            let su = &mut sig[u as usize * h as usize + i as usize];
            *su = (*su).min(hv);
            let sv = &mut sig[v as usize * h as usize + i as usize];
            *sv = (*sv).min(hu);
        }
    }
    // Pass 2: per edge, estimate the neighborhood intersection.
    let mut local = vec![0.0f64; n];
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        let agree = (0..h)
            .filter(|&i| {
                sig[u as usize * h as usize + i as usize]
                    == sig[v as usize * h as usize + i as usize]
            })
            .count() as f64;
        let j = agree / f64::from(h);
        // |A ∩ B| = J/(1+J) · (|A| + |B|); guard the J = 1 pole.
        let inter = if j >= 1.0 {
            du.min(dv)
        } else {
            j / (1.0 + j) * (du + dv)
        };
        // The edge {u, v} itself is in neither neighborhood's
        // intersection contribution to triangles through u via v; but u ∈
        // N(v) and v ∈ N(u) never collide in the intersection (no
        // self-loops), so `inter` directly estimates common neighbors.
        local[u as usize] += inter / 2.0;
        local[v as usize] += inter / 2.0;
    }
    let total = local.iter().sum::<f64>() / 3.0;
    LocalTriangleEstimate {
        local,
        total,
        hashes: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::triangles;

    #[test]
    fn deterministic_per_seed() {
        let g = gen::watts_strogatz(200, 6, 0.1, 1);
        let a = local_triangles_minwise(&g, 16, 7);
        let b = local_triangles_minwise(&g, 16, 7);
        assert_eq!(a.local, b.local);
    }

    #[test]
    fn triangle_free_estimates_near_zero() {
        // Bipartite: all true intersections are empty; min-hash agreement
        // is spurious only, so with enough hashes the estimate is small.
        let g = gen::complete_bipartite(20, 20);
        let e = local_triangles_minwise(&g, 128, 3);
        let exact = triangles::count_edge_iterator(&g) as f64;
        assert_eq!(exact, 0.0);
        assert!(e.total < 0.15 * g.m() as f64, "total {}", e.total);
    }

    #[test]
    fn clique_estimates_accurately() {
        // K_n: every pair shares exactly n−2 neighbors, J = (n−2)/(n+... )
        // — high-agreement regime where min-hash shines.
        let g = gen::complete(20);
        let e = local_triangles_minwise(&g, 256, 5);
        let exact = triangles::count_edge_iterator(&g) as f64;
        let rel = (e.total - exact).abs() / exact;
        assert!(
            rel < 0.15,
            "rel err {rel:.3} (est {}, exact {exact})",
            e.total
        );
    }

    #[test]
    fn triangle_rich_graph_within_tolerance() {
        let g = gen::watts_strogatz(1000, 10, 0.05, 2);
        let exact = triangles::count_edge_iterator(&g) as f64;
        let e = local_triangles_minwise(&g, 192, 11);
        let rel = (e.total - exact).abs() / exact;
        assert!(
            rel < 0.25,
            "rel err {rel:.3} (est {}, exact {exact})",
            e.total
        );
    }

    #[test]
    fn local_estimates_rank_spammers_like_exact_counts() {
        // The §VII application: the estimator must reproduce the exact
        // local counts' *ordering* well enough to separate a clustered
        // vertex from a random-attachment vertex.
        let g = gen::community_ring(600, 60, 0.3, 2, 9);
        let exact = triangles::local_counts(&g);
        let est = local_triangles_minwise(&g, 128, 13);
        // Compare the top-decile sets by exact vs estimated local counts.
        let top = |vals: Vec<(usize, f64)>| -> std::collections::BTreeSet<usize> {
            let mut v = vals;
            v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            v.into_iter().take(60).map(|(i, _)| i).collect()
        };
        let t_exact = top(exact
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, x as f64))
            .collect());
        let t_est = top(est.local.iter().enumerate().map(|(i, &x)| (i, x)).collect());
        let overlap = t_exact.intersection(&t_est).count();
        assert!(overlap >= 30, "top-decile overlap only {overlap}/60");
    }

    #[test]
    fn more_hashes_reduce_error() {
        let g = gen::watts_strogatz(400, 8, 0.1, 4);
        let exact = triangles::count_edge_iterator(&g) as f64;
        let err = |h: u32| {
            // Average over 3 seeds to damp noise.
            (0..3)
                .map(|s| (local_triangles_minwise(&g, h, s).total - exact).abs() / exact)
                .sum::<f64>()
                / 3.0
        };
        let coarse = err(8);
        let fine = err(256);
        assert!(fine < coarse, "fine {fine:.3} !< coarse {coarse:.3}");
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn rejects_zero_hashes() {
        let _ = local_triangles_minwise(&gen::path(3), 0, 1);
    }
}
