//! k-core decomposition and degeneracy ordering.
//!
//! The degeneracy ordering underpins the strongest exact CPU triangle
//! baselines (it is what makes the *forward* algorithm `O(m^{3/2})`) and
//! gives the structural statistics (core numbers) used to characterize
//! the social-network workloads the paper targets. Implementation:
//! Matula–Beck bucket peeling, `O(n + m)`.

use crate::graph::Graph;

/// Result of the k-core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` — the largest `k` such that `v` belongs to the k-core.
    pub core: Vec<u32>,
    /// Vertices in peeling order (non-decreasing core number); reversing
    /// it gives a degeneracy ordering.
    pub order: Vec<u32>,
    /// The graph's degeneracy = max core number (0 for edgeless graphs).
    pub degeneracy: u32,
}

/// Computes core numbers and a degeneracy ordering by bucket peeling.
#[must_use]
pub fn core_decomposition(g: &Graph) -> CoreDecomposition {
    let n = g.n() as usize;
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            order: Vec::new(),
            degeneracy: 0,
        };
    }
    let degree: Vec<usize> = (0..g.n()).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort vertices by current degree.
    let mut bins: Vec<usize> = vec![0; max_deg + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0u32; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            pos[v] = cursor[degree[v]];
            vert[pos[v]] = v as u32;
            cursor[degree[v]] += 1;
        }
    }
    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0u32;
    let mut cur = degree.clone();
    for i in 0..n {
        let v = vert[i];
        let k = cur[v as usize] as u32;
        degeneracy = degeneracy.max(k);
        core[v as usize] = degeneracy;
        order.push(v);
        // Peel v: decrement not-yet-peeled neighbors with higher bucket.
        for &u in g.neighbors(v) {
            let u = u as usize;
            if pos[u] > i {
                let du = cur[u];
                if du > cur[v as usize] {
                    // Swap u toward the front of its bucket, shrink degree.
                    let pu = pos[u];
                    let pw = bins[du];
                    let w = vert[pw] as usize;
                    if u != w {
                        vert.swap(pu, pw);
                        pos[u] = pw;
                        pos[w] = pu;
                    }
                    bins[du] += 1;
                    cur[u] -= 1;
                }
            }
        }
    }
    CoreDecomposition {
        core,
        order,
        degeneracy,
    }
}

/// Verifies the defining property of a core assignment: in the subgraph
/// induced by `{v : core[v] ≥ k}`, every vertex has degree ≥ k. Returns
/// the first violating `(k, v)` if any (used by property tests).
#[must_use]
pub fn check_core_property(g: &Graph, core: &[u32]) -> Option<(u32, u32)> {
    let max_k = core.iter().copied().max().unwrap_or(0);
    for k in 1..=max_k {
        for v in 0..g.n() {
            if core[v as usize] >= k {
                let deg_in = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| core[u as usize] >= k)
                    .count() as u32;
                if deg_in < k {
                    return Some((k, v));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn complete_graph_core() {
        let g = gen::complete(7);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 6);
        assert!(d.core.iter().all(|&c| c == 6));
        assert_eq!(check_core_property(&g, &d.core), None);
    }

    #[test]
    fn tree_has_degeneracy_one() {
        let g = gen::path(20);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        let s = gen::star(20);
        assert_eq!(core_decomposition(&s).degeneracy, 1);
    }

    #[test]
    fn cycle_is_two_core() {
        let g = gen::cycle(15);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 2);
        assert!(d.core.iter().all(|&c| c == 2));
    }

    #[test]
    fn planted_core_found() {
        // A K6 (5-core) hanging off a long path (1-core).
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in u + 1..6 {
                edges.push((u, v));
            }
        }
        for v in 6..30u32 {
            edges.push((v - 1, v));
        }
        let g = Graph::from_edges(30, &edges).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 5);
        for v in 0..6 {
            assert_eq!(d.core[v], 5, "clique vertex {v}");
        }
        for v in 7..30 {
            assert_eq!(d.core[v], 1, "path vertex {v}");
        }
        assert_eq!(check_core_property(&g, &d.core), None);
    }

    #[test]
    fn core_property_on_random_graphs() {
        for seed in 0..5u64 {
            let g = gen::gnp(150, 0.06, seed);
            let d = core_decomposition(&g);
            assert_eq!(check_core_property(&g, &d.core), None, "seed {seed}");
            // Peeling order is a permutation.
            let mut sorted = d.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..150).collect::<Vec<_>>());
        }
    }

    #[test]
    fn degeneracy_bounds_max_core_of_ba() {
        // BA with attachment m: degeneracy is exactly m (the seed clique
        // peels last).
        let g = gen::barabasi_albert(300, 4, 1);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 4);
    }

    #[test]
    fn empty_graphs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
        let g1 = Graph::from_edges(5, &[]).unwrap();
        let d1 = core_decomposition(&g1);
        assert_eq!(d1.degeneracy, 0);
        assert!(d1.core.iter().all(|&c| c == 0));
    }
}
