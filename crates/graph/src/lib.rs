//! # trigon-graph
//!
//! Graph substrate for the `trigon` project: everything *On Analyzing
//! Large Graphs Using GPUs* (IPDPSW 2013) assumes about graphs, built from
//! scratch.
//!
//! * [`graph`] — the canonical undirected simple [`Graph`] with CSR
//!   adjacency;
//! * [`storage`] — the paper's §IV storage models: bit-packed adjacency
//!   matrix, upper-triangular (UTM) and strictly-upper-triangular (S-UTM)
//!   packings, with exact bit-size accounting for the Table II capacity
//!   formulas;
//! * [`bfs`] — BFS trees with level sets (the input of Algorithms 1 & 2)
//!   and the level-adjacency invariant that makes ALS counting correct;
//! * [`components`] — connected components (first step of Algorithm 1);
//! * [`gen`] — seeded deterministic generators, including the
//!   Barabási–Albert and Watts–Strogatz models standing in for the SNAP
//!   social graphs of §XI (see DESIGN.md, substitutions);
//! * [`triangles`] — CPU reference triangle counting (node-iterator on bit
//!   rows, edge-iterator on CSR, degree-ordered *forward*), local counts,
//!   clustering coefficient and transitivity (§VII applications);
//! * [`rng`] — an in-house SplitMix64/Xoshiro256++ PRNG so every dataset
//!   is bit-reproducible;
//! * [`io`] — whitespace edge-list reader/writer and the auto-detecting
//!   dataset loader;
//! * [`mm`] — MatrixMarket coordinate reader/writer;
//! * [`approx`] — DOULION coin-flip approximate triangle counting (the
//!   paper's reference \[16\], used as the approximate baseline);
//! * [`cores`] — k-core decomposition and degeneracy ordering;
//! * [`metrics`] — degree distributions, assortativity, diameter;
//! * [`external`] — out-of-core triangle counting for disk-resident
//!   graphs (the paper's §XII future work);
//! * [`streaming`] — semi-streaming min-wise local triangle estimation
//!   (Becchetti et al., the paper's reference \[1\]).

#![deny(missing_docs)]

pub mod approx;
pub mod bfs;
pub mod components;
pub mod cores;
pub mod external;
pub mod gen;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod mm;
pub mod rng;
pub mod storage;
pub mod streaming;
pub mod triangles;

pub use bfs::{BfsTree, LevelMap};
pub use components::connected_components;
pub use graph::{Graph, GraphError};
pub use rng::Xoshiro256pp;
pub use storage::{AdjacencyStorage, BitMatrix, Csr, SUtm, Utm};
