//! DOULION — approximate triangle counting "with a coin".
//!
//! The paper cites Tsourakakis et al. (KDD '09, its reference \[16\]) as
//! the representative approximate counter for massive graphs: keep every
//! edge independently with probability `p`, count triangles `T'` in the
//! sparsified graph exactly, and report `T' / p³`. The estimator is
//! unbiased, and its variance vanishes as the triangle count grows. It
//! serves here as the *approximate* baseline the exact GPU pipeline is
//! contrasted against in the `approx_counting` example.

use crate::graph::Graph;
use crate::rng::Xoshiro256pp;
use crate::triangles;

/// Result of one DOULION estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoulionEstimate {
    /// Estimated triangle count `T' / p³`.
    pub estimate: f64,
    /// Triangles actually counted in the sparsified graph.
    pub sparsified_triangles: u64,
    /// Edges kept by the coin.
    pub kept_edges: usize,
    /// The sampling probability used.
    pub p: f64,
}

/// Runs DOULION once: sparsify `g` keeping each edge with probability
/// `p` (seeded coin), count exactly, rescale by `1/p³`.
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1`.
#[must_use]
pub fn doulion(g: &Graph, p: f64, seed: u64) -> DoulionEstimate {
    assert!(
        p > 0.0 && p <= 1.0,
        "sampling probability must be in (0, 1]"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xD0_01_10_11);
    let kept: Vec<(u32, u32)> = g.edges().filter(|_| rng.next_bool(p)).collect();
    let sparse = Graph::from_edges(g.n(), &kept).expect("sampled edges are valid");
    let t = triangles::count_edge_iterator(&sparse);
    DoulionEstimate {
        estimate: t as f64 / (p * p * p),
        sparsified_triangles: t,
        kept_edges: kept.len(),
        p,
    }
}

/// Averages `runs` independent DOULION estimates (different coin seeds)
/// — the practical way the KDD '09 paper tightens the estimator.
#[must_use]
pub fn doulion_mean(g: &Graph, p: f64, seed: u64, runs: u32) -> f64 {
    assert!(runs > 0, "need at least one run");
    let sum: f64 = (0..runs)
        .map(|r| doulion(g, p, seed.wrapping_add(u64::from(r) * 0x9E37_79B9)).estimate)
        .sum();
    sum / f64::from(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn p_one_is_exact() {
        let g = gen::gnp(120, 0.1, 3);
        let exact = triangles::count_edge_iterator(&g);
        let est = doulion(&g, 1.0, 7);
        assert_eq!(est.sparsified_triangles, exact);
        assert_eq!(est.kept_edges, g.m());
        assert!((est.estimate - exact as f64).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::gnp(100, 0.1, 1);
        assert_eq!(doulion(&g, 0.5, 42), doulion(&g, 0.5, 42));
        // Different seeds flip different coins (overwhelmingly likely).
        assert_ne!(
            doulion(&g, 0.5, 42).kept_edges,
            doulion(&g, 0.5, 43).kept_edges
        );
    }

    #[test]
    fn estimate_lands_near_truth_on_triangle_rich_graph() {
        // WS lattice: many triangles, so the relative error concentrates.
        let g = gen::watts_strogatz(3000, 10, 0.05, 2);
        let exact = triangles::count_edge_iterator(&g) as f64;
        let est = doulion_mean(&g, 0.5, 11, 5);
        let rel = (est - exact).abs() / exact;
        assert!(
            rel < 0.10,
            "relative error {rel:.3} (est {est}, exact {exact})"
        );
    }

    #[test]
    fn sparsification_keeps_roughly_pm_edges() {
        let g = gen::gnp(300, 0.1, 9);
        let est = doulion(&g, 0.3, 5);
        let expect = 0.3 * g.m() as f64;
        let sigma = (g.m() as f64 * 0.3 * 0.7).sqrt();
        assert!(
            (est.kept_edges as f64 - expect).abs() < 5.0 * sigma,
            "kept {} vs expected {expect}",
            est.kept_edges
        );
    }

    #[test]
    fn triangle_free_graph_estimates_zero() {
        let g = gen::complete_bipartite(30, 30);
        assert_eq!(doulion(&g, 0.7, 1).estimate, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_zero_p() {
        let g = gen::path(4);
        let _ = doulion(&g, 0.0, 1);
    }
}
