//! External-memory (out-of-core) triangle counting — the paper's §XII
//! future work: "handling streaming graphs that are much larger in size,
//! and need to be stored externally on disks or tapes".
//!
//! Two pieces:
//!
//! * [`ExternalEdgeList`] — a binary on-disk edge file (16 bytes per
//!   edge) with buffered sequential scans, the substrate a
//!   disk-resident graph lives in;
//! * [`count_triangles_external`] — the classic *vertex-range
//!   partitioning* scheme (as in MGT-style out-of-core triangulation):
//!   vertices are split into `p` contiguous ranges; for every range
//!   triple `(i ≤ j ≤ k)` the edges touching those ranges are streamed
//!   off disk, the induced tri-partite subgraph is built in memory and
//!   its qualifying triangles counted. Memory use is bounded by the
//!   largest triple's edge set rather than the whole graph.
//!
//! Every triangle `u ≤ v ≤ w` (by range) is counted exactly once, by the
//! unique range triple that contains it.

use crate::graph::Graph;
use crate::triangles;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// A binary edge list on disk: little-endian `u64` pairs, one per edge,
/// canonicalized to `u < v`.
#[derive(Debug)]
pub struct ExternalEdgeList {
    path: PathBuf,
    n: u32,
    m: u64,
}

impl ExternalEdgeList {
    /// Writes `g` to `path` in external binary form.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn create(g: &Graph, path: &Path) -> io::Result<Self> {
        let mut w = BufWriter::new(File::create(path)?);
        let mut m = 0u64;
        for (u, v) in g.edges() {
            w.write_all(&u64::from(u).to_le_bytes())?;
            w.write_all(&u64::from(v).to_le_bytes())?;
            m += 1;
        }
        w.flush()?;
        Ok(Self {
            path: path.to_path_buf(),
            n: g.n(),
            m,
        })
    }

    /// Opens an existing external edge list (vertex count supplied by the
    /// caller, as the format stores only edges).
    ///
    /// # Errors
    ///
    /// Fails if the file is missing or its size is not a whole number of
    /// edge records.
    pub fn open(path: &Path, n: u32) -> io::Result<Self> {
        let meta = std::fs::metadata(path)?;
        if meta.len() % 16 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge file length is not a multiple of 16",
            ));
        }
        Ok(Self {
            path: path.to_path_buf(),
            n,
            m: meta.len() / 16,
        })
    }

    /// Number of vertices.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of edges on disk.
    #[must_use]
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Streams every edge through `f`, one sequential disk pass.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn scan(&self, mut f: impl FnMut(u32, u32)) -> io::Result<()> {
        let mut r = BufReader::new(File::open(&self.path)?);
        let mut buf = [0u8; 16];
        loop {
            match r.read_exact(&mut buf) {
                Ok(()) => {
                    let u = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
                    let v = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
                    f(u as u32, v as u32);
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }
}

/// Statistics of one out-of-core run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalCountStats {
    /// Triangles found.
    pub triangles: u64,
    /// Range triples processed (`C(p+2, 3)`-ish; `p·(p+1)·(p+2)/6`).
    pub triples: u64,
    /// Total edges streamed off disk across all passes (counts re-reads —
    /// the out-of-core I/O cost).
    pub edges_streamed: u64,
    /// Largest in-memory subgraph edge count across triples (the RAM
    /// high-water mark, in edges).
    pub peak_edges_in_memory: usize,
}

/// Counts triangles of the on-disk graph using `p` vertex ranges.
///
/// Memory high-water mark shrinks roughly with `1/p²` at the price of
/// `O(p)` extra disk passes (each edge is re-read by every triple whose
/// ranges cover both endpoints).
///
/// # Errors
///
/// Propagates I/O failures.
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn count_triangles_external(ext: &ExternalEdgeList, p: u32) -> io::Result<ExternalCountStats> {
    assert!(p > 0, "need at least one vertex range");
    let n = u64::from(ext.n());
    let p = u64::from(p).min(n.max(1));
    let range_of = |v: u32| -> u64 { (u64::from(v) * p / n.max(1)).min(p - 1) };
    let mut triangles = 0u64;
    let mut triples = 0u64;
    let mut edges_streamed = 0u64;
    let mut peak = 0usize;
    for i in 0..p {
        for j in i..p {
            for k in j..p {
                triples += 1;
                // Load the edges with both endpoints in {i, j, k} ranges.
                let mut edges: Vec<(u32, u32)> = Vec::new();
                ext.scan(|u, v| {
                    edges_streamed += 1;
                    let (ru, rv) = (range_of(u), range_of(v));
                    let inside = |r: u64| r == i || r == j || r == k;
                    if inside(ru) && inside(rv) {
                        edges.push((u, v));
                    }
                })?;
                peak = peak.max(edges.len());
                let sub = Graph::from_edges(ext.n(), &edges)
                    .expect("external edges are valid by construction");
                // Count triangles whose vertex ranges are exactly
                // {i, j, k} as a multiset — each global triangle matches
                // one triple.
                triangles::list_triangles(&sub, |a, b, c| {
                    let mut rs = [range_of(a), range_of(b), range_of(c)];
                    rs.sort_unstable();
                    if rs == [i, j, k] {
                        triangles += 1;
                    }
                });
            }
        }
    }
    Ok(ExternalCountStats {
        triangles,
        triples,
        edges_streamed,
        peak_edges_in_memory: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("trigon_external_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_scan() {
        let g = gen::gnp(100, 0.1, 1);
        let path = tmp("roundtrip.bin");
        let ext = ExternalEdgeList::create(&g, &path).unwrap();
        assert_eq!(ext.m(), g.m() as u64);
        let mut seen = Vec::new();
        ext.scan(|u, v| seen.push((u, v))).unwrap();
        let want: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn open_validates_length() {
        let path = tmp("bad.bin");
        std::fs::write(&path, [0u8; 17]).unwrap();
        assert!(ExternalEdgeList::open(&path, 5).is_err());
        std::fs::write(&path, [0u8; 32]).unwrap();
        let ext = ExternalEdgeList::open(&path, 5).unwrap();
        assert_eq!(ext.m(), 2);
    }

    #[test]
    fn external_count_matches_in_memory() {
        for (name, g) in [
            ("gnp", gen::gnp(150, 0.08, 3)),
            ("ba", gen::barabasi_albert(200, 4, 1)),
            ("cliques", gen::disjoint_cliques(3, 12)),
            ("bipartite", gen::complete_bipartite(10, 10)),
        ] {
            let expect = triangles::count_edge_iterator(&g);
            let path = tmp(&format!("count_{name}.bin"));
            let ext = ExternalEdgeList::create(&g, &path).unwrap();
            for p in [1u32, 2, 3, 5, 8] {
                let s = count_triangles_external(&ext, p).unwrap();
                assert_eq!(s.triangles, expect, "{name} p={p}");
            }
        }
    }

    #[test]
    fn partitioning_caps_memory() {
        let g = gen::gnp(300, 0.06, 7);
        let path = tmp("memcap.bin");
        let ext = ExternalEdgeList::create(&g, &path).unwrap();
        let whole = count_triangles_external(&ext, 1).unwrap();
        let split = count_triangles_external(&ext, 6).unwrap();
        assert_eq!(whole.triangles, split.triangles);
        assert_eq!(whole.peak_edges_in_memory, g.m());
        assert!(
            split.peak_edges_in_memory < g.m() / 2,
            "peak {} vs m {}",
            split.peak_edges_in_memory,
            g.m()
        );
        // More triples means more streaming.
        assert!(split.edges_streamed > whole.edges_streamed);
        assert_eq!(split.triples, 6 * 7 * 8 / 6);
    }

    #[test]
    fn p_larger_than_n_is_clamped() {
        let g = gen::complete(4);
        let path = tmp("clamp.bin");
        let ext = ExternalEdgeList::create(&g, &path).unwrap();
        let s = count_triangles_external(&ext, 100).unwrap();
        assert_eq!(s.triangles, 4); // C(4,3)
    }

    #[test]
    fn empty_graph_on_disk() {
        let g = Graph::from_edges(10, &[]).unwrap();
        let path = tmp("empty.bin");
        let ext = ExternalEdgeList::create(&g, &path).unwrap();
        assert_eq!(ext.m(), 0);
        let s = count_triangles_external(&ext, 3).unwrap();
        assert_eq!(s.triangles, 0);
    }
}
