//! CPU reference triangle counting (§VII) and its applications.
//!
//! Three independent counting algorithms are provided so that the
//! BFS-level Algorithm 2 implementations in `trigon-core` can be validated
//! against mutually-agreeing references:
//!
//! * [`count_matrix`] — node-iterator over the bit adjacency matrix:
//!   for every edge `{u, v}` popcount `N(u) ∩ N(v)` above `v`;
//! * [`count_edge_iterator`] — sorted-list intersection on the CSR;
//! * [`count_forward`] — the *forward* algorithm on a degree ordering,
//!   `O(m^{3/2})`, the strongest CPU baseline;
//!
//! plus the §VII applications: per-vertex local counts ("spam detection"
//! à la Becchetti et al.), clustering coefficients, transitivity, and the
//! triangle-free test (girth ≥ 4 ⟺ clique number ≤ 2).

use crate::graph::Graph;
use crate::storage::BitMatrix;

/// Node-iterator count over a bit matrix: for each edge `{u, v}` with
/// `u < v`, add `|N(u) ∩ N(v) ∩ {w : w > v}|`. Each triangle `u<v<w` is
/// found exactly once via its smallest edge.
#[must_use]
pub fn count_matrix(m: &BitMatrix) -> u64 {
    use crate::storage::AdjacencyStorage;
    let n = m.n();
    let mut total = 0u64;
    for u in 0..n {
        // Only scan v > u adjacent to u.
        let row = m.row(u);
        for (w_idx, &word) in row.iter().enumerate() {
            let mut bits = word;
            // Mask v ≤ u.
            if (w_idx as u32) * 64 <= u {
                let keep_from = u as usize + 1 - w_idx * 64;
                if keep_from >= 64 {
                    continue;
                }
                bits &= !0u64 << keep_from;
            }
            while bits != 0 {
                let v = (w_idx as u32) * 64 + bits.trailing_zeros();
                bits &= bits - 1;
                total += m.common_neighbors_above(u, v, v);
            }
        }
    }
    total
}

/// Edge-iterator count on the CSR: for each edge `{u, v}`, intersect the
/// sorted neighbor lists restricted to `w > v`.
#[must_use]
pub fn count_edge_iterator(g: &Graph) -> u64 {
    let mut total = 0u64;
    for (u, v) in g.edges() {
        total += intersect_above(g.neighbors(u), g.neighbors(v), v);
    }
    total
}

fn intersect_above(a: &[u32], b: &[u32], above: u32) -> u64 {
    let mut i = a.partition_point(|&x| x <= above);
    let mut j = b.partition_point(|&x| x <= above);
    let mut cnt = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                cnt += 1;
                i += 1;
                j += 1;
            }
        }
    }
    cnt
}

/// The *forward* algorithm: vertices are processed in decreasing-degree
/// order; each vertex keeps a dynamic list `A(v)` of already-processed
/// neighbors, and for each edge to an earlier vertex the two lists are
/// intersected. `O(m^{3/2})` — the strongest single-thread CPU baseline
/// and the timing reference for the paper's CPU curves.
#[must_use]
pub fn count_forward(g: &Graph) -> u64 {
    let n = g.n() as usize;
    // Order vertices by decreasing degree (ties by id) and rank them.
    let mut order: Vec<u32> = (0..g.n()).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    // Earlier-neighbor ranks of each vertex, ascending. Visiting them in
    // rank order is what makes each triangle counted exactly once, at its
    // largest-rank vertex via its second-largest-rank edge.
    let mut earlier: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..g.n() {
        for &u in g.neighbors(v) {
            if rank[u as usize] < rank[v as usize] {
                earlier[v as usize].push(rank[u as usize]);
            }
        }
        earlier[v as usize].sort_unstable();
    }
    // a[v] = ranks of v's earlier neighbors seen so far, sorted ascending
    // (pushes happen in ascending rank order, so no re-sort needed).
    let mut a: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut total = 0u64;
    for &v in &order {
        let mut av: Vec<u32> = Vec::with_capacity(earlier[v as usize].len());
        for &ru in &earlier[v as usize] {
            let u = order[ru as usize];
            total += sorted_intersection_count(&a[u as usize], &av);
            av.push(ru);
        }
        a[v as usize] = av;
    }
    total
}

fn sorted_intersection_count(a: &[u32], b: &[u32]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut cnt = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                cnt += 1;
                i += 1;
                j += 1;
            }
        }
    }
    cnt
}

/// Per-vertex triangle participation counts: `local[v]` = number of
/// triangles containing `v`. `Σ local = 3·ϑ(G)`. The §VII "spam
/// detection" application ranks vertices by local count vs degree.
#[must_use]
pub fn local_counts(g: &Graph) -> Vec<u64> {
    let mut local = vec![0u64; g.n() as usize];
    for (u, v) in g.edges() {
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let mut i = nu.partition_point(|&x| x <= v);
        let mut j = nv.partition_point(|&x| x <= v);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let w = nu[i];
                    local[u as usize] += 1;
                    local[v as usize] += 1;
                    local[w as usize] += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    local
}

/// Lists every triangle once as `(u, v, w)` with `u < v < w` through the
/// callback — the paper's "listing" operation mode (§VII).
pub fn list_triangles(g: &Graph, mut f: impl FnMut(u32, u32, u32)) {
    for (u, v) in g.edges() {
        let nu = g.neighbors(u);
        let nv = g.neighbors(v);
        let mut i = nu.partition_point(|&x| x <= v);
        let mut j = nv.partition_point(|&x| x <= v);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(u, v, nu[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Whether `g` is triangle-free — "equivalent to graphs with clique
/// number ≤ 2, or graphs with girth ≥ 4" (§VII). Short-circuits on the
/// first triangle.
#[must_use]
pub fn is_triangle_free(g: &Graph) -> bool {
    for (u, v) in g.edges() {
        if intersect_above(g.neighbors(u), g.neighbors(v), v) > 0 {
            return false;
        }
    }
    true
}

/// Local clustering coefficient of every vertex:
/// `2·local[v] / (deg(v)·(deg(v)-1))`, 0 for degree < 2.
#[must_use]
pub fn clustering_coefficients(g: &Graph) -> Vec<f64> {
    let local = local_counts(g);
    (0..g.n() as usize)
        .map(|v| {
            let d = g.degree(v as u32) as f64;
            if d < 2.0 {
                0.0
            } else {
                2.0 * local[v] as f64 / (d * (d - 1.0))
            }
        })
        .collect()
}

/// Transitivity ratio `3·ϑ(G) / #wedges` (0 when the graph has no wedge)
/// — the global quantity the paper says triangle counts estimate.
#[must_use]
pub fn transitivity(g: &Graph) -> f64 {
    let tri = count_edge_iterator(g);
    let wedges: u64 = (0..g.n())
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * tri as f64 / wedges as f64
    }
}

/// Brute-force `O(n³)` counter for testing the testers.
#[must_use]
pub fn count_brute_force(g: &Graph) -> u64 {
    let n = g.n();
    let mut total = 0u64;
    for u in 0..n {
        for v in u + 1..n {
            if !g.has_edge(u, v) {
                continue;
            }
            for w in v + 1..n {
                if g.has_edge(u, w) && g.has_edge(v, w) {
                    total += 1;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use trigon_combin::binom;

    fn all_counts(g: &Graph) -> [u64; 4] {
        [
            count_brute_force(g),
            count_matrix(&g.to_bitmatrix()),
            count_edge_iterator(g),
            count_forward(g),
        ]
    }

    fn assert_all_equal(g: &Graph, expect: u64, label: &str) {
        for (i, c) in all_counts(g).into_iter().enumerate() {
            assert_eq!(c, expect, "{label}: algorithm {i}");
        }
    }

    #[test]
    fn closed_forms() {
        assert_all_equal(&gen::complete(8), binom(8, 3) as u64, "K8");
        assert_all_equal(&gen::complete(3), 1, "K3");
        assert_all_equal(&gen::path(10), 0, "P10");
        assert_all_equal(&gen::cycle(3), 1, "C3");
        assert_all_equal(&gen::cycle(10), 0, "C10");
        assert_all_equal(&gen::star(10), 0, "star");
        assert_all_equal(&gen::complete_bipartite(4, 5), 0, "K45");
        assert_all_equal(&gen::grid2d(5, 5), 0, "grid");
        assert_all_equal(
            &gen::disjoint_cliques(3, 5),
            3 * binom(5, 3) as u64,
            "cliques",
        );
    }

    #[test]
    fn algorithms_agree_on_random_graphs() {
        for seed in 0..6u64 {
            let g = gen::gnp(120, 0.08, seed);
            let c = all_counts(&g);
            assert!(c.iter().all(|&x| x == c[0]), "seed {seed}: {c:?}");
        }
        for seed in 0..3u64 {
            let g = gen::barabasi_albert(200, 4, seed);
            let c = all_counts(&g);
            assert!(c.iter().all(|&x| x == c[0]), "ba seed {seed}: {c:?}");
        }
        let g = gen::watts_strogatz(150, 6, 0.2, 1);
        let c = all_counts(&g);
        assert!(c.iter().all(|&x| x == c[0]), "ws: {c:?}");
    }

    #[test]
    fn counts_span_word_boundaries() {
        // > 64 and > 128 vertices stress the BitMatrix multi-word rows.
        let g = gen::complete(130);
        assert_eq!(count_matrix(&g.to_bitmatrix()), binom(130, 3) as u64);
    }

    #[test]
    fn local_counts_sum_to_three_times_total() {
        let g = gen::gnp(90, 0.1, 2);
        let total = count_edge_iterator(&g);
        let local = local_counts(&g);
        assert_eq!(local.iter().sum::<u64>(), 3 * total);
    }

    #[test]
    fn listing_matches_counting_and_is_canonical() {
        let g = gen::gnp(60, 0.15, 3);
        let mut seen = std::collections::BTreeSet::new();
        list_triangles(&g, |u, v, w| {
            assert!(u < v && v < w, "non-canonical triple ({u},{v},{w})");
            assert!(g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w));
            assert!(seen.insert((u, v, w)), "duplicate ({u},{v},{w})");
        });
        assert_eq!(seen.len() as u64, count_edge_iterator(&g));
    }

    #[test]
    fn triangle_free_detection() {
        assert!(is_triangle_free(&gen::complete_bipartite(10, 10)));
        assert!(is_triangle_free(&gen::grid2d(6, 6)));
        assert!(is_triangle_free(&gen::random_bipartite(15, 15, 0.4, 1)));
        assert!(!is_triangle_free(&gen::complete(3)));
        assert!(!is_triangle_free(&gen::watts_strogatz(60, 4, 0.0, 0)));
    }

    #[test]
    fn clustering_coefficient_known_values() {
        // Triangle: every vertex has coefficient 1.
        let cc = clustering_coefficients(&gen::complete(3));
        assert!(cc.iter().all(|&c| (c - 1.0).abs() < 1e-12));
        // Star: all zero.
        let cc = clustering_coefficients(&gen::star(8));
        assert!(cc.iter().all(|&c| c == 0.0));
        // Path: zero (degree-1 endpoints and degree-2 middles, no triangles).
        let cc = clustering_coefficients(&gen::path(5));
        assert!(cc.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn transitivity_known_values() {
        assert!((transitivity(&gen::complete(10)) - 1.0).abs() < 1e-12);
        assert_eq!(transitivity(&gen::star(10)), 0.0);
        assert_eq!(transitivity(&gen::path(2)), 0.0); // no wedge at all
                                                      // Lattice WS has transitivity 0.5 for k = 4:
                                                      // each vertex: C(4,2)=6 wedges, 3 triangles per vertex·3/..: known value 0.5.
        let t = transitivity(&gen::watts_strogatz(100, 4, 0.0, 0));
        assert!((t - 0.5).abs() < 1e-9, "lattice transitivity {t}");
    }

    #[test]
    fn empty_graphs() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_all_equal(&g, 0, "null graph");
        let g1 = Graph::from_edges(5, &[]).unwrap();
        assert_all_equal(&g1, 0, "edgeless");
        assert!(is_triangle_free(&g1));
    }
}
