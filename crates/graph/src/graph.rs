//! The canonical undirected simple graph type.

use crate::storage::{BitMatrix, Csr, SUtm, Utm};
use std::fmt;

/// Errors raised while constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge `(u, u)` was supplied; the paper's graphs are simple.
    SelfLoop(u32),
    /// An endpoint was `≥ n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The declared vertex count.
        n: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(u) => write!(f, "self-loop at vertex {u}"),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for n = {n}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph `G = (V, E)` with `V = {0, …, n-1}`.
///
/// Construction deduplicates parallel edges and rejects self-loops.
/// Internally a CSR with sorted neighbor lists; conversions to the §IV
/// bit-packed storage models are provided for the GPU-side layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    csr: Csr,
    m: usize,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// Duplicate edges (in either orientation) are merged. Self-loops and
    /// out-of-range endpoints are errors.
    ///
    /// ```
    /// use trigon_graph::Graph;
    /// let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 2)]).unwrap();
    /// assert_eq!(g.m(), 2);
    /// assert!(g.has_edge(0, 1));
    /// assert!(!g.has_edge(0, 2));
    /// ```
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            for w in [u, v] {
                if w >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: w, n });
                }
            }
        }
        let csr = Csr::from_edges(n, edges);
        let m = csr.arc_count() / 2;
        Ok(Self { csr, m })
    }

    /// Number of vertices `|V|`.
    #[inline]
    #[must_use]
    pub fn n(&self) -> u32 {
        use crate::storage::AdjacencyStorage;
        self.csr.n()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Sorted neighbor list of `u`.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        self.csr.neighbors(u)
    }

    /// Degree of `u`.
    #[inline]
    #[must_use]
    pub fn degree(&self, u: u32) -> usize {
        self.csr.degree(u)
    }

    /// Largest degree in the graph (0 for the empty graph).
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    #[inline]
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        use crate::storage::AdjacencyStorage;
        self.csr.has_edge(u, v)
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Borrow of the underlying CSR.
    #[must_use]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Materializes the full bit adjacency matrix (Eq. 1 layout).
    #[must_use]
    pub fn to_bitmatrix(&self) -> BitMatrix {
        let mut m = BitMatrix::new(self.n());
        for (u, v) in self.edges() {
            m.set_edge(u, v);
        }
        m
    }

    /// Materializes the UTM packing (Eq. 2 layout).
    #[must_use]
    pub fn to_utm(&self) -> Utm {
        let mut m = Utm::new(self.n());
        for (u, v) in self.edges() {
            m.set_edge(u, v);
        }
        m
    }

    /// Materializes the S-UTM packing (the paper's densest model).
    #[must_use]
    pub fn to_sutm(&self) -> SUtm {
        let mut m = SUtm::new(self.n());
        for (u, v) in self.edges() {
            m.set_edge(u, v);
        }
        m
    }

    /// Extracts the induced subgraph on `verts` (which need not be
    /// sorted), relabelling vertices to `0 … verts.len()-1` in the given
    /// order. Returns the subgraph and the old-id mapping `new → old`.
    ///
    /// # Panics
    ///
    /// Panics if `verts` contains duplicates or out-of-range ids.
    #[must_use]
    pub fn induced_subgraph(&self, verts: &[u32]) -> (Graph, Vec<u32>) {
        let mut new_id = vec![u32::MAX; self.n() as usize];
        for (i, &v) in verts.iter().enumerate() {
            assert!(v < self.n(), "vertex {v} out of range");
            assert!(new_id[v as usize] == u32::MAX, "duplicate vertex {v}");
            new_id[v as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for &v in verts {
            for &w in self.neighbors(v) {
                if v < w && new_id[w as usize] != u32::MAX {
                    edges.push((new_id[v as usize], new_id[w as usize]));
                }
            }
        }
        let g = Graph::from_edges(verts.len() as u32, &edges)
            .expect("induced subgraph edges are valid by construction");
        (g, verts.to_vec())
    }

    /// Density `2m / (n(n-1))`, 0.0 for `n < 2`.
    #[must_use]
    pub fn density(&self) -> f64 {
        let n = f64::from(self.n());
        if n < 2.0 {
            return 0.0;
        }
        2.0 * self.m as f64 / (n * (n - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_queries() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 5);
        assert!(g.has_edge(4, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 3 })
        );
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (2, 3)]).unwrap();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn conversions_agree() {
        use crate::storage::AdjacencyStorage;
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let bm = g.to_bitmatrix();
        let utm = g.to_utm();
        let sutm = g.to_sutm();
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(bm.has_edge(u, v), g.has_edge(u, v));
                assert_eq!(utm.has_edge(u, v), g.has_edge(u, v));
                assert_eq!(sutm.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[2, 0, 1]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3); // the triangle survives relabelling
        assert_eq!(map, vec![2, 0, 1]);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && sub.has_edge(0, 2));
    }

    #[test]
    fn density_bounds() {
        let empty = Graph::from_edges(4, &[]).unwrap();
        assert_eq!(empty.density(), 0.0);
        let full = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert!((full.density() - 1.0).abs() < 1e-12);
        let single = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(single.density(), 0.0);
    }

    #[test]
    fn error_display() {
        assert_eq!(GraphError::SelfLoop(3).to_string(), "self-loop at vertex 3");
        assert_eq!(
            GraphError::VertexOutOfRange { vertex: 9, n: 4 }.to_string(),
            "vertex 9 out of range for n = 4"
        );
    }
}
