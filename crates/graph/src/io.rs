//! Edge-list I/O in the whitespace format SNAP distributes its datasets
//! in: one `u v` pair per line, `#`-prefixed comment lines ignored.
//! Vertices are remapped densely so sparse external ids load correctly.

use crate::graph::{Graph, GraphError};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};

/// Errors from parsing an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying reader/writer failure.
    Io(io::Error),
    /// A data line that is not two integers.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The edges violated simple-graph constraints.
    Graph(GraphError),
    /// A structural violation of the dataset format (bad MatrixMarket
    /// banner, non-square dimensions, out-of-range indices).
    Format {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: expected `u v`, got {content:?}")
            }
            IoError::Graph(e) => write!(f, "invalid graph: {e}"),
            IoError::Format { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a SNAP-style edge list. External ids are remapped to
/// `0 … n-1` in first-appearance order; the mapping `new → external` is
/// returned alongside the graph. Self-loops in the input are *skipped*
/// (SNAP files contain them; the paper's graphs are simple), duplicates
/// merged.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>), IoError> {
    let mut ids: HashMap<u64, u32> = HashMap::new();
    let mut back: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let intern = |x: u64, ids: &mut HashMap<u64, u32>, back: &mut Vec<u64>| -> u32 {
        *ids.entry(x).or_insert_with(|| {
            back.push(x);
            (back.len() - 1) as u32
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        match (parse(it.next()), parse(it.next()), it.next()) {
            (Some(u), Some(v), None) => {
                if u == v {
                    continue; // drop self-loops as SNAP loaders conventionally do
                }
                let ui = intern(u, &mut ids, &mut back);
                let vi = intern(v, &mut ids, &mut back);
                edges.push((ui, vi));
            }
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: t.to_string(),
                });
            }
        }
    }
    let g = Graph::from_edges(back.len() as u32, &edges).map_err(IoError::Graph)?;
    Ok((g, back))
}

/// Dataset file formats [`read_dataset`] can ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFormat {
    /// Sniff the format from the content: a `%%MatrixMarket` banner
    /// selects [`DatasetFormat::MatrixMarket`], anything else is a SNAP
    /// edge list.
    Auto,
    /// SNAP whitespace edge list (`u v` pairs, `#` comments).
    EdgeList,
    /// MatrixMarket coordinate format (see [`crate::mm`]).
    MatrixMarket,
}

impl DatasetFormat {
    /// Parses a CLI format name (`auto`, `edges`/`edge-list`/`snap`,
    /// `mm`/`mtx`/`matrix-market`). Returns `None` for unknown names.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Some(DatasetFormat::Auto),
            "edges" | "edge-list" | "edgelist" | "snap" => Some(DatasetFormat::EdgeList),
            "mm" | "mtx" | "matrix-market" | "matrixmarket" => Some(DatasetFormat::MatrixMarket),
            _ => None,
        }
    }
}

/// Reads a graph dataset in the requested [`DatasetFormat`].
///
/// [`DatasetFormat::Auto`] peeks the buffered head of the reader: a
/// `%%MatrixMarket` banner routes to [`crate::mm::read_matrix_market`],
/// anything else to [`read_edge_list`]. Both return the same
/// `(graph, new → external id)` pair.
pub fn read_dataset<R: BufRead>(
    mut reader: R,
    format: DatasetFormat,
) -> Result<(Graph, Vec<u64>), IoError> {
    let format = match format {
        DatasetFormat::Auto => {
            if reader.fill_buf()?.starts_with(b"%%MatrixMarket") {
                DatasetFormat::MatrixMarket
            } else {
                DatasetFormat::EdgeList
            }
        }
        f => f,
    };
    match format {
        DatasetFormat::MatrixMarket => crate::mm::read_matrix_market(reader),
        _ => read_edge_list(reader),
    }
}

/// Writes `g` as an edge list with a `#` header, one `u v` per line.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(w, "# trigon edge list: n = {}, m = {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let g = gen::gnp(50, 0.1, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, back) = read_edge_list(buf.as_slice()).unwrap();
        // First-appearance order of our own writer preserves vertex ids for
        // graphs without isolated vertices; compare structurally instead.
        assert_eq!(g2.m(), g.m());
        assert_eq!(back.len() as u32, g2.n());
        let remap: std::collections::BTreeSet<(u64, u64)> = g2
            .edges()
            .map(|(u, v)| {
                let (a, b) = (back[u as usize], back[v as usize]);
                (a.min(b), a.max(b))
            })
            .collect();
        let orig: std::collections::BTreeSet<(u64, u64)> = g
            .edges()
            .map(|(u, v)| (u64::from(u), u64::from(v)))
            .collect();
        assert_eq!(remap, orig);
    }

    #[test]
    fn skips_comments_blanks_and_self_loops() {
        let text = "# header\n\n1 2\n2 2\n2 3\n# trailing\n";
        let (g, back) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn remaps_sparse_ids() {
        let text = "1000000 5\n5 999\n";
        let (g, back) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(back, vec![1_000_000, 5, 999]);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && !g.has_edge(0, 2));
    }

    #[test]
    fn merges_duplicate_edges() {
        let (g, _) = read_edge_list("1 2\n2 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list("1 2\nfoo bar\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
        let err = read_edge_list("1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let (g, back) = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 0);
        assert!(back.is_empty());
    }

    #[test]
    fn dataset_auto_detects_both_formats() {
        let g = gen::gnp(40, 0.1, 3);
        let mut snap = Vec::new();
        write_edge_list(&g, &mut snap).unwrap();
        let mut mm = Vec::new();
        crate::mm::write_matrix_market(&g, &mut mm).unwrap();
        let (a, _) = read_dataset(snap.as_slice(), DatasetFormat::Auto).unwrap();
        let (b, _) = read_dataset(mm.as_slice(), DatasetFormat::Auto).unwrap();
        assert_eq!(a.m(), g.m());
        assert_eq!(b, g);
        // An explicit format overrides sniffing.
        let (c, _) = read_dataset(snap.as_slice(), DatasetFormat::EdgeList).unwrap();
        assert_eq!(c.m(), g.m());
        assert!(read_dataset(snap.as_slice(), DatasetFormat::MatrixMarket).is_err());
    }

    #[test]
    fn dataset_format_parses_cli_names() {
        assert_eq!(DatasetFormat::parse("auto"), Some(DatasetFormat::Auto));
        assert_eq!(DatasetFormat::parse("snap"), Some(DatasetFormat::EdgeList));
        assert_eq!(DatasetFormat::parse("edges"), Some(DatasetFormat::EdgeList));
        assert_eq!(
            DatasetFormat::parse("mtx"),
            Some(DatasetFormat::MatrixMarket)
        );
        assert_eq!(
            DatasetFormat::parse("mm"),
            Some(DatasetFormat::MatrixMarket)
        );
        assert_eq!(DatasetFormat::parse("csv"), None);
    }

    #[test]
    fn rmat_roundtrips_through_both_loaders_to_identical_csr() {
        // The acceptance check: a seeded R-MAT graph survives both dataset
        // formats with its CSR intact. The MatrixMarket path declares the
        // dimension, so the graph round-trips bit-identically; the SNAP
        // path remaps by first appearance, so equality is checked after
        // applying the returned id map.
        let g = gen::rmat(512, 2048, (0.57, 0.19, 0.19, 0.05), 11);

        let mut mm = Vec::new();
        crate::mm::write_matrix_market(&g, &mut mm).unwrap();
        let (g_mm, _) = read_dataset(mm.as_slice(), DatasetFormat::Auto).unwrap();
        assert_eq!(g_mm, g, "MatrixMarket round trip must be bit-identical");
        assert_eq!(g_mm.csr(), g.csr());

        let mut snap = Vec::new();
        write_edge_list(&g, &mut snap).unwrap();
        let (g_snap, back) = read_dataset(snap.as_slice(), DatasetFormat::Auto).unwrap();
        let edges: Vec<(u32, u32)> = g_snap
            .edges()
            .map(|(u, v)| (back[u as usize] as u32, back[v as usize] as u32))
            .collect();
        let restored = Graph::from_edges(g.n(), &edges).unwrap();
        assert_eq!(restored, g, "SNAP round trip must restore the CSR");
        assert_eq!(restored.csr(), g.csr());
    }
}
