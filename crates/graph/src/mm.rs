//! MatrixMarket coordinate I/O — the exchange format SuiteSparse and the
//! post-2013 GPU-graph literature distribute adjacency matrices in.
//!
//! Only the slice of the spec a graph loader needs is supported: the
//! `matrix coordinate` object with `pattern` / `real` / `integer` fields
//! and `general` / `symmetric` symmetry. Entries are treated as
//! undirected edges regardless of symmetry class (the paper's graphs are
//! simple and undirected): both orientations collapse to one edge,
//! self-loops are dropped, duplicates merged, and any stored value is
//! ignored. The declared dimension is honored, so isolated vertices
//! survive a round trip — unlike the SNAP edge-list reader, which only
//! sees vertices with incident edges.

use crate::graph::Graph;
use crate::io::IoError;
use std::io::{BufRead, Write};

/// Reads a MatrixMarket coordinate file as an undirected simple graph.
///
/// Returns the graph together with the `new → external` id map the
/// edge-list reader also produces; MatrixMarket ids are dense and
/// 1-based, so the map is simply `v ↦ v + 1`.
///
/// # Errors
///
/// [`IoError::Format`] for a missing/unsupported banner, a non-square
/// dimension line, or out-of-range indices; [`IoError::Parse`] for
/// malformed entry lines; [`IoError::Io`] for reader failures.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>), IoError> {
    let mut lines = reader.lines().enumerate();

    // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (lineno, banner) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i, line);
                }
            }
            None => {
                return Err(IoError::Format {
                    line: 1,
                    msg: "empty file: expected a %%MatrixMarket banner".to_string(),
                });
            }
        }
    };
    let fields: Vec<String> = banner
        .split_whitespace()
        .map(str::to_ascii_lowercase)
        .collect();
    let bad_banner = |msg: &str| IoError::Format {
        line: lineno + 1,
        msg: format!("{msg}, got {:?}", banner.trim()),
    };
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(bad_banner(
            "expected `%%MatrixMarket matrix coordinate <field> <symmetry>`",
        ));
    }
    if fields[2] != "coordinate" {
        return Err(bad_banner(
            "only the coordinate (sparse) format is supported",
        ));
    }
    let field = fields[3].as_str();
    if !matches!(field, "pattern" | "real" | "integer") {
        return Err(bad_banner("unsupported field type"));
    }
    if let Some(sym) = fields.get(4) {
        if !matches!(sym.as_str(), "general" | "symmetric") {
            return Err(bad_banner("unsupported symmetry class"));
        }
    }

    // Dimension line: rows cols nnz (after % comments).
    let (n, declared_nnz, dim_line) = loop {
        let Some((i, line)) = lines.next() else {
            return Err(IoError::Format {
                line: lineno + 2,
                msg: "missing `rows cols nnz` dimension line".to_string(),
            });
        };
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let nums: Vec<Option<u64>> = t.split_whitespace().map(|s| s.parse().ok()).collect();
        match nums.as_slice() {
            [Some(r), Some(c), Some(nnz)] => {
                if r != c {
                    return Err(IoError::Format {
                        line: i + 1,
                        msg: format!("adjacency matrix must be square, got {r}x{c}"),
                    });
                }
                if *r > u64::from(u32::MAX) {
                    return Err(IoError::Format {
                        line: i + 1,
                        msg: format!("dimension {r} exceeds the u32 vertex space"),
                    });
                }
                break (*r as u32, *nnz, i);
            }
            _ => {
                return Err(IoError::Parse {
                    line: i + 1,
                    content: t.to_string(),
                });
            }
        }
    };

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(declared_nnz as usize);
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u64> { s.and_then(|x| x.parse().ok()) };
        let (u, v) = match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(IoError::Parse {
                    line: i + 1,
                    content: t.to_string(),
                });
            }
        };
        // pattern entries have no value; real/integer carry one. Accept
        // either, but a non-numeric trailer is malformed.
        let trailer = it.next();
        if it.next().is_some() || (trailer.is_some() && trailer.unwrap().parse::<f64>().is_err()) {
            return Err(IoError::Parse {
                line: i + 1,
                content: t.to_string(),
            });
        }
        if u == 0 || v == 0 || u > u64::from(n) || v > u64::from(n) {
            return Err(IoError::Format {
                line: i + 1,
                msg: format!("entry ({u}, {v}) outside the declared 1..={n} vertex range"),
            });
        }
        if u == v {
            continue; // drop self-loops; the paper's graphs are simple
        }
        edges.push(((u - 1) as u32, (v - 1) as u32));
    }
    if dim_line == 0 && n == 0 && !edges.is_empty() {
        unreachable!("entries were range-checked against n = 0");
    }
    let g = Graph::from_edges(n, &edges).map_err(IoError::Graph)?;
    let back: Vec<u64> = (1..=u64::from(n)).collect();
    Ok((g, back))
}

/// Writes `g` as a `pattern symmetric` MatrixMarket coordinate file:
/// the lower triangle of the adjacency matrix, one 1-based `i j` entry
/// per undirected edge.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_matrix_market<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(w, "% trigon graph: n = {}, m = {}", g.n(), g.m())?;
    writeln!(w, "{} {} {}", g.n(), g.n(), g.m())?;
    for (u, v) in g.edges() {
        // edges() yields u < v; the symmetric class stores i >= j.
        writeln!(w, "{} {}", v + 1, u + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_structure_and_isolates() {
        let g = gen::rmat(256, 1024, (0.57, 0.19, 0.19, 0.05), 7);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let (g2, back) = read_matrix_market(buf.as_slice()).unwrap();
        // The declared dimension keeps isolated R-MAT vertices, so the
        // CSR round-trips bit-identically — no remapping.
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        assert_eq!(back, (1..=u64::from(g.n())).collect::<Vec<_>>());
        let a: Vec<(u32, u32)> = g.edges().collect();
        let b: Vec<(u32, u32)> = g2.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_general_with_values_and_merges_orientations() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    4 4 5\n\
                    1 2 0.5\n\
                    2 1 0.5\n\
                    3 3 1.0\n\
                    2 4 2.0\n\
                    4 3 -1\n";
        let (g, back) = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3); // (1,2) dedup'd, (3,3) self-loop dropped
        assert_eq!(back, vec![1, 2, 3, 4]);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 3) && g.has_edge(2, 3));
    }

    #[test]
    fn pattern_entries_need_no_value() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n";
        let (g, _) = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
    }

    #[test]
    fn rejects_bad_banner_shape_and_range() {
        let e = read_matrix_market("1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Format { line: 1, .. }), "{e}");
        let e = read_matrix_market("%%MatrixMarket matrix array real general\n3 3 0\n".as_bytes())
            .unwrap_err();
        assert!(matches!(e, IoError::Format { .. }), "{e}");
        let e = read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n3 4 0\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(e, IoError::Format { line: 2, .. }), "{e}");
        let e = read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 9\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(e, IoError::Format { line: 3, .. }), "{e}");
        let e = read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 two\n".as_bytes(),
        )
        .unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn empty_matrix_is_isolated_vertices() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n5 5 0\n";
        let (g, _) = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!((g.n(), g.m()), (5, 0));
    }
}
