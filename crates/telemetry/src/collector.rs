//! The [`Collector`]: named counters, gauges, and scoped phase timers.
//!
//! A collector is threaded by value through a pipeline run; stages add
//! counters (`add`), record point-in-time values (`gauge`), and time
//! phases with the RAII [`PhaseGuard`] from [`Collector::phase`].
//! Everything is insertion-ordered so reports are deterministic, and
//! collection can be disabled entirely ([`Level::Off`]) at which point
//! every call is a cheap no-op.

use crate::clock::{monotonic, Clock};
use crate::json::Json;
use std::sync::Arc;

/// How much telemetry to gather during a run. Levels are ordered:
/// `Off < Standard < Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Level {
    /// Gather nothing; all collector calls are no-ops.
    Off,
    /// Gather counters, gauges, and phase timings (the default).
    #[default]
    Standard,
    /// Additionally record time-resolved spans, instants, and
    /// histograms in a [`Tracer`](crate::Tracer).
    Trace,
}

/// Accumulates counters, gauges, and phase timings during a run.
#[derive(Debug)]
pub struct Collector {
    level: Level,
    clock: Arc<dyn Clock>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    phases: Vec<(String, f64)>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector gathering at [`Level::Standard`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_level(Level::Standard)
    }

    /// A collector gathering at the given level on a fresh monotonic
    /// clock.
    #[must_use]
    pub fn with_level(level: Level) -> Self {
        Self::with_clock(level, monotonic())
    }

    /// A collector at the given level with an injected time source
    /// (share the clock with a [`Tracer`](crate::Tracer) so phase
    /// timings and spans agree; inject a
    /// [`ManualClock`](crate::ManualClock) for deterministic tests).
    #[must_use]
    pub fn with_clock(level: Level, clock: Arc<dyn Clock>) -> Self {
        Self {
            level,
            clock,
            counters: Vec::new(),
            gauges: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// A collector that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self::with_level(Level::Off)
    }

    /// This collector's time source.
    #[must_use]
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Whether this collector records anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.level != Level::Off
    }

    /// Adds `delta` to the counter `name`, creating it at zero first if
    /// needed.
    pub fn add(&mut self, name: &str, delta: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(slot) = self.counters.iter_mut().find(|(k, _)| k == name) {
            slot.1 += delta;
        } else {
            self.counters.push((name.to_string(), delta));
        }
    }

    /// Records the latest value of the gauge `name` (overwrites).
    pub fn gauge(&mut self, name: &str, value: f64) {
        if !self.enabled() {
            return;
        }
        if let Some(slot) = self.gauges.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            self.gauges.push((name.to_string(), value));
        }
    }

    /// Starts timing the phase `name`; the elapsed wall time is recorded
    /// when the returned guard drops. Nested and repeated phases
    /// accumulate.
    pub fn phase<'c>(&'c mut self, name: &str) -> PhaseGuard<'c> {
        PhaseGuard {
            start_ns: self.clock.now_ns(),
            name: name.to_string(),
            collector: self,
        }
    }

    /// Directly accumulates `seconds` of wall time into phase `name`
    /// (for callers that already measured).
    pub fn phase_seconds(&mut self, name: &str, seconds: f64) {
        if !self.enabled() {
            return;
        }
        if let Some(slot) = self.phases.iter_mut().find(|(k, _)| k == name) {
            slot.1 += seconds;
        } else {
            self.phases.push((name.to_string(), seconds));
        }
    }

    /// The current value of counter `name`, or 0 if never touched.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The current value of gauge `name`, if recorded.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Accumulated wall seconds for phase `name`, or 0.
    #[must_use]
    pub fn phase_total(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// Merges another collector's contents into this one (counters and
    /// phases accumulate; the other's gauges overwrite).
    pub fn merge(&mut self, other: &Collector) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge(k, *v);
        }
        for (k, v) in &other.phases {
            self.phase_seconds(k, *v);
        }
    }

    /// Serializes counters, gauges, and phases into a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counters = Json::object();
        for (k, v) in &self.counters {
            counters.set(k, Json::from(*v));
        }
        let mut gauges = Json::object();
        for (k, v) in &self.gauges {
            gauges.set(k, Json::from(*v));
        }
        let mut phases = Json::object();
        for (k, v) in &self.phases {
            phases.set(k, Json::from(*v));
        }
        let mut out = Json::object();
        out.set("counters", counters);
        out.set("gauges", gauges);
        out.set("phases_s", phases);
        out
    }
}

/// RAII guard from [`Collector::phase`]; records elapsed time from the
/// collector's clock on drop.
pub struct PhaseGuard<'c> {
    start_ns: u64,
    name: String,
    collector: &'c mut Collector,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let end_ns = self.collector.clock.now_ns();
        let dt = end_ns.saturating_sub(self.start_ns) as f64 / 1e9;
        let name = std::mem::take(&mut self.name);
        self.collector.phase_seconds(&name, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut c = Collector::new();
        c.add("tests", 3);
        c.add("tests", 4);
        assert_eq!(c.counter("tests"), 7);
        assert_eq!(c.counter("missing"), 0);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = Collector::disabled();
        c.add("tests", 3);
        c.gauge("g", 1.0);
        c.phase_seconds("p", 1.0);
        assert_eq!(c.counter("tests"), 0);
        assert_eq!(c.gauge_value("g"), None);
        assert_eq!(c.phase_total("p"), 0.0);
    }

    #[test]
    fn phase_guard_records_elapsed_time() {
        let mut c = Collector::new();
        {
            let _g = c.phase("count");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(c.phase_total("count") > 0.0);
        // Repeats accumulate.
        let before = c.phase_total("count");
        {
            let _g = c.phase("count");
        }
        assert!(c.phase_total("count") >= before);
    }

    #[test]
    fn gauges_overwrite() {
        let mut c = Collector::new();
        c.gauge("camping", 1.5);
        c.gauge("camping", 2.5);
        assert_eq!(c.gauge_value("camping"), Some(2.5));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Collector::new();
        a.add("x", 1);
        a.phase_seconds("p", 0.5);
        let mut b = Collector::new();
        b.add("x", 2);
        b.phase_seconds("p", 0.25);
        b.gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.phase_total("p"), 0.75);
        assert_eq!(a.gauge_value("g"), Some(9.0));
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Standard);
        assert!(Level::Standard < Level::Trace);
    }

    #[test]
    fn injected_manual_clock_makes_phases_deterministic() {
        use crate::clock::ManualClock;
        use std::sync::Arc;
        let clock = ManualClock::new();
        let mut c = Collector::with_clock(Level::Standard, Arc::new(clock.clone()));
        {
            let _g = c.phase("count");
            clock.advance_ns(1_500_000_000);
        }
        assert_eq!(c.phase_total("count"), 1.5);
    }

    #[test]
    fn to_json_shape() {
        let mut c = Collector::new();
        c.add("tx", 10);
        c.gauge("util", 0.5);
        c.phase_seconds("count", 0.1);
        let j = c.to_json();
        assert_eq!(
            j.key_paths(),
            vec![
                "counters",
                "counters.tx",
                "gauges",
                "gauges.util",
                "phases_s",
                "phases_s.count",
            ]
        );
    }
}
