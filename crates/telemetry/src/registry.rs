//! Counter registry: the fixed vocabulary of profiler counters and the
//! derived metrics computed from them.
//!
//! The GPU simulator attributes its accounting to work units as bundles
//! of named integer counters; this registry is the single place those
//! names, units, and derivations live. Consumers (the run report, the
//! CLI hotspot table, bench emitters) look metrics up here instead of
//! hard-coding ratios, so a new counter or derived metric lands in every
//! surface at once.

/// Definition of one raw profiler counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterDef {
    /// Stable counter name (matches the profile record field).
    pub name: &'static str,
    /// Unit the counter is denominated in.
    pub unit: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// The raw profiler counters, in canonical report order.
pub const COUNTERS: &[CounterDef] = &[
    CounterDef {
        name: "tests",
        unit: "combinations",
        help: "combination tests performed or accounted",
    },
    CounterDef {
        name: "instructions",
        unit: "instructions",
        help: "modeled instructions (a fixed count per combination test)",
    },
    CounterDef {
        name: "transactions",
        unit: "transactions",
        help: "global-memory transactions issued under the coalescing rules",
    },
    CounterDef {
        name: "min_transactions",
        unit: "transactions",
        help: "transactions a perfectly coalesced access pattern would issue",
    },
    CounterDef {
        name: "bank_conflicts",
        unit: "accesses",
        help: "extra shared-memory accesses serialized by bank conflicts",
    },
    CounterDef {
        name: "compute_cycles",
        unit: "cycles",
        help: "priced compute cycles",
    },
    CounterDef {
        name: "mem_cycles",
        unit: "cycles",
        help: "priced base (pre-camping) memory cycles",
    },
    CounterDef {
        name: "blocks",
        unit: "blocks",
        help: "thread blocks or chunks that carried the work",
    },
];

/// Resolves a raw counter name to its value (unknown names yield 0).
pub type CounterLookup<'a> = &'a dyn Fn(&str) -> f64;

/// Definition of one derived metric over the raw counters.
pub struct DerivedDef {
    /// Stable metric name.
    pub name: &'static str,
    /// One-line description.
    pub help: &'static str,
    compute: fn(CounterLookup<'_>) -> f64,
}

impl std::fmt::Debug for DerivedDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DerivedDef")
            .field("name", &self.name)
            .field("help", &self.help)
            .finish()
    }
}

impl DerivedDef {
    /// Evaluates the metric; `get` resolves raw counter names to values
    /// (unknown names must resolve to 0).
    #[must_use]
    pub fn eval(&self, get: CounterLookup<'_>) -> f64 {
        (self.compute)(get)
    }
}

/// `n / d`, or `default` when the denominator is zero.
fn ratio(n: f64, d: f64, default: f64) -> f64 {
    if d == 0.0 {
        default
    } else {
        n / d
    }
}

/// The derived metrics, in canonical report order.
pub const DERIVED: &[DerivedDef] = &[
    DerivedDef {
        name: "coalescing_efficiency",
        help: "min_transactions / transactions; 1.0 = perfectly coalesced",
        compute: |get| ratio(get("min_transactions"), get("transactions"), 1.0),
    },
    DerivedDef {
        name: "tests_per_transaction",
        help: "combination tests amortized per memory transaction",
        compute: |get| ratio(get("tests"), get("transactions"), 0.0),
    },
    DerivedDef {
        name: "mem_cycle_share",
        help: "fraction of priced cycles spent on memory",
        compute: |get| {
            ratio(
                get("mem_cycles"),
                get("compute_cycles") + get("mem_cycles"),
                0.0,
            )
        },
    },
    DerivedDef {
        name: "instructions_per_cycle",
        help: "modeled instructions per priced cycle",
        compute: |get| {
            ratio(
                get("instructions"),
                get("compute_cycles") + get("mem_cycles"),
                0.0,
            )
        },
    },
];

/// Looks up a raw counter definition by name.
#[must_use]
pub fn counter_def(name: &str) -> Option<&'static CounterDef> {
    COUNTERS.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn counter_names_are_unique_and_resolvable() {
        for (i, d) in COUNTERS.iter().enumerate() {
            assert!(
                COUNTERS[i + 1..].iter().all(|o| o.name != d.name),
                "duplicate counter {}",
                d.name
            );
            assert_eq!(counter_def(d.name), Some(d));
        }
        assert_eq!(counter_def("no_such_counter"), None);
    }

    #[test]
    fn derived_metrics_evaluate_and_guard_zero_denominators() {
        let mut v: HashMap<&str, f64> = HashMap::new();
        v.insert("min_transactions", 25.0);
        v.insert("transactions", 100.0);
        v.insert("tests", 3200.0);
        v.insert("compute_cycles", 60.0);
        v.insert("mem_cycles", 40.0);
        v.insert("instructions", 38400.0);
        let get = |name: &str| v.get(name).copied().unwrap_or(0.0);

        let by_name = |n: &str| DERIVED.iter().find(|d| d.name == n).unwrap();
        assert!((by_name("coalescing_efficiency").eval(&get) - 0.25).abs() < 1e-12);
        assert!((by_name("tests_per_transaction").eval(&get) - 32.0).abs() < 1e-12);
        assert!((by_name("mem_cycle_share").eval(&get) - 0.4).abs() < 1e-12);
        assert!((by_name("instructions_per_cycle").eval(&get) - 384.0).abs() < 1e-12);

        // All-zero counters: every metric still yields a finite value.
        let zero = |_: &str| 0.0;
        for d in DERIVED {
            assert!(d.eval(&zero).is_finite(), "{} not finite at zero", d.name);
        }
        assert_eq!(by_name("coalescing_efficiency").eval(&zero), 1.0);
    }
}
