//! Span-based execution tracing: nested RAII spans, instant events,
//! counter samples, log-scale histograms, and Chrome trace-event
//! export.
//!
//! The [`Tracer`] complements the aggregate [`Collector`](crate::Collector)
//! with *time-resolved* records on two axes:
//!
//! - **Host spans** are measured in wall-clock nanoseconds from an
//!   injectable [`Clock`] (deterministic under a
//!   [`ManualClock`](crate::ManualClock)). They nest via RAII guards
//!   from [`Tracer::span`].
//! - **Device spans** live on simulated tracks — one per SM plus a PCIe
//!   lane — and are stamped in *device cycles* by the GPU simulator via
//!   [`Tracer::device_span`]. Export converts cycles to microseconds
//!   using the device clock rate.
//!
//! Everything is a cheap no-op unless the tracer level is
//! [`Level::Trace`]; the disabled path performs no allocation (asserted
//! by a unit test with a counting allocator).
//!
//! [`Tracer::to_chrome_trace`] serializes the whole record set in the
//! Chrome trace-event JSON format, loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev). [`Tracer::summary`] reduces it
//! to a [`TraceSummary`] suitable for embedding in a run report.

use crate::clock::{monotonic, Clock};
use crate::collector::Level;
use crate::json::Json;
use std::cell::RefCell;
use std::sync::Arc;

/// Number of power-of-two histogram buckets; bucket `i` covers values
/// in `[2^(i-64), 2^(i-63))`, so the range spans `2^-64 ..= 2^63`.
const HIST_BUCKETS: usize = 128;

/// Which timeline a span or instant belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// Host wall-clock timeline (nanoseconds from the tracer clock).
    Host,
    /// The PCIe transfer lane of the simulated device (device cycles).
    Pcie,
    /// One streaming multiprocessor of the simulated device
    /// (device cycles).
    Sm(u32),
    /// The PCIe/interconnect lane of fleet device `d` (multi-device
    /// runs; device cycles of that device's clock).
    DevicePcie(u32),
    /// SM `sm` of fleet device `d` (multi-device runs; `DeviceSm(d, sm)`
    /// in that device's cycles).
    DeviceSm(u32, u32),
}

/// A typed attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    UInt(u64),
    /// Floating-point attribute.
    Float(f64),
    /// String attribute.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::UInt(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::UInt(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::UInt(v) => Json::from(*v),
            AttrValue::Float(v) => Json::from(*v),
            AttrValue::Str(v) => Json::from(v.as_str()),
        }
    }
}

/// A finished span. Host spans are in nanoseconds; device spans
/// ([`Track::Pcie`], [`Track::Sm`]) are in simulated device cycles.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (e.g. `"count"`, `"block 17"`).
    pub name: String,
    /// Category label (e.g. `"phase"`, `"kernel"`).
    pub cat: String,
    /// Timeline the span belongs to.
    pub track: Track,
    /// Start time (ns on host, cycles on device tracks).
    pub start: u64,
    /// Duration (same unit as `start`).
    pub dur: u64,
    /// Nesting depth at open time (host spans only; 0 = top level).
    pub depth: u32,
    /// Key/value attributes.
    pub args: Vec<(String, AttrValue)>,
}

/// A point-in-time marker. Instants on device tracks carry
/// simulated-cycle timestamps, so their sequence is fully deterministic
/// — fault-injection tests compare them with `==` across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantRecord {
    /// Event name.
    pub name: String,
    /// Timeline the instant belongs to.
    pub track: Track,
    /// Timestamp (ns on host, cycles on device tracks).
    pub at: u64,
}

/// One counter sample: the value of a named counter at a point in time
/// on one track. Exported as a Chrome trace-event counter (`"ph":"C"`),
/// which Perfetto renders as a graph lane alongside the track's spans.
/// Device-track samples carry simulated-cycle timestamps, so their
/// sequence is fully deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRecord {
    /// Counter name (e.g. `"sm.transactions"`).
    pub name: String,
    /// Timeline the sample belongs to.
    pub track: Track,
    /// Timestamp (ns on host, cycles on device tracks).
    pub at: u64,
    /// Sampled value.
    pub value: f64,
}

/// A log-scale (power-of-two bucket) histogram with min/max/sum
/// tracking and interpolated quantiles.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    zeros: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            zeros: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Records one sample. Non-finite samples are ignored; values
    /// `<= 0` land in a dedicated zero bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v <= 0.0 {
            self.zeros += 1;
            return;
        }
        let idx = (v.log2().floor() + 64.0).clamp(0.0, (HIST_BUCKETS - 1) as f64) as usize;
        self.buckets[idx] += 1;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another histogram's samples into this one (bucket-exact:
    /// both sides use the same power-of-two bucketing).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.zeros += other.zeros;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Smallest recorded sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Interpolated quantile `q` in `[0, 1]`. Buckets are power-of-two
    /// wide, so the answer is exact only at bucket edges; the result is
    /// geometrically interpolated within the landing bucket and clamped
    /// to `[min, max]` (which makes single-sample and all-equal
    /// histograms exact). `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).max(1.0);
        let mut cum = self.zeros as f64;
        if cum >= target {
            return Some(0.0f64.clamp(self.min, self.max));
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n as f64;
            if next >= target {
                let lo = 2f64.powi(i as i32 - 64);
                let frac = (target - cum) / n as f64;
                // Geometric interpolation inside the [lo, 2*lo) bucket.
                let v = lo * 2f64.powf(frac);
                return Some(v.clamp(self.min, self.max));
            }
            cum = next;
        }
        Some(self.max)
    }
}

struct OpenSpan {
    name: String,
    cat: String,
    start_ns: u64,
    depth: u32,
    args: Vec<(String, AttrValue)>,
}

#[derive(Debug, Clone, Default)]
struct TracerInner {
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    counters: Vec<CounterRecord>,
    histograms: Vec<(String, Histogram)>,
    depth: u32,
    device_clock_hz: f64,
}

/// Records spans, instants, and histograms during a run.
///
/// All recording methods take `&self` (interior mutability) so host
/// spans can nest: an outer [`SpanGuard`] stays alive while inner
/// guards open and close.
///
/// ```
/// use trigon_telemetry::{ManualClock, Tracer, Level};
/// use std::sync::Arc;
///
/// let clock = ManualClock::new();
/// let tracer = Tracer::with_clock(Level::Trace, Arc::new(clock.clone()));
/// {
///     let mut run = tracer.span("run", "phase");
///     run.attr("n", 1000u64);
///     clock.advance_ns(5_000);
///     {
///         let _count = tracer.span("count", "phase");
///         clock.advance_ns(20_000);
///     }
/// }
/// let s = tracer.summary();
/// assert_eq!(s.spans, 2);
/// assert!((s.critical_path_s - 25e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    level: Level,
    clock: Arc<dyn Clock>,
    inner: RefCell<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer recording at [`Level::Trace`] on a fresh monotonic
    /// clock.
    #[must_use]
    pub fn new() -> Self {
        Self::with_level(Level::Trace)
    }

    /// A tracer at the given level (recording only at
    /// [`Level::Trace`]) on a fresh monotonic clock.
    #[must_use]
    pub fn with_level(level: Level) -> Self {
        Self::with_clock(level, monotonic())
    }

    /// A tracer at the given level with an injected clock.
    #[must_use]
    pub fn with_clock(level: Level, clock: Arc<dyn Clock>) -> Self {
        Self {
            level,
            clock,
            inner: RefCell::new(TracerInner::default()),
        }
    }

    /// A tracer that records nothing (every call is a no-op that does
    /// not allocate).
    #[must_use]
    pub fn disabled() -> Self {
        Self::with_level(Level::Off)
    }

    /// Whether spans are being recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.level >= Level::Trace
    }

    /// The tracer's time source (share it with a
    /// [`Collector`](crate::Collector) so both agree on phase times).
    #[must_use]
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Sets the simulated device clock rate used to convert device
    /// cycles to microseconds at export time.
    pub fn set_device_clock_hz(&self, hz: f64) {
        if !self.enabled() {
            return;
        }
        self.inner.borrow_mut().device_clock_hz = hz;
    }

    /// Opens a host span; it closes (and is recorded) when the returned
    /// guard drops. Spans nest freely.
    #[must_use]
    pub fn span(&self, name: &str, cat: &str) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                tracer: self,
                open: None,
            };
        }
        let depth = {
            let mut inner = self.inner.borrow_mut();
            let d = inner.depth;
            inner.depth += 1;
            d
        };
        SpanGuard {
            tracer: self,
            open: Some(OpenSpan {
                name: name.to_string(),
                cat: cat.to_string(),
                start_ns: self.clock.now_ns(),
                depth,
                args: Vec::new(),
            }),
        }
    }

    /// Records a completed device-time span (cycles) on a PCIe or SM
    /// track, with attributes.
    pub fn device_span(
        &self,
        name: &str,
        cat: &str,
        track: Track,
        start_cycles: u64,
        dur_cycles: u64,
        args: &[(&str, AttrValue)],
    ) {
        if !self.enabled() {
            return;
        }
        self.inner.borrow_mut().spans.push(SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            track,
            start: start_cycles,
            dur: dur_cycles,
            depth: 0,
            args: args
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    /// Records an instant event on the host timeline at "now".
    pub fn instant(&self, name: &str) {
        if !self.enabled() {
            return;
        }
        let at = self.clock.now_ns();
        self.inner.borrow_mut().instants.push(InstantRecord {
            name: name.to_string(),
            track: Track::Host,
            at,
        });
    }

    /// Records an instant event at an explicit time on any track.
    pub fn instant_at(&self, name: &str, track: Track, at: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.borrow_mut().instants.push(InstantRecord {
            name: name.to_string(),
            track,
            at,
        });
    }

    /// Records a counter sample at an explicit time on any track; the
    /// Chrome export turns it into a `"ph":"C"` counter event that
    /// Perfetto graphs alongside the track's spans. No-op (and no
    /// allocation) when the tracer is disabled.
    pub fn counter(&self, name: &str, track: Track, at: u64, value: f64) {
        if !self.enabled() {
            return;
        }
        self.inner.borrow_mut().counters.push(CounterRecord {
            name: name.to_string(),
            track,
            at,
            value,
        });
    }

    /// Records one sample into the named histogram (created on first
    /// use).
    pub fn record(&self, hist: &str, v: f64) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        if let Some(slot) = inner.histograms.iter_mut().find(|(k, _)| k == hist) {
            slot.1.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            inner.histograms.push((hist.to_string(), h));
        }
    }

    /// Merges every histogram recorded by `other` into this tracer
    /// (used by multi-device runs to fold per-shard sub-traces into the
    /// fleet trace). No-op when this tracer is disabled.
    pub fn absorb_histograms(&self, other: &Tracer) {
        if !self.enabled() {
            return;
        }
        let theirs = other.inner.borrow();
        let mut mine = self.inner.borrow_mut();
        for (name, h) in &theirs.histograms {
            if let Some(slot) = mine.histograms.iter_mut().find(|(k, _)| k == name) {
                slot.1.merge(h);
            } else {
                mine.histograms.push((name.clone(), h.clone()));
            }
        }
    }

    /// Number of recorded spans (host + device).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// A copy of the named histogram, if any samples were recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .borrow()
            .histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h.clone())
    }

    /// All finished spans (host spans in ns, device spans in cycles).
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.borrow().spans.clone()
    }

    /// All recorded instants, in recording order (host instants in ns,
    /// device instants in cycles).
    #[must_use]
    pub fn instants(&self) -> Vec<InstantRecord> {
        self.inner.borrow().instants.clone()
    }

    /// All recorded counter samples, in recording order.
    #[must_use]
    pub fn counters(&self) -> Vec<CounterRecord> {
        self.inner.borrow().counters.clone()
    }

    /// Number of recorded counter samples.
    #[must_use]
    pub fn counter_count(&self) -> usize {
        self.inner.borrow().counters.len()
    }

    fn device_clock_hz(&self) -> f64 {
        let hz = self.inner.borrow().device_clock_hz;
        if hz > 0.0 {
            hz
        } else {
            1e9 // fall back to 1 cycle == 1 ns
        }
    }

    /// Reduces the recorded trace to summary statistics.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let inner = self.inner.borrow();
        let host: Vec<&SpanRecord> = inner
            .spans
            .iter()
            .filter(|s| s.track == Track::Host)
            .collect();
        let critical_path_s = if host.is_empty() {
            0.0
        } else {
            let lo = host.iter().map(|s| s.start).min().unwrap_or(0);
            let hi = host.iter().map(|s| s.start + s.dur).max().unwrap_or(0);
            (hi - lo) as f64 / 1e9
        };
        let host_busy_s = interval_union_len(
            host.iter()
                .map(|s| (s.start, s.start + s.dur))
                .collect::<Vec<_>>(),
        ) as f64
            / 1e9;

        let device_spans: Vec<&SpanRecord> = inner
            .spans
            .iter()
            .filter(|s| s.track != Track::Host)
            .collect();
        let device = if device_spans.is_empty() {
            None
        } else {
            let makespan_cycles = device_spans
                .iter()
                .map(|s| s.start + s.dur)
                .max()
                .unwrap_or(0);
            let max_sm = device_spans
                .iter()
                .filter_map(|s| match s.track {
                    Track::Sm(i) => Some(i),
                    _ => None,
                })
                .max();
            let per_sm: Vec<SmSummary> = match max_sm {
                None => Vec::new(),
                Some(top) => (0..=top)
                    .map(|i| {
                        let mine: Vec<&&SpanRecord> = device_spans
                            .iter()
                            .filter(|s| s.track == Track::Sm(i))
                            .collect();
                        let busy = interval_union_len(
                            mine.iter()
                                .map(|s| (s.start, s.start + s.dur))
                                .collect::<Vec<_>>(),
                        );
                        SmSummary {
                            sm: i,
                            spans: mine.len(),
                            busy_cycles: busy,
                            idle_cycles: makespan_cycles.saturating_sub(busy),
                        }
                    })
                    .collect(),
            };
            let busy_cycles: u64 = per_sm.iter().map(|s| s.busy_cycles).sum();
            let idle_cycles: u64 = per_sm.iter().map(|s| s.idle_cycles).sum();
            let mean_busy_frac = if per_sm.is_empty() || makespan_cycles == 0 {
                0.0
            } else {
                per_sm
                    .iter()
                    .map(|s| s.busy_cycles as f64 / makespan_cycles as f64)
                    .sum::<f64>()
                    / per_sm.len() as f64
            };
            Some(DeviceSummary {
                sms: per_sm.len(),
                spans: device_spans.len(),
                makespan_cycles,
                busy_cycles,
                idle_cycles,
                mean_busy_frac,
            })
        };

        let histograms = inner
            .histograms
            .iter()
            .map(|(name, h)| HistogramSummary {
                name: name.clone(),
                count: h.count(),
                min: h.min().unwrap_or(0.0),
                max: h.max().unwrap_or(0.0),
                mean: h.mean().unwrap_or(0.0),
                p50: h.quantile(0.5).unwrap_or(0.0),
                p90: h.quantile(0.9).unwrap_or(0.0),
                p99: h.quantile(0.99).unwrap_or(0.0),
            })
            .collect();

        TraceSummary {
            spans: inner.spans.len(),
            instants: inner.instants.len(),
            host_busy_s,
            critical_path_s,
            device,
            histograms,
        }
    }

    /// Serializes the trace in Chrome trace-event JSON
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` or
    /// Perfetto. Host spans land in process 0; the simulated device is
    /// process 1 with the PCIe lane on thread 0 and SM `i` on thread
    /// `i + 1`. Device cycles are converted to microseconds using the
    /// device clock rate.
    #[must_use]
    pub fn to_chrome_trace(&self) -> Json {
        let inner = self.inner.borrow();
        let hz = self.device_clock_hz();
        let cycles_to_us = 1e6 / hz;
        let mut events: Vec<Json> = Vec::new();

        let has_host = inner.spans.iter().any(|s| s.track == Track::Host)
            || inner.instants.iter().any(|i| i.track == Track::Host);
        let has_device = inner
            .spans
            .iter()
            .any(|s| matches!(s.track, Track::Pcie | Track::Sm(_)))
            || inner
                .instants
                .iter()
                .any(|i| matches!(i.track, Track::Pcie | Track::Sm(_)));
        if has_host {
            events.push(meta_event("process_name", 0, 0, "host"));
            events.push(meta_event("thread_name", 0, 0, "pipeline"));
        }
        if has_device {
            events.push(meta_event("process_name", 1, 0, "device (simulated)"));
            events.push(meta_event("thread_name", 1, 0, "PCIe"));
            let mut sms: Vec<u32> = inner
                .spans
                .iter()
                .filter_map(|s| match s.track {
                    Track::Sm(i) => Some(i),
                    _ => None,
                })
                .collect();
            sms.sort_unstable();
            sms.dedup();
            for i in sms {
                events.push(meta_event("thread_name", 1, i + 1, &format!("SM {i}")));
            }
        }
        // Fleet devices (multi-device runs): device `d` is process 2 + d.
        let mut fleet: Vec<u32> = inner
            .spans
            .iter()
            .map(|s| s.track)
            .chain(inner.instants.iter().map(|i| i.track))
            .filter_map(|t| match t {
                Track::DevicePcie(d) | Track::DeviceSm(d, _) => Some(d),
                _ => None,
            })
            .collect();
        fleet.sort_unstable();
        fleet.dedup();
        for d in fleet {
            let pid = 2 + d;
            events.push(meta_event(
                "process_name",
                pid,
                0,
                &format!("device {d} (simulated)"),
            ));
            events.push(meta_event("thread_name", pid, 0, "PCIe"));
            let mut sms: Vec<u32> = inner
                .spans
                .iter()
                .filter_map(|s| match s.track {
                    Track::DeviceSm(dd, i) if dd == d => Some(i),
                    _ => None,
                })
                .collect();
            sms.sort_unstable();
            sms.dedup();
            for i in sms {
                events.push(meta_event("thread_name", pid, i + 1, &format!("SM {i}")));
            }
        }

        for s in &inner.spans {
            let (pid, tid, ts, dur) = match s.track {
                Track::Host => (0u32, 0u32, s.start as f64 / 1e3, s.dur as f64 / 1e3),
                Track::Pcie => (
                    1,
                    0,
                    s.start as f64 * cycles_to_us,
                    s.dur as f64 * cycles_to_us,
                ),
                Track::Sm(i) => (
                    1,
                    i + 1,
                    s.start as f64 * cycles_to_us,
                    s.dur as f64 * cycles_to_us,
                ),
                Track::DevicePcie(d) => (
                    2 + d,
                    0,
                    s.start as f64 * cycles_to_us,
                    s.dur as f64 * cycles_to_us,
                ),
                Track::DeviceSm(d, i) => (
                    2 + d,
                    i + 1,
                    s.start as f64 * cycles_to_us,
                    s.dur as f64 * cycles_to_us,
                ),
            };
            let mut ev = Json::object();
            ev.set("name", Json::from(s.name.as_str()));
            ev.set("cat", Json::from(s.cat.as_str()));
            ev.set("ph", Json::from("X"));
            ev.set("pid", Json::from(pid));
            ev.set("tid", Json::from(tid));
            ev.set("ts", Json::from(ts));
            ev.set("dur", Json::from(dur));
            if !s.args.is_empty() {
                let mut args = Json::object();
                for (k, v) in &s.args {
                    args.set(k, v.to_json());
                }
                ev.set("args", args);
            }
            events.push(ev);
        }

        for i in &inner.instants {
            let (pid, tid, ts) = match i.track {
                Track::Host => (0u32, 0u32, i.at as f64 / 1e3),
                Track::Pcie => (1, 0, i.at as f64 * cycles_to_us),
                Track::Sm(m) => (1, m + 1, i.at as f64 * cycles_to_us),
                Track::DevicePcie(d) => (2 + d, 0, i.at as f64 * cycles_to_us),
                Track::DeviceSm(d, m) => (2 + d, m + 1, i.at as f64 * cycles_to_us),
            };
            let mut ev = Json::object();
            ev.set("name", Json::from(i.name.as_str()));
            ev.set("ph", Json::from("i"));
            ev.set("s", Json::from("t"));
            ev.set("pid", Json::from(pid));
            ev.set("tid", Json::from(tid));
            ev.set("ts", Json::from(ts));
            events.push(ev);
        }

        for c in &inner.counters {
            let (pid, tid, ts) = match c.track {
                Track::Host => (0u32, 0u32, c.at as f64 / 1e3),
                Track::Pcie => (1, 0, c.at as f64 * cycles_to_us),
                Track::Sm(m) => (1, m + 1, c.at as f64 * cycles_to_us),
                Track::DevicePcie(d) => (2 + d, 0, c.at as f64 * cycles_to_us),
                Track::DeviceSm(d, m) => (2 + d, m + 1, c.at as f64 * cycles_to_us),
            };
            let mut args = Json::object();
            args.set("value", Json::from(c.value));
            let mut ev = Json::object();
            ev.set("name", Json::from(c.name.as_str()));
            ev.set("ph", Json::from("C"));
            ev.set("pid", Json::from(pid));
            ev.set("tid", Json::from(tid));
            ev.set("ts", Json::from(ts));
            ev.set("args", args);
            events.push(ev);
        }

        let mut out = Json::object();
        out.set("traceEvents", Json::Array(events));
        out.set("displayTimeUnit", Json::from("ms"));
        out
    }

    /// Buckets device-track spans into `width` cells per lane for ASCII
    /// rendering: lane 0 is PCIe (when present), then one lane per SM.
    /// Cell values are busy fractions in `[0, 1]`. Empty when no device
    /// spans were recorded.
    #[must_use]
    pub fn sm_occupancy(&self, width: usize) -> Vec<SmLane> {
        let inner = self.inner.borrow();
        let device_spans: Vec<&SpanRecord> = inner
            .spans
            .iter()
            .filter(|s| s.track != Track::Host)
            .collect();
        let makespan = device_spans
            .iter()
            .map(|s| s.start + s.dur)
            .max()
            .unwrap_or(0);
        if makespan == 0 || width == 0 {
            return Vec::new();
        }
        let mut lanes: Vec<(Track, String)> = Vec::new();
        if device_spans.iter().any(|s| s.track == Track::Pcie) {
            lanes.push((Track::Pcie, "PCIe".to_string()));
        }
        let mut sms: Vec<u32> = device_spans
            .iter()
            .filter_map(|s| match s.track {
                Track::Sm(i) => Some(i),
                _ => None,
            })
            .collect();
        sms.sort_unstable();
        sms.dedup();
        for i in &sms {
            lanes.push((Track::Sm(*i), format!("SM {i:>2}")));
        }
        // Fleet lanes (multi-device runs): per device, PCIe then SMs.
        let mut fleet: Vec<u32> = device_spans
            .iter()
            .filter_map(|s| match s.track {
                Track::DevicePcie(d) | Track::DeviceSm(d, _) => Some(d),
                _ => None,
            })
            .collect();
        fleet.sort_unstable();
        fleet.dedup();
        for d in fleet {
            if device_spans.iter().any(|s| s.track == Track::DevicePcie(d)) {
                lanes.push((Track::DevicePcie(d), format!("D{d} PCIe")));
            }
            let mut dsms: Vec<u32> = device_spans
                .iter()
                .filter_map(|s| match s.track {
                    Track::DeviceSm(dd, i) if dd == d => Some(i),
                    _ => None,
                })
                .collect();
            dsms.sort_unstable();
            dsms.dedup();
            for i in dsms {
                lanes.push((Track::DeviceSm(d, i), format!("D{d} SM {i:>2}")));
            }
        }
        let cell_w = makespan as f64 / width as f64;
        lanes
            .into_iter()
            .map(|(track, label)| {
                let mine: Vec<&&SpanRecord> =
                    device_spans.iter().filter(|s| s.track == track).collect();
                let mut cells = vec![0.0f64; width];
                for s in &mine {
                    let (a, b) = (s.start as f64, (s.start + s.dur) as f64);
                    let first = ((a / cell_w).floor() as usize).min(width - 1);
                    let last = ((b / cell_w).ceil() as usize).clamp(first + 1, width);
                    for (j, cell) in cells.iter_mut().enumerate().take(last).skip(first) {
                        let lo = j as f64 * cell_w;
                        let hi = lo + cell_w;
                        let overlap = (b.min(hi) - a.max(lo)).max(0.0);
                        *cell += overlap / cell_w;
                    }
                }
                for c in &mut cells {
                    *c = c.min(1.0);
                }
                let busy = interval_union_len(
                    mine.iter()
                        .map(|s| (s.start, s.start + s.dur))
                        .collect::<Vec<_>>(),
                );
                SmLane {
                    label,
                    busy_frac: busy as f64 / makespan as f64,
                    spans: mine.len(),
                    cells,
                }
            })
            .collect()
    }
}

/// RAII guard for an open host span from [`Tracer::span`]; the span is
/// recorded when the guard drops.
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    open: Option<OpenSpan>,
}

impl SpanGuard<'_> {
    /// Attaches a key/value attribute. No-op (and no allocation) when
    /// the tracer is disabled.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) -> &mut Self {
        if let Some(open) = &mut self.open {
            open.args.push((key.to_string(), value.into()));
        }
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let end = self.tracer.clock.now_ns();
            let mut inner = self.tracer.inner.borrow_mut();
            inner.depth = inner.depth.saturating_sub(1);
            inner.spans.push(SpanRecord {
                name: open.name,
                cat: open.cat,
                track: Track::Host,
                start: open.start_ns,
                dur: end.saturating_sub(open.start_ns),
                depth: open.depth,
                args: open.args,
            });
        }
    }
}

/// One lane of the ASCII device timeline from [`Tracer::sm_occupancy`].
#[derive(Debug, Clone)]
pub struct SmLane {
    /// Lane label (`"PCIe"` or `"SM  3"`).
    pub label: String,
    /// Per-cell busy fraction in `[0, 1]`.
    pub cells: Vec<f64>,
    /// Fraction of the device makespan this lane was busy.
    pub busy_frac: f64,
    /// Number of spans on the lane.
    pub spans: usize,
}

/// Per-SM reduction inside a [`DeviceSummary`].
#[derive(Debug, Clone)]
pub struct SmSummary {
    /// SM index.
    pub sm: u32,
    /// Spans executed on this SM.
    pub spans: usize,
    /// Cycles this SM was busy (union of its spans).
    pub busy_cycles: u64,
    /// Cycles idle within the device makespan.
    pub idle_cycles: u64,
}

/// Device-side reduction inside a [`TraceSummary`].
#[derive(Debug, Clone)]
pub struct DeviceSummary {
    /// Number of SM lanes with at least one span recorded below the
    /// highest occupied index.
    pub sms: usize,
    /// Device spans (SM + PCIe).
    pub spans: usize,
    /// Last device-span end time in cycles (kernel + transfer
    /// makespan).
    pub makespan_cycles: u64,
    /// Total busy cycles summed over SMs.
    pub busy_cycles: u64,
    /// Total idle cycles summed over SMs.
    pub idle_cycles: u64,
    /// Mean per-SM busy fraction of the makespan.
    pub mean_busy_frac: f64,
}

/// Quantile digest of one histogram inside a [`TraceSummary`].
#[derive(Debug, Clone)]
pub struct HistogramSummary {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean sample.
    pub mean: f64,
    /// Median (interpolated).
    pub p50: f64,
    /// 90th percentile (interpolated).
    pub p90: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
}

/// Summary statistics of a recorded trace, embeddable in a run report.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Total spans (host + device).
    pub spans: usize,
    /// Total instant events.
    pub instants: usize,
    /// Union length of host spans in seconds.
    pub host_busy_s: f64,
    /// Host-side critical path: last span end minus first span start.
    pub critical_path_s: f64,
    /// Device reduction, when any device spans were recorded.
    pub device: Option<DeviceSummary>,
    /// Histogram digests in recording order.
    pub histograms: Vec<HistogramSummary>,
}

impl TraceSummary {
    /// Serializes the summary as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut out = Json::object();
        out.set("spans", Json::from(self.spans));
        out.set("instants", Json::from(self.instants));
        out.set("host_busy_s", Json::from(self.host_busy_s));
        out.set("critical_path_s", Json::from(self.critical_path_s));
        match &self.device {
            None => {
                out.set("device", Json::Null);
            }
            Some(d) => {
                let mut dev = Json::object();
                dev.set("sms", Json::from(d.sms));
                dev.set("spans", Json::from(d.spans));
                dev.set("makespan_cycles", Json::from(d.makespan_cycles));
                dev.set("busy_cycles", Json::from(d.busy_cycles));
                dev.set("idle_cycles", Json::from(d.idle_cycles));
                dev.set("mean_busy_frac", Json::from(d.mean_busy_frac));
                out.set("device", dev);
            }
        }
        let hists: Vec<Json> = self
            .histograms
            .iter()
            .map(|h| {
                let mut j = Json::object();
                j.set("name", Json::from(h.name.as_str()));
                j.set("count", Json::from(h.count));
                j.set("min", Json::from(h.min));
                j.set("max", Json::from(h.max));
                j.set("mean", Json::from(h.mean));
                j.set("p50", Json::from(h.p50));
                j.set("p90", Json::from(h.p90));
                j.set("p99", Json::from(h.p99));
                j
            })
            .collect();
        out.set("histograms", Json::Array(hists));
        out
    }
}

fn meta_event(name: &str, pid: u32, tid: u32, value: &str) -> Json {
    let mut args = Json::object();
    args.set("name", Json::from(value));
    let mut ev = Json::object();
    ev.set("name", Json::from(name));
    ev.set("ph", Json::from("M"));
    ev.set("pid", Json::from(pid));
    ev.set("tid", Json::from(tid));
    ev.set("args", args);
    ev
}

/// Total length of the union of half-open intervals.
fn interval_union_len(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in iv {
        match cur {
            None => cur = Some((a, b)),
            Some((ca, cb)) => {
                if a <= cb {
                    cur = Some((ca, cb.max(b)));
                } else {
                    total += cb - ca;
                    cur = Some((a, b));
                }
            }
        }
    }
    if let Some((ca, cb)) = cur {
        total += cb - ca;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    mod alloc_probe {
        use std::alloc::{GlobalAlloc, Layout, System};
        use std::cell::Cell;

        thread_local! {
            static ALLOCS: Cell<u64> = const { Cell::new(0) };
        }

        struct Counting;

        // SAFETY: delegates straight to the system allocator; the
        // thread-local counter is const-initialized with a non-Drop
        // type, so bumping it cannot recurse into the allocator.
        unsafe impl GlobalAlloc for Counting {
            unsafe fn alloc(&self, l: Layout) -> *mut u8 {
                ALLOCS.with(|a| a.set(a.get() + 1));
                System.alloc(l)
            }
            unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
                System.dealloc(p, l);
            }
        }

        #[global_allocator]
        static COUNTING: Counting = Counting;

        pub fn allocations_on_this_thread() -> u64 {
            ALLOCS.with(|a| a.get())
        }
    }

    fn manual_tracer() -> (ManualClock, Tracer) {
        let clock = ManualClock::new();
        let tracer = Tracer::with_clock(Level::Trace, Arc::new(clock.clone()));
        (clock, tracer)
    }

    #[test]
    fn disabled_span_path_allocates_nothing() {
        let t = Tracer::disabled();
        let before = alloc_probe::allocations_on_this_thread();
        for _ in 0..64 {
            let mut g = t.span("phase-name", "category");
            g.attr("numeric", 42u64);
            g.attr("text", "a string that would allocate if converted");
            t.record("histogram-name", 12.5);
            t.instant("marker");
            t.device_span(
                "block",
                "kernel",
                Track::Sm(3),
                10,
                20,
                &[("transactions", AttrValue::UInt(7))],
            );
            t.counter("sm.transactions", Track::Sm(3), 30, 7.0);
        }
        let after = alloc_probe::allocations_on_this_thread();
        assert_eq!(after, before, "disabled tracer path must not allocate");
        assert_eq!(t.span_count(), 0);
        assert_eq!(t.counter_count(), 0);
    }

    #[test]
    fn counters_export_as_chrome_counter_events() {
        let (_clock, t) = manual_tracer();
        t.set_device_clock_hz(1e6); // 1 cycle == 1 us
        t.device_span("b0", "kernel", Track::Sm(2), 0, 10, &[]);
        t.counter("sm.transactions", Track::Sm(2), 10, 42.0);
        t.counter("sm.occupancy", Track::DeviceSm(1, 0), 5, 1.0);
        assert_eq!(t.counter_count(), 2);
        let j = t.to_chrome_trace();
        let events = match j.get("traceEvents") {
            Some(Json::Array(evs)) => evs.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        let cs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("C".into())))
            .collect();
        assert_eq!(cs.len(), 2);
        // Same pid/tid mapping as spans: SM 2 of the single device.
        assert_eq!(cs[0].get("pid"), Some(&Json::UInt(1)));
        assert_eq!(cs[0].get("tid"), Some(&Json::UInt(3)));
        assert_eq!(cs[0].get("ts"), Some(&Json::Float(10.0)));
        let args = cs[0].get("args").expect("counter args");
        assert_eq!(args.get("value"), Some(&Json::Float(42.0)));
        // Fleet device 1, SM 0 -> pid 3, tid 1.
        assert_eq!(cs[1].get("pid"), Some(&Json::UInt(3)));
        assert_eq!(cs[1].get("tid"), Some(&Json::UInt(1)));
    }

    #[test]
    fn nested_spans_record_depth_and_duration() {
        let (clock, t) = manual_tracer();
        {
            let mut outer = t.span("run", "phase");
            outer.attr("n", 100u64);
            clock.advance_ns(1_000);
            {
                let _inner = t.span("count", "phase");
                clock.advance_ns(2_000);
            }
            clock.advance_ns(500);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].name, "count");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].dur, 2_000);
        assert_eq!(spans[1].name, "run");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].dur, 3_500);
        assert_eq!(spans[1].args, vec![("n".to_string(), AttrValue::UInt(100))]);
    }

    #[test]
    fn histogram_empty_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn histogram_single_sample_is_exact_everywhere() {
        let mut h = Histogram::new();
        h.record(37.5);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(37.5));
        }
        assert_eq!(h.mean(), Some(37.5));
    }

    #[test]
    fn histogram_all_equal_samples_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(8.0);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(8.0));
        }
        assert_eq!(h.min(), Some(8.0));
        assert_eq!(h.max(), Some(8.0));
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u32 {
            h.record(f64::from(i));
        }
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        assert!((1.0..=1000.0).contains(&p50));
        assert!(p99 <= 1000.0);
        // Log-bucket resolution: within a factor of 2 of the truth.
        assert!((250.0..=1000.0).contains(&p50));
    }

    #[test]
    fn histogram_zero_and_negative_samples() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(0.0);
        h.record(4.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn summary_reduces_host_and_device() {
        let (clock, t) = manual_tracer();
        {
            let _g = t.span("run", "phase");
            clock.advance_ns(10_000);
        }
        t.device_span("xfer", "pcie", Track::Pcie, 0, 100, &[]);
        t.device_span("b0", "kernel", Track::Sm(0), 100, 300, &[]);
        t.device_span("b1", "kernel", Track::Sm(1), 100, 100, &[]);
        t.record("block.cycles", 300.0);
        t.record("block.cycles", 100.0);
        let s = t.summary();
        assert_eq!(s.spans, 4);
        assert!((s.critical_path_s - 10e-6).abs() < 1e-15);
        let d = s.device.expect("device summary");
        assert_eq!(d.sms, 2);
        assert_eq!(d.makespan_cycles, 400);
        assert_eq!(d.busy_cycles, 300 + 100);
        // SM0 idle 100, SM1 idle 300.
        assert_eq!(d.idle_cycles, 400);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].count, 2);
    }

    #[test]
    fn chrome_trace_shape_and_units() {
        let (clock, t) = manual_tracer();
        t.set_device_clock_hz(1e6); // 1 cycle == 1 us
        {
            let _g = t.span("run", "phase");
            clock.advance_ns(5_000);
        }
        t.device_span("b0", "kernel", Track::Sm(2), 10, 20, &[]);
        let j = t.to_chrome_trace();
        let events = match j.get("traceEvents") {
            Some(Json::Array(evs)) => evs.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        // Metadata for host process/thread, device process, PCIe lane,
        // SM 2 lane; then 2 spans.
        let metas: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("M".into())))
            .collect();
        assert_eq!(metas.len(), 5);
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&Json::Str("X".into())))
            .collect();
        assert_eq!(xs.len(), 2);
        let host = xs
            .iter()
            .find(|e| e.get("pid") == Some(&Json::UInt(0)))
            .unwrap();
        assert_eq!(host.get("dur"), Some(&Json::Float(5.0))); // 5000 ns = 5 us
        let dev = xs
            .iter()
            .find(|e| e.get("pid") == Some(&Json::UInt(1)))
            .unwrap();
        assert_eq!(dev.get("tid"), Some(&Json::UInt(3))); // SM 2 -> tid 3
        assert_eq!(dev.get("ts"), Some(&Json::Float(10.0)));
        assert_eq!(dev.get("dur"), Some(&Json::Float(20.0)));
    }

    #[test]
    fn sm_occupancy_lanes_and_fractions() {
        let (_clock, t) = manual_tracer();
        t.device_span("xfer", "pcie", Track::Pcie, 0, 50, &[]);
        t.device_span("b0", "kernel", Track::Sm(0), 50, 50, &[]);
        t.device_span("b1", "kernel", Track::Sm(1), 50, 25, &[]);
        let lanes = t.sm_occupancy(10);
        assert_eq!(lanes.len(), 3);
        assert_eq!(lanes[0].label, "PCIe");
        assert!((lanes[0].busy_frac - 0.5).abs() < 1e-12);
        assert!((lanes[1].busy_frac - 0.5).abs() < 1e-12);
        assert!((lanes[2].busy_frac - 0.25).abs() < 1e-12);
        // PCIe busy in the first half of the timeline only.
        assert!(lanes[0].cells[0] > 0.9);
        assert!(lanes[0].cells[9] < 0.1);
        assert!(lanes[1].cells[9] > 0.9);
    }

    #[test]
    fn trace_summary_json_keys_are_stable() {
        let (clock, t) = manual_tracer();
        {
            let _g = t.span("run", "phase");
            clock.advance_ns(100);
        }
        t.device_span("b", "kernel", Track::Sm(0), 0, 10, &[]);
        t.record("h", 2.0);
        let paths = t.summary().to_json().key_paths();
        for expect in [
            "spans",
            "instants",
            "host_busy_s",
            "critical_path_s",
            "device",
            "device.sms",
            "device.makespan_cycles",
            "device.mean_busy_frac",
            "histograms",
            "histograms[].name",
            "histograms[].p99",
        ] {
            assert!(paths.iter().any(|p| p == expect), "missing {expect}");
        }
    }
}
