//! Minimal JSON value tree and serializer.
//!
//! The workspace has no serde (offline build), and run reports are the
//! only thing that needs serialization, so this module hand-rolls the
//! small subset required: objects with insertion-ordered keys, arrays,
//! strings, bools, integers, and finite floats. Non-finite floats
//! serialize as `null` (JSON has no NaN/Infinity).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer number.
    UInt(u64),
    /// Floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Parses a JSON document. Integers without sign parse as
    /// [`Json::UInt`], negative integers as [`Json::Int`], and anything
    /// with a fraction or exponent as [`Json::Float`] — matching how
    /// the serializer writes them, so documents round-trip.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax
    /// error, including trailing garbage after the top-level value.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Inserts or replaces `key` in an object. Panics if `self` is not
    /// an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Object(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Every key path in the value tree, dotted and sorted; array
    /// elements do not contribute paths beyond their parent key. Used by
    /// schema tests to pin the report shape without pinning values.
    #[must_use]
    pub fn key_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        self.collect_paths("", &mut paths);
        paths.sort();
        paths.dedup();
        paths
    }

    fn collect_paths(&self, prefix: &str, out: &mut Vec<String>) {
        match self {
            Json::Object(fields) => {
                for (k, v) in fields {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    out.push(path.clone());
                    v.collect_paths(&path, out);
                }
            }
            Json::Array(items) => {
                // Arrays are homogeneous in run reports; describe the
                // element shape once under `prefix[]`.
                if let Some(first) = items.first() {
                    first.collect_paths(&format!("{prefix}[]"), out);
                }
            }
            _ => {}
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    if *f == f.trunc() && f.abs() < 1e15 {
                        // Keep a decimal point so the value round-trips
                        // as a float.
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(b),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.eat_literal("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos - 1
                            ))
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape '{s}'"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let mut obj = Json::object();
        obj.set("n", Json::from(3u64));
        obj.set("name", Json::from("a\"b"));
        obj.set("xs", Json::from(vec![1i64, 2, 3]));
        let mut inner = Json::object();
        inner.set("f", Json::Float(1.5));
        inner.set("nan", Json::Float(f64::NAN));
        obj.set("inner", inner);
        assert_eq!(
            obj.to_string_compact(),
            r#"{"n":3,"name":"a\"b","xs":[1,2,3],"inner":{"f":1.5,"nan":null}}"#
        );
        assert!(obj.to_string_pretty().contains("\n  \"n\": 3"));
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::Float(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn key_paths_are_sorted_and_nested() {
        let mut obj = Json::object();
        obj.set("b", Json::from(1u64));
        let mut inner = Json::object();
        inner.set("x", Json::Null);
        obj.set("a", Json::Array(vec![inner]));
        assert_eq!(obj.key_paths(), vec!["a", "a[].x", "b"]);
    }

    #[test]
    fn parse_roundtrips_serializer_output() {
        let mut obj = Json::object();
        obj.set("n", Json::from(3u64));
        obj.set("i", Json::from(-7i64));
        obj.set("name", Json::from("a\"b\\c\nd"));
        obj.set("xs", Json::from(vec![1i64, 2, 3]));
        obj.set("f", Json::Float(1.5));
        obj.set("whole", Json::Float(2.0));
        obj.set("t", Json::Bool(true));
        obj.set("nil", Json::Null);
        let compact = Json::parse(&obj.to_string_compact()).unwrap();
        let pretty = Json::parse(&obj.to_string_pretty()).unwrap();
        // Int(1) serializes as "1" which reparses as UInt(1); compare
        // via re-serialization instead of tree equality.
        assert_eq!(compact.to_string_compact(), obj.to_string_compact());
        assert_eq!(pretty.to_string_compact(), obj.to_string_compact());
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse("\"a\\u00e9b\"").unwrap(),
            Json::Str("a\u{e9}b".to_string())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        // Raw UTF-8 passes through untouched.
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".to_string()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("'single'").is_err());
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut obj = Json::object();
        obj.set("k", Json::from(1u64));
        obj.set("k", Json::from(2u64));
        assert_eq!(obj.get("k"), Some(&Json::UInt(2)));
    }
}
