//! Minimal JSON value tree and serializer.
//!
//! The workspace has no serde (offline build), and run reports are the
//! only thing that needs serialization, so this module hand-rolls the
//! small subset required: objects with insertion-ordered keys, arrays,
//! strings, bools, integers, and finite floats. Non-finite floats
//! serialize as `null` (JSON has no NaN/Infinity).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer number.
    UInt(u64),
    /// Floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Inserts or replaces `key` in an object. Panics if `self` is not
    /// an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Object(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Every key path in the value tree, dotted and sorted; array
    /// elements do not contribute paths beyond their parent key. Used by
    /// schema tests to pin the report shape without pinning values.
    #[must_use]
    pub fn key_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        self.collect_paths("", &mut paths);
        paths.sort();
        paths.dedup();
        paths
    }

    fn collect_paths(&self, prefix: &str, out: &mut Vec<String>) {
        match self {
            Json::Object(fields) => {
                for (k, v) in fields {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    out.push(path.clone());
                    v.collect_paths(&path, out);
                }
            }
            Json::Array(items) => {
                // Arrays are homogeneous in run reports; describe the
                // element shape once under `prefix[]`.
                if let Some(first) = items.first() {
                    first.collect_paths(&format!("{prefix}[]"), out);
                }
            }
            _ => {}
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    if *f == f.trunc() && f.abs() < 1e15 {
                        // Keep a decimal point so the value round-trips
                        // as a float.
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip_shapes() {
        let mut obj = Json::object();
        obj.set("n", Json::from(3u64));
        obj.set("name", Json::from("a\"b"));
        obj.set("xs", Json::from(vec![1i64, 2, 3]));
        let mut inner = Json::object();
        inner.set("f", Json::Float(1.5));
        inner.set("nan", Json::Float(f64::NAN));
        obj.set("inner", inner);
        assert_eq!(
            obj.to_string_compact(),
            r#"{"n":3,"name":"a\"b","xs":[1,2,3],"inner":{"f":1.5,"nan":null}}"#
        );
        assert!(obj.to_string_pretty().contains("\n  \"n\": 3"));
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::Float(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn key_paths_are_sorted_and_nested() {
        let mut obj = Json::object();
        obj.set("b", Json::from(1u64));
        let mut inner = Json::object();
        inner.set("x", Json::Null);
        obj.set("a", Json::Array(vec![inner]));
        assert_eq!(obj.key_paths(), vec!["a", "a[].x", "b"]);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut obj = Json::object();
        obj.set("k", Json::from(1u64));
        obj.set("k", Json::from(2u64));
        assert_eq!(obj.get("k"), Some(&Json::UInt(2)));
    }
}
