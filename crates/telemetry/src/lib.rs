//! Run-report telemetry for the trigon workspace.
//!
//! Two small pieces, both dependency-free:
//!
//! - [`json`]: a hand-rolled JSON value tree and serializer (the
//!   workspace builds offline, so no serde), plus a `key_paths` helper
//!   that schema tests use to pin report shape without pinning values.
//! - [`collector`]: the [`Collector`] of named counters, gauges, and
//!   scoped phase timers that pipeline stages write into, and the
//!   [`Level`] knob that turns collection off.
//!
//! This crate sits below `trigon-core` in the dependency graph so the
//! GPU simulator crates can also emit into a collector.

#![deny(missing_docs)]

pub mod collector;
pub mod json;

pub use collector::{Collector, Level, PhaseGuard};
pub use json::Json;
