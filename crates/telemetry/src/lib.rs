//! Run-report telemetry for the trigon workspace.
//!
//! Four small pieces, all dependency-free:
//!
//! - [`json`]: a hand-rolled JSON value tree, serializer, and parser
//!   (the workspace builds offline, so no serde), plus a `key_paths`
//!   helper that schema tests use to pin report shape without pinning
//!   values.
//! - [`collector`]: the [`Collector`] of named counters, gauges, and
//!   scoped phase timers that pipeline stages write into, and the
//!   [`Level`] knob (`Off < Standard < Trace`).
//! - [`clock`]: the injectable [`Clock`] time source shared by the
//!   collector and tracer — [`MonotonicClock`] in production,
//!   [`ManualClock`] in deterministic tests.
//! - [`tracer`]: the [`Tracer`] of nested RAII spans, instants, counter
//!   samples, and log-scale [`Histogram`]s, with Chrome trace-event
//!   export and [`TraceSummary`] reduction for run reports.
//! - [`registry`]: the fixed vocabulary of profiler counters and the
//!   derived metrics (coalescing efficiency, memory-cycle share, …)
//!   computed from them.
//!
//! This crate sits below `trigon-core` in the dependency graph so the
//! GPU simulator crates can also emit into a collector and tracer.

#![deny(missing_docs)]

pub mod clock;
pub mod collector;
pub mod json;
pub mod registry;
pub mod tracer;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use collector::{Collector, Level, PhaseGuard};
pub use json::Json;
pub use registry::{CounterDef, DerivedDef};
pub use tracer::{
    AttrValue, CounterRecord, DeviceSummary, Histogram, HistogramSummary, InstantRecord, SmLane,
    SmSummary, SpanGuard, SpanRecord, TraceSummary, Tracer, Track,
};
