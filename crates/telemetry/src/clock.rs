//! Injectable time sources for the [`Collector`](crate::Collector) and
//! [`Tracer`](crate::Tracer).
//!
//! Production code uses the [`MonotonicClock`] (a thin wrapper over
//! [`std::time::Instant`]); tests inject a [`ManualClock`] they advance
//! by hand, so phase timings, span durations, and everything derived
//! from them is exactly reproducible:
//!
//! ```
//! use trigon_telemetry::{Collector, Level, ManualClock};
//! use std::sync::Arc;
//!
//! let clock = ManualClock::new();
//! let mut c = Collector::with_clock(Level::Standard, Arc::new(clock.clone()));
//! {
//!     let _g = c.phase("count");
//!     clock.advance_ns(2_500_000_000); // 2.5 simulated seconds
//! }
//! assert_eq!(c.phase_total("count"), 2.5);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source reporting nanoseconds since an arbitrary
/// (per-clock) epoch.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Monotonic nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The production clock: wall time from [`Instant`], anchored at the
/// moment the clock is created.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for deterministic tests. Cloning shares the
/// underlying counter, so a test can keep a handle while the collector
/// or tracer owns another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at 0 ns.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the absolute time in nanoseconds.
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, Ordering::SeqCst);
    }

    /// Advances the clock by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

/// A fresh shared [`MonotonicClock`] — the default time source.
#[must_use]
pub fn monotonic() -> Arc<dyn Clock> {
    Arc::new(MonotonicClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(c.now_ns() > a);
    }

    #[test]
    fn manual_clock_is_deterministic_and_shared() {
        let c = ManualClock::new();
        let handle = c.clone();
        assert_eq!(c.now_ns(), 0);
        handle.advance_ns(500);
        assert_eq!(c.now_ns(), 500);
        handle.set_ns(42);
        assert_eq!(c.now_ns(), 42);
    }
}
