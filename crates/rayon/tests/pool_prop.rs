//! Pool semantics tests: `par_iter` must be indistinguishable from
//! serial iteration for every terminal the workspace uses, at every
//! pool width, and the pool must be created once per process.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::ThreadPool;

/// The pool widths the suite sweeps — the `TRIGON_THREADS=1,2,8`
/// matrix, exercised via explicit pools so one process covers all
/// three (the env var itself is covered by the `env_threads`
/// integration test, which owns its process).
const WIDTHS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `collect` equals serial map at widths 1, 2 and 8.
    #[test]
    fn collect_matches_serial(v in proptest::collection::vec(0u64..1_000_000, 0..300)) {
        let want: Vec<u64> = v.iter().map(|x| x.wrapping_mul(31) ^ 7).collect();
        for w in WIDTHS {
            let pool = ThreadPool::new(w);
            let got: Vec<u64> =
                pool.install(|| v.par_iter().map(|x| x.wrapping_mul(31) ^ 7).collect());
            prop_assert_eq!(&got, &want, "width {}", w);
        }
    }

    /// `sum` equals serial sum — including floats, where input-order
    /// reduction makes the parallel result bit-identical.
    #[test]
    fn sum_matches_serial(v in proptest::collection::vec(0u64..1_000, 0..300)) {
        let want_u: u64 = v.iter().map(|x| x * 3).sum();
        let floats: Vec<f64> = v.iter().map(|&x| x as f64 / 7.0).collect();
        let want_f: f64 = floats.iter().copied().sum();
        for w in WIDTHS {
            let pool = ThreadPool::new(w);
            let got_u: u64 = pool.install(|| v.par_iter().map(|x| x * 3).sum());
            prop_assert_eq!(got_u, want_u, "width {}", w);
            let got_f: f64 = pool.install(|| floats.par_iter().map(|x| *x).sum());
            prop_assert_eq!(got_f.to_bits(), want_f.to_bits(), "width {}", w);
        }
    }

    /// `enumerate().map().collect()` sees the right index for every item.
    #[test]
    fn enumerate_matches_serial(v in proptest::collection::vec(0u32..5_000, 0..300)) {
        let want: Vec<u64> = v
            .iter()
            .enumerate()
            .map(|(i, x)| i as u64 * 10_000 + u64::from(*x))
            .collect();
        for w in WIDTHS {
            let pool = ThreadPool::new(w);
            let got: Vec<u64> = pool.install(|| {
                v.par_iter()
                    .enumerate()
                    .map(|(i, x)| i as u64 * 10_000 + u64::from(*x))
                    .collect()
            });
            prop_assert_eq!(&got, &want, "width {}", w);
        }
    }
}

#[test]
fn empty_and_single_at_every_width() {
    for w in WIDTHS {
        let pool = ThreadPool::new(w);
        pool.install(|| {
            let empty: Vec<u32> = vec![];
            let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
            assert!(out.is_empty(), "width {w}");
            let sum: u32 = empty.par_iter().map(|x| *x).sum();
            assert_eq!(sum, 0, "width {w}");
            let one = vec![41u32];
            let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
            assert_eq!(out, vec![42], "width {w}");
        });
    }
}

/// A panic in the mapped closure must reach the caller (not deadlock
/// the pool), and the pool must remain usable afterwards.
#[test]
fn panic_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    let v: Vec<u64> = (0..500).collect();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            v.par_iter()
                .map(|&x| {
                    if x == 137 {
                        panic!("boom at {x}");
                    }
                    x
                })
                .collect::<Vec<u64>>()
        })
    }));
    let err = caught.expect_err("panic must propagate");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string payload>".to_string());
    assert!(msg.contains("boom at 137"), "unexpected payload {msg:?}");
    // The same pool still computes correct results.
    let sum: u64 = pool.install(|| v.par_iter().map(|&x| x).sum());
    assert_eq!(sum, (0..500u64).sum::<u64>());
}

/// Pool threads are created once per process: repeated `par_iter` calls
/// (on both the global and an explicit pool) never spawn new threads.
#[test]
fn threads_spawned_once_across_repeated_calls() {
    let v: Vec<u64> = (0..4_000).collect();
    // Warm the global pool and a 4-wide explicit pool.
    let _: u64 = v.par_iter().map(|&x| x).sum();
    let pool = ThreadPool::new(4);
    let _: u64 = pool.install(|| v.par_iter().map(|&x| x).sum());
    let warm = rayon::total_threads_spawned();
    for round in 0..100 {
        let a: Vec<u64> = v.par_iter().map(|&x| x + round).collect();
        let b: u64 = pool.install(|| v.par_iter().map(|&x| x + round).sum());
        assert_eq!(a.len(), v.len());
        assert_eq!(b, v.iter().map(|&x| x + round).sum::<u64>());
    }
    assert_eq!(
        rayon::total_threads_spawned(),
        warm,
        "repeated par_iter calls must not spawn threads"
    );
}
