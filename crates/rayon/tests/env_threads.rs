//! `TRIGON_THREADS` override test. This lives in its own integration
//! test binary (= its own process) because the global pool latches the
//! env var exactly once; a single test function avoids racing other
//! tests for first use.

use rayon::prelude::*;

#[test]
fn trigon_threads_env_pins_global_pool_width() {
    // Must run before anything touches the global pool in this process.
    std::env::set_var("TRIGON_THREADS", "3");
    assert_eq!(rayon::current_num_threads(), 3);
    let v: Vec<u64> = (0..10_000).collect();
    let got: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
    assert_eq!(got, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    // 3 lanes = the caller + 2 spawned workers, created exactly once.
    let warm = rayon::total_threads_spawned();
    assert_eq!(warm, 2, "TRIGON_THREADS=3 must spawn 2 workers");
    let _: u64 = v.par_iter().map(|&x| x).sum();
    assert_eq!(rayon::total_threads_spawned(), warm);
}
