//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no registry access, so the workspace vendors
//! the *small* slice of rayon's API that trigon actually uses —
//! `par_iter()` on slices and `Vec`s followed by `enumerate`/`map` and a
//! terminal `collect`/`sum` — implemented on a **persistent worker
//! pool** (see [`pool`]): threads are created once per process, jobs are
//! broadcast to them and self-scheduled in chunks, and the calling
//! thread participates as a full lane.
//!
//! Semantics match rayon where it matters here: results are returned in
//! input order (so even floating-point `sum()`s are deterministic), the
//! mapping function runs concurrently across [`current_num_threads`]
//! lanes, and a panic in the closure propagates to the caller without
//! poisoning the pool. Set `TRIGON_THREADS=1` for deterministic serial
//! runs, or use [`ThreadPool::new`] + [`ThreadPool::install`] to pin a
//! thread count for one scope (the benchmark harness sweeps thread
//! counts this way).

#![deny(missing_docs)]

pub mod pool;

pub use pool::{current_num_threads, total_threads_spawned, ThreadPool};

use pool::par_map_indexed;

/// The rayon-compatible prelude: `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// Parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs each element with its index, like `Iterator::enumerate`.
    #[must_use]
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    /// Maps each element through `f` in parallel.
    #[must_use]
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Enumerated parallel iterator (index, &item).
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    /// Maps each `(index, &item)` pair through `f` in parallel.
    #[must_use]
    pub fn map<U, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
    where
        U: Send,
        F: Fn((usize, &'a T)) -> U + Sync,
    {
        ParEnumerateMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator awaiting a terminal operation.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Collects mapped results in input order.
    #[must_use]
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_indexed(self.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }

    /// Sums mapped results (in input order, so float sums are
    /// deterministic).
    #[must_use]
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        par_map_indexed(self.items, |_, t| (self.f)(t))
            .into_iter()
            .sum()
    }
}

/// Enumerated + mapped parallel iterator awaiting a terminal operation.
pub struct ParEnumerateMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParEnumerateMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn((usize, &'a T)) -> U + Sync,
{
    /// Collects mapped results in input order.
    #[must_use]
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_indexed(self.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .collect()
    }

    /// Sums mapped results.
    #[must_use]
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        par_map_indexed(self.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPool;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_sum_matches_serial() {
        let v: Vec<u64> = (1..=1000).collect();
        let s: u64 = v.par_iter().map(|x| x * x).sum();
        assert_eq!(s, (1..=1000u64).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn enumerate_map_collect() {
        let v = vec!["a", "b", "c"];
        let out: Vec<String> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<u32> = vec![];
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn install_scopes_pool_choice() {
        let p2 = ThreadPool::new(2);
        let v: Vec<u64> = (0..5_000).collect();
        let got: u64 = p2.install(|| {
            assert_eq!(super::current_num_threads(), 2);
            v.par_iter().map(|x| x + 1).sum()
        });
        assert_eq!(got, (0..5_000u64).map(|x| x + 1).sum::<u64>());
    }

    #[test]
    fn nested_par_iter_degrades_to_serial() {
        let p = ThreadPool::new(4);
        let outer: Vec<u64> = (0..64).collect();
        let got: u64 = p.install(|| {
            outer
                .par_iter()
                .map(|&x| {
                    let inner: Vec<u64> = (0..x).collect();
                    inner.par_iter().map(|y| y + 1).sum::<u64>()
                })
                .sum()
        });
        let want: u64 = (0..64u64).map(|x| (0..x).map(|y| y + 1).sum::<u64>()).sum();
        assert_eq!(got, want);
    }
}
