//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build container has no registry access, so the workspace vendors
//! the *small* slice of rayon's API that trigon actually uses —
//! `par_iter()` on slices and `Vec`s followed by `enumerate`/`map` and a
//! terminal `collect`/`sum` — implemented on `std::thread::scope` with a
//! self-scheduling atomic work index (good load balance for the very
//! uneven block costs the GPU simulator produces).
//!
//! Semantics match rayon where it matters here: results are returned in
//! input order, and the mapping function runs concurrently across
//! `available_parallelism` threads.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The rayon-compatible prelude: `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Runs `f` over `items` in input order, self-scheduling across threads.
fn par_map_indexed<'a, T, U, F>(items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &'a T) -> U + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut gathered: Vec<Vec<(usize, U)>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            gathered.push(h.join().expect("worker thread panicked"));
        }
    });
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (i, u) in gathered.into_iter().flatten() {
        out[i] = Some(u);
    }
    out.into_iter()
        .map(|o| o.expect("every index produced"))
        .collect()
}

/// Entry point: `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: Sync + 'a;
    /// Parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs each element with its index, like `Iterator::enumerate`.
    #[must_use]
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    /// Maps each element through `f` in parallel.
    #[must_use]
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Enumerated parallel iterator (index, &item).
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    /// Maps each `(index, &item)` pair through `f` in parallel.
    #[must_use]
    pub fn map<U, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
    where
        U: Send,
        F: Fn((usize, &'a T)) -> U + Sync,
    {
        ParEnumerateMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator awaiting a terminal operation.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    /// Collects mapped results in input order.
    #[must_use]
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_indexed(self.items, |_, t| (self.f)(t))
            .into_iter()
            .collect()
    }

    /// Sums mapped results.
    #[must_use]
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        par_map_indexed(self.items, |_, t| (self.f)(t))
            .into_iter()
            .sum()
    }
}

/// Enumerated + mapped parallel iterator awaiting a terminal operation.
pub struct ParEnumerateMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, U, F> ParEnumerateMap<'a, T, F>
where
    T: Sync,
    U: Send,
    F: Fn((usize, &'a T)) -> U + Sync,
{
    /// Collects mapped results in input order.
    #[must_use]
    pub fn collect<C: FromIterator<U>>(self) -> C {
        par_map_indexed(self.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .collect()
    }

    /// Sums mapped results.
    #[must_use]
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        par_map_indexed(self.items, |i, t| (self.f)((i, t)))
            .into_iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_sum_matches_serial() {
        let v: Vec<u64> = (1..=1000).collect();
        let s: u64 = v.par_iter().map(|x| x * x).sum();
        assert_eq!(s, (1..=1000u64).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn enumerate_map_collect() {
        let v = vec!["a", "b", "c"];
        let out: Vec<String> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_single() {
        let v: Vec<u32> = vec![];
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
