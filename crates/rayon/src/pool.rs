//! The persistent worker pool behind `par_iter`.
//!
//! Earlier revisions of this shim spawned a fresh `std::thread::scope`
//! per `par_iter` call — thousands of OS threads over a benchmark run,
//! with thread creation dominating small parallel sections. This module
//! replaces that with a process-wide pool created once (lazily, on the
//! first parallel call) and reused forever after:
//!
//! * **Broadcast jobs.** A parallel call publishes one type-erased job;
//!   every worker (plus the calling thread itself) runs the same
//!   self-scheduling loop, claiming *chunks* of the index space from a
//!   shared atomic cursor. Chunking keeps per-item overhead at one
//!   `fetch_add` per ~`n / (threads · 16)` items, so tiny inputs (the
//!   narrow ALS windows of path-like graphs) don't pay an atomic per
//!   element, while dynamic claiming still load-balances the very uneven
//!   block costs the GPU simulator produces (the same makespan argument
//!   as the paper's §VI LPT dispatch, applied host-side).
//! * **Caller participation.** The submitting thread executes chunks
//!   too, so a 1-thread pool runs fully inline and an idle machine loses
//!   nothing to handoff latency.
//! * **Panic propagation.** A panic inside the mapped closure poisons the
//!   job (other threads stop claiming chunks), is carried back to the
//!   submitting thread, and is re-raised there — the pool itself survives
//!   and stays usable.
//! * **`TRIGON_THREADS`.** The global pool reads this env var once at
//!   creation: `TRIGON_THREADS=1` gives deterministic serial execution,
//!   any other positive value pins the worker count. Unset or invalid
//!   values fall back to `available_parallelism`.
//!
//! Explicit pools ([`ThreadPool::new`]) exist for benchmarking a sweep of
//! thread counts inside one process; [`ThreadPool::install`] scopes the
//! pool that `par_iter` picks up, mirroring real rayon's API.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Total OS threads ever spawned by any pool in this process. Tests use
/// this to pin the "threads are created once" property; it only grows
/// when a new [`ThreadPool`] is built.
static TOTAL_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// OS threads spawned by pools over the process lifetime. Constant across
/// repeated `par_iter` calls once the pools involved are warm.
#[must_use]
pub fn total_threads_spawned() -> usize {
    TOTAL_SPAWNED.load(Ordering::SeqCst)
}

thread_local! {
    /// Set while this thread is executing pool work (worker thread or
    /// participating submitter). Nested `par_iter` calls from inside a
    /// job run serially instead of re-entering the pool (which could
    /// deadlock the single broadcast slot).
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
    /// Pool override stack installed by [`ThreadPool::install`].
    static CURRENT_POOL: RefCell<Vec<Arc<Inner>>> = const { RefCell::new(Vec::new()) };
}

/// True while the current thread is executing a pool job.
pub(crate) fn in_pool_job() -> bool {
    IN_POOL_JOB.with(Cell::get)
}

/// Type-erased pointer to the job closure. The submitter blocks until
/// every worker has finished the job, so the pointee outlives all uses.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared by reference across threads) and
// the submit protocol guarantees it stays alive for the job's duration.
unsafe impl Send for RawJob {}

struct State {
    /// Bumped per job; workers run a job exactly once by tracking the
    /// last epoch they executed.
    epoch: u64,
    job: Option<RawJob>,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The submitter sleeps here until `active` drains to zero.
    done_cv: Condvar,
    /// Serializes submitters: one broadcast job at a time.
    submit_lock: Mutex<()>,
    /// Total concurrency (workers + the participating submitter).
    threads: usize,
}

/// A persistent worker pool with rayon-like broadcast execution.
///
/// The process-wide default pool is created lazily on first use and
/// never torn down; explicit pools shut their workers down on drop.
pub struct ThreadPool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Builds a pool with `threads` total lanes of concurrency (the
    /// submitting thread counts as one, so `threads = 1` spawns no OS
    /// threads at all).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit_lock: Mutex::new(()),
            threads,
        });
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for i in 1..threads {
            let inner = Arc::clone(&inner);
            TOTAL_SPAWNED.fetch_add(1, Ordering::SeqCst);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("trigon-par-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker"),
            );
        }
        Self { inner, handles }
    }

    /// Total lanes of concurrency (including the submitting thread).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Runs `f` with this pool installed as the target of `par_iter` on
    /// the current thread (nested installs stack; the innermost wins).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        CURRENT_POOL.with(|c| c.borrow_mut().push(Arc::clone(&self.inner)));
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                CURRENT_POOL.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        f()
    }

    /// Broadcasts `job` to every lane and blocks until all of them have
    /// run it to completion. `job` must be internally panic-safe: it may
    /// not unwind (parallel map wraps user code in `catch_unwind`).
    fn run_job(&self, job: &(dyn Fn() + Sync)) {
        run_job_on(&self.inner, job);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("pool state");
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = inner.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("job published with epoch");
                }
                st = inner.work_cv.wait(st).expect("pool state");
            }
        };
        IN_POOL_JOB.with(|f| f.set(true));
        // SAFETY: the submitter keeps the closure alive until `active`
        // reaches zero, which happens strictly after this call returns.
        (unsafe { &*job.0 })();
        IN_POOL_JOB.with(|f| f.set(false));
        let mut st = inner.state.lock().expect("pool state");
        st.active -= 1;
        if st.active == 0 {
            inner.done_cv.notify_all();
        }
    }
}

fn run_job_on(inner: &Arc<Inner>, job: &(dyn Fn() + Sync)) {
    let _submit = inner.submit_lock.lock().expect("submit lock");
    {
        let mut st = inner.state.lock().expect("pool state");
        st.epoch += 1;
        // SAFETY: erase the borrow lifetime; this function does not
        // return until every worker finished running the job.
        st.job = Some(RawJob(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(job)
        }));
        st.active = inner.threads - 1;
    }
    inner.work_cv.notify_all();
    // The submitter is a full lane: it runs the same claiming loop.
    IN_POOL_JOB.with(|f| f.set(true));
    job();
    IN_POOL_JOB.with(|f| f.set(false));
    let mut st = inner.state.lock().expect("pool state");
    while st.active > 0 {
        st = inner.done_cv.wait(st).expect("pool state");
    }
    st.job = None;
}

/// The process-wide default pool (created on first parallel call).
fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// Thread count for the global pool: `TRIGON_THREADS` when set to a
/// positive integer, else `available_parallelism`.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TRIGON_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Lanes of concurrency `par_iter` will use on this thread right now:
/// the installed pool's width, or the global pool's (1 inside a pool
/// job, where nested parallelism degrades to serial).
#[must_use]
pub fn current_num_threads() -> usize {
    if in_pool_job() {
        return 1;
    }
    CURRENT_POOL.with(|c| {
        c.borrow()
            .last()
            .map_or_else(|| global_pool().threads(), |p| p.threads)
    })
}

/// Chunk size for `n` items over `threads` lanes: coarse enough that the
/// shared-cursor `fetch_add` is amortized over many items, fine enough
/// (16 chunks per lane) that dynamic claiming still evens out skewed
/// per-item costs.
fn grain(n: usize, threads: usize) -> usize {
    (n / (threads * 16)).clamp(1, 4096)
}

/// Wrapper making a raw output pointer shippable across the pool.
struct SendPtr<U>(*mut std::mem::MaybeUninit<U>);
unsafe impl<U: Send> Send for SendPtr<U> {}
unsafe impl<U: Send> Sync for SendPtr<U> {}

/// Runs `f` over `0..items.len()` on the current pool, writing results
/// in input order. Serial when the effective pool width is 1, when the
/// input is trivial, or when called from inside another pool job.
pub(crate) fn par_map_indexed<'a, T, U, F>(items: &'a [T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &'a T) -> U + Sync,
{
    let n = items.len();
    if in_pool_job() || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let installed = CURRENT_POOL.with(|c| c.borrow().last().cloned());
    let threads = match &installed {
        Some(p) => p.threads,
        None => global_pool().threads(),
    };
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut out: Vec<std::mem::MaybeUninit<U>> = Vec::with_capacity(n);
    out.resize_with(n, std::mem::MaybeUninit::uninit);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let chunk = grain(n, threads);
    let poisoned = AtomicBool::new(false);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let job = {
        let out_ptr = &out_ptr;
        let f = &f;
        let next = &next;
        let poisoned = &poisoned;
        let panic_slot = &panic_slot;
        move || loop {
            if poisoned.load(Ordering::Relaxed) {
                break;
            }
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            let r = catch_unwind(AssertUnwindSafe(|| {
                for (j, item) in items[start..end].iter().enumerate() {
                    let i = start + j;
                    let v = f(i, item);
                    // SAFETY: `i` is claimed by exactly one chunk, so no
                    // other thread writes this slot; the buffer outlives
                    // the job because the submitter waits for completion.
                    unsafe { (*out_ptr.0.add(i)).write(v) };
                }
            }));
            if let Err(p) = r {
                *panic_slot.lock().expect("panic slot") = Some(p);
                poisoned.store(true, Ordering::Relaxed);
                break;
            }
        }
    };
    match &installed {
        Some(inner) => run_job_on(inner, &job),
        None => global_pool().run_job(&job),
    }

    if let Some(p) = panic_slot.into_inner().expect("panic slot") {
        // Some slots may hold initialized values whose destructors we
        // cannot safely locate; leak them rather than risk a double
        // interpretation. The process is unwinding anyway.
        std::mem::forget(out);
        resume_unwind(p);
    }
    // Every index was claimed exactly once and completed: the buffer is
    // fully initialized.
    let mut out = std::mem::ManuallyDrop::new(out);
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: MaybeUninit<U> has the same layout as U and all `len`
    // elements are initialized.
    unsafe { Vec::from_raw_parts(ptr.cast::<U>(), len, cap) }
}
