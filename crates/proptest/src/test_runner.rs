//! Test-case driver types: configuration, the deterministic RNG, and the
//! per-case error channel the assertion macros use.

/// How many cases a `proptest!` test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why one generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is false.
    Fail(String),
    /// `prop_assume!` rejection: resample without counting the case.
    Reject,
}

/// Deterministic splitmix64/xorshift RNG seeded from the test name, so a
/// given test exercises identical cases on every run and machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test function name).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then a splitmix64 scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Modulo bias is irrelevant for test sampling.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }
}
