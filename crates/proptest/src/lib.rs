//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build container has no registry access, so the workspace vendors a
//! deterministic mini property-tester covering exactly the API surface the
//! trigon test suites use: range / tuple / `any` / `Just` strategies, the
//! `prop_map` / `prop_flat_map` combinators, `collection::vec`,
//! `prop_oneof!`, and the `proptest!` macro family with
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * sampling is **deterministic** — the RNG is seeded from the test
//!   function's name, so every run and every machine exercises the same
//!   cases (a reproducibility win for a simulator repo, at the cost of
//!   fresh randomness between runs);
//! * there is **no shrinking** — a failing case panics with the values'
//!   `Debug` rendering instead of a minimized counterexample.

#![deny(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The proptest-compatible prelude: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn name(x in 0u32..10, y in any::<u64>()) { ... }
/// }
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(g in arb_graph(40)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm; must precede the catch-all arm below or
    // the `@cfg` token stream re-enters it and recurses forever.
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < cfg.cases {
                    attempts += 1;
                    if attempts > cfg.cases.saturating_mul(16).max(64) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name),
                            accepted,
                            cfg.cases
                        );
                    }
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!("proptest {} failed: {}", stringify!($name), msg),
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Rejects the current case (resampled, not counted) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}
