//! Value-generation strategies: ranges, tuples, `any`, `Just`, and the
//! `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates from `self`, then from the strategy `f` returns —
    /// dependent generation.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one type (`prop_oneof!`).
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S: Strategy> OneOf<S> {
    /// Builds from a non-empty list of alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Full-range strategy for a primitive, from [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Generates any value of `T` (full range for the integer primitives).
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let off = if span == 0 { 0 } else { u128::from(rng.next_u64()) % span };
                (self.start as u128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let off = u128::from(rng.next_u64()) % span;
                (*self.start() as u128 + off) as $t
            }
        }
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u32..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (5u64..=7).generate(&mut r);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1u32..5).prop_flat_map(|n| (0..n, Just(n)).prop_map(|(x, n)| (x, n)));
        for _ in 0..200 {
            let (x, n) = s.generate(&mut r);
            assert!(x < n && n < 5);
        }
    }

    #[test]
    fn oneof_picks_each_option() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u32), Just(2u32)];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
