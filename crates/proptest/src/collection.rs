//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: a fixed size or a size range.
pub trait SizeRange {
    /// Draws one length.
    fn sample(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.start >= self.end {
            return self.start;
        }
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy producing `Vec`s of `element` with lengths from `size`.
#[must_use]
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// The strategy type [`vec()`] returns.
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::from_name("vec-tests");
        let s = vec(0u32..100, 3..7usize);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        let fixed = vec(0u64..10, 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
        let incl = vec(0u64..10, 1..=2usize);
        for _ in 0..50 {
            let v = incl.generate(&mut rng);
            assert!((1..=2).contains(&v.len()));
        }
    }
}
