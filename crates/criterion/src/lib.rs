//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build container has no registry access, so the workspace vendors a
//! wall-clock-only harness covering the API surface the trigon benches
//! use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, `sample_size`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! No statistics, no plots, no warm-up modeling: each benchmark runs a
//! calibration pass to pick an iteration count near the target time, then
//! reports mean nanoseconds per iteration. Good enough to spot order-of-
//! magnitude regressions offline; swap back to real criterion when a
//! registry is reachable.
//!
//! Besides the human-readable line, each benchmark appends one JSON
//! object per line (`{"id", "mean_ns", "best_ns", "samples",
//! "iters_per_sample"}`) to the file named by the
//! `TRIGON_CRITERION_JSON` environment variable when it is set — the
//! `repro perf` harness merges that JSONL into `BENCH_perf.json`.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one benchmark directly on the harness.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.into().label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (printing nothing extra in this shim).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, optionally `name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, running it enough iterations per sample to be
    /// measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ≥ ~1 ms (or the routine is clearly slow).
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                self.samples.push(dt);
                break;
            }
            iters *= 4;
        }
        let want = self.target_samples.max(2);
        while self.samples.len() < want {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
        target_samples: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let iters = b.iters_per_sample.max(1) as f64 * b.samples.len() as f64;
    let mean_ns = total.as_nanos() as f64 / iters;
    let best_ns = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample.max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    println!("  {label:<40} mean {mean_ns:>12.0} ns/iter   best {best_ns:>12.0} ns/iter");
    if let Ok(path) = std::env::var("TRIGON_CRITERION_JSON") {
        if !path.is_empty() {
            append_jsonl(
                &path,
                label,
                mean_ns,
                best_ns,
                b.samples.len(),
                b.iters_per_sample,
            );
        }
    }
}

/// Appends one machine-readable result line to `path` (JSONL).
fn append_jsonl(
    path: &str,
    label: &str,
    mean_ns: f64,
    best_ns: f64,
    samples: usize,
    iters_per_sample: u64,
) {
    use std::io::Write as _;
    let mut id = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' => id.push_str("\\\""),
            '\\' => id.push_str("\\\\"),
            c if (c as u32) < 0x20 => id.push(' '),
            c => id.push(c),
        }
    }
    let line = format!(
        "{{\"id\":\"{id}\",\"mean_ns\":{mean_ns:.1},\"best_ns\":{best_ns:.1},\
         \"samples\":{samples},\"iters_per_sample\":{iters_per_sample}}}\n"
    );
    let r = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = r {
        eprintln!("criterion shim: could not append to {path}: {e}");
    }
}

/// Bundles benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn jsonl_emission_is_machine_readable() {
        let dir = std::env::temp_dir().join("trigon_criterion_jsonl_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        append_jsonl(path.to_str().unwrap(), "group/\"case\"", 12.5, 10.0, 3, 4);
        append_jsonl(path.to_str().unwrap(), "plain", 7.0, 7.0, 2, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\\\"case\\\""));
        assert!(lines[1].contains("\"id\":\"plain\""));
        assert!(lines[1].contains("\"mean_ns\":7.0"));
        assert!(lines[1].contains("\"iters_per_sample\":1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
    }
}
