//! Workload definitions for the evaluation reproduction (§XI).

use trigon_graph::{gen, Graph};

/// The one seed every reported experiment uses — change it to check
/// robustness, keep it to get bit-identical tables.
pub const SEED: u64 = 42;

/// Fig. 10 / Fig. 12 graph sizes: "graphs of sizes ranging from 200 to
/// 1200 nodes".
#[must_use]
pub fn fig10_sizes() -> Vec<u32> {
    vec![200, 400, 600, 800, 1000, 1200]
}

/// Fig. 11 graph sizes: "reasonably larger graphs of size ranging from
/// 5,000 to 25,000 nodes" (plus the §XI 100,000-node data point).
#[must_use]
pub fn fig11_sizes() -> Vec<u32> {
    vec![5_000, 10_000, 15_000, 20_000, 25_000]
}

/// The Fig. 10/12 workload: `G(n, p)` with mean degree 16 — the paper
/// leaves its random-graph density unstated; degree 16 produces BFS trees
/// with several populated levels (the regime Algorithms 1–2 target) at
/// every size in the suite.
#[must_use]
pub fn fig10_graph(n: u32) -> Graph {
    gen::gnp(n, 16.0 / f64::from(n), SEED)
}

/// The Fig. 11 workload: the SNAP stand-in (see DESIGN.md substitutions) —
/// a ring of 250-vertex communities with internal density 0.3 and 4
/// bridges per adjacent pair. Deep BFS trees with bounded level width,
/// triangle-rich, like SNAP's community/road networks.
#[must_use]
pub fn fig11_graph(n: u32) -> Graph {
    gen::community_ring(n, 250, 0.3, 4, SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_deterministic() {
        assert_eq!(fig10_graph(400), fig10_graph(400));
        assert_eq!(fig11_graph(5000), fig11_graph(5000));
    }

    #[test]
    fn fig10_sizes_match_paper_range() {
        let s = fig10_sizes();
        assert_eq!(*s.first().unwrap(), 200);
        assert_eq!(*s.last().unwrap(), 1200);
    }

    #[test]
    fn fig11_workload_has_bounded_levels() {
        let g = fig11_graph(5000);
        let t = trigon_graph::BfsTree::new(&g, 0);
        assert!(t.depth() > 5, "needs a deep tree, got {}", t.depth());
        let widest = t.levels().iter().map(Vec::len).max().unwrap();
        assert!(widest <= 600, "level width {widest}");
    }
}
