//! Cross-workload sweep of the [`ChunkKernel`] API.
//!
//! Runs every workload (triangles, k-clique count, clustering +
//! transitivity, k-truss, enumeration) over the fig10-scale evaluation
//! graphs on both the CPU and the simulated-GPU executors, asserts the
//! two agree bit-for-bit at every point, and reports the modeled
//! seconds plus each workload's headline result. `repro workloads`
//! renders the table and writes the document to
//! `bench_out/BENCH_workloads.json`.
//!
//! [`ChunkKernel`]: trigon_core::ChunkKernel

use std::sync::Arc;

use trigon_core::als::Als;
use trigon_core::{Analysis, Json, Level, Method, RunReport, Workload, WorkloadSection};
use trigon_graph::Graph;

use crate::suites::fig10_graph;

/// Schema version of `BENCH_workloads.json`; bump on shape changes.
pub const WORKLOADS_SCHEMA_VERSION: u32 = 1;

/// The graph sizes the sweep covers (a subset of the fig10 ladder —
/// every workload runs 2x per size, so keep the tail short).
#[must_use]
pub fn workloads_sizes() -> Vec<u32> {
    vec![400, 800, 1200]
}

/// The (smaller) sizes the k-clique workload covers. Its combination
/// space is C(window, 4) — roughly n^4 — so the linear-workload ladder
/// above would run for hours; these keep the sweep under a minute.
#[must_use]
pub fn kcount_sizes() -> Vec<u32> {
    vec![120, 160, 200]
}

/// One (workload, n) cell of the sweep.
#[derive(Debug, Clone)]
pub struct WorkloadPoint {
    /// Canonical workload label (`triangles`, `kcount`, ...).
    pub workload: String,
    /// Graph size.
    pub n: u32,
    /// The headline count (triangles, cliques, or surviving edges).
    pub count: u64,
    /// CPU executor's modeled seconds.
    pub cpu_s: f64,
    /// Simulated-GPU executor's modeled seconds.
    pub gpu_s: f64,
    /// The full workload section of the GPU run.
    pub section: WorkloadSection,
}

/// Outcome of the sweep: the table rows plus the JSON document.
#[derive(Debug, Clone)]
pub struct WorkloadsOutcome {
    /// One row per (workload, size).
    pub points: Vec<WorkloadPoint>,
    /// The full `BENCH_workloads.json` document.
    pub report: Json,
}

fn run(g: &Graph, als: Option<&Arc<Vec<Als>>>, w: Workload, m: Method) -> RunReport {
    let mut a = Analysis::new(g).workload(w).method(m).telemetry(Level::Off);
    if let Some(als) = als {
        a = a.prebuilt_als(Arc::clone(als));
    }
    a.execute().expect("workload run")
}

/// Runs the cross-workload sweep.
///
/// # Panics
///
/// Panics if any workload's CPU and GPU executors disagree — the sweep
/// doubles as the kernel-API determinism gate.
#[must_use]
pub fn run_workloads() -> WorkloadsOutcome {
    run_workloads_on(&workloads_sizes(), &kcount_sizes())
}

/// [`run_workloads`] over explicit size ladders — the linear workloads
/// (triangles, clustering, k-truss, enumeration) run on `sizes`, the
/// k-clique count on `kcount_sizes`.
#[must_use]
pub fn run_workloads_on(sizes: &[u32], kcount_sizes: &[u32]) -> WorkloadsOutcome {
    let linear = [
        Workload::Triangles,
        Workload::Clustering,
        Workload::KTruss(4),
        Workload::Enumerate,
    ];
    let mut points = Vec::new();
    for &n in sizes {
        let g = fig10_graph(n);
        // One ALS decomposition serves every workload and both
        // executors at this size — rebuilding it per cell was pure
        // duplicated work (the decomposition depends only on the graph).
        let als = Arc::new(trigon_core::als::build_als(&g));
        for w in linear {
            points.push(sweep_point(
                &g,
                Some(&als),
                n,
                w,
                Method::CpuFast,
                Method::GpuOptimized,
            ));
        }
    }
    for &n in kcount_sizes {
        let g = fig10_graph(n);
        // The k-clique workload runs only on the widened simulated
        // device (it builds its own decomposition); time its two GPU
        // layouts instead of CPU-vs-GPU.
        points.push(sweep_point(
            &g,
            None,
            n,
            Workload::KCliques(4),
            Method::GpuNaive,
            Method::GpuOptimized,
        ));
    }
    let report = workloads_json(&points);
    WorkloadsOutcome { points, report }
}

fn sweep_point(
    g: &Graph,
    als: Option<&Arc<Vec<Als>>>,
    n: u32,
    w: Workload,
    cpu_m: Method,
    gpu_m: Method,
) -> WorkloadPoint {
    let cpu = run(g, als, w, cpu_m);
    let gpu = run(g, als, w, gpu_m);
    assert_eq!(
        cpu.count,
        gpu.count,
        "{} at n={n}: executors disagree on the count",
        w.label()
    );
    assert_eq!(
        cpu.workload,
        gpu.workload,
        "{} at n={n}: executors disagree on the workload section",
        w.label()
    );
    WorkloadPoint {
        workload: w.label().to_string(),
        n,
        count: gpu.count,
        cpu_s: cpu.modeled_s,
        gpu_s: gpu.modeled_s,
        section: gpu.workload,
    }
}

fn workloads_json(points: &[WorkloadPoint]) -> Json {
    let mut doc = Json::object();
    doc.set(
        "schema_version",
        Json::UInt(u64::from(WORKLOADS_SCHEMA_VERSION)),
    );
    doc.set("bench_meta", crate::meta::bench_meta());
    doc.set("suite", Json::Str("fig10".to_string()));
    let mut arr = Vec::with_capacity(points.len());
    for p in points {
        let mut o = Json::object();
        o.set("workload", Json::Str(p.workload.clone()));
        o.set("n", Json::UInt(u64::from(p.n)));
        o.set("count", Json::UInt(p.count));
        o.set("cpu_s", Json::Float(p.cpu_s));
        o.set("gpu_s", Json::Float(p.gpu_s));
        match &p.section {
            WorkloadSection::Clustering {
                mean_clustering,
                transitivity,
                ..
            } => {
                o.set("mean_clustering", Json::Float(*mean_clustering));
                o.set("transitivity", Json::Float(*transitivity));
            }
            WorkloadSection::KTruss {
                edges_kept,
                edges_peeled,
                ..
            } => {
                o.set("edges_kept", Json::UInt(*edges_kept));
                o.set("edges_peeled", Json::UInt(*edges_peeled));
            }
            WorkloadSection::Enumerate { checksum, .. } => {
                o.set("checksum", Json::UInt(*checksum));
            }
            WorkloadSection::Triangles | WorkloadSection::KCount { .. } => {}
        }
        arr.push(o);
    }
    doc.set("points", Json::Array(arr));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_covers_every_workload() {
        // A scaled-down ladder: the full one is release-bench material,
        // and the shape/determinism guarantees are size-independent.
        let a = run_workloads_on(&[150], &[100]);
        let b = run_workloads_on(&[150], &[100]);
        assert_eq!(
            a.report.to_string_pretty(),
            b.report.to_string_pretty(),
            "the sweep must be bit-reproducible"
        );
        assert_eq!(a.points.len(), 5);
        let labels: Vec<&str> = a.points.iter().map(|p| p.workload.as_str()).collect();
        for want in ["triangles", "clustering", "ktruss", "enumerate", "kcount"] {
            assert!(labels.contains(&want), "sweep must cover {want}");
        }
        let tri = a
            .points
            .iter()
            .find(|p| p.workload == "triangles" && p.n == 150)
            .unwrap();
        let en = a
            .points
            .iter()
            .find(|p| p.workload == "enumerate" && p.n == 150)
            .unwrap();
        assert_eq!(tri.count, en.count, "enumeration must list every triangle");
    }
}
