//! Shared provenance header stamped on every `bench_out/BENCH_*.json`.
//!
//! Every emitter sets the same `"bench_meta"` object so a result file can
//! always be traced back to the tool version, report schema, and git
//! revision that produced it — without each module reinventing the
//! lookup. The git revision is resolved once per process, so two
//! documents written by the same run always carry identical headers
//! (which keeps the bit-reproducibility tests meaningful).

use std::sync::OnceLock;

use trigon_core::{Json, RUN_REPORT_SCHEMA_VERSION};

/// Best-effort short git revision of the checkout running the bench;
/// `"unknown"` outside a git working tree (e.g. an unpacked release).
fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// The provenance header carried by every `BENCH_*.json` document under
/// the `"bench_meta"` key: tool name + version, the [`RunReport`] schema
/// version the run reports follow, and the producing git revision.
///
/// [`RunReport`]: trigon_core::RunReport
#[must_use]
pub fn bench_meta() -> Json {
    let mut o = Json::object();
    o.set("tool", Json::Str("trigon-bench".to_string()));
    o.set(
        "tool_version",
        Json::Str(env!("CARGO_PKG_VERSION").to_string()),
    );
    o.set(
        "run_report_schema_version",
        Json::UInt(u64::from(RUN_REPORT_SCHEMA_VERSION)),
    );
    o.set("git_rev", Json::Str(git_rev().to_string()));
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_meta_is_stable_within_a_process_and_fully_populated() {
        let a = bench_meta();
        let b = bench_meta();
        assert_eq!(a.to_string_pretty(), b.to_string_pretty());
        assert_eq!(a.get("tool"), Some(&Json::Str("trigon-bench".into())));
        assert_eq!(
            a.get("run_report_schema_version"),
            Some(&Json::UInt(u64::from(RUN_REPORT_SCHEMA_VERSION)))
        );
        let Some(Json::Str(v)) = a.get("tool_version") else {
            panic!("tool_version missing")
        };
        assert!(!v.is_empty());
        let Some(Json::Str(rev)) = a.get("git_rev") else {
            panic!("git_rev missing")
        };
        assert!(!rev.is_empty());
    }
}
