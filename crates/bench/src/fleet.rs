//! Strong-scaling sweep of the multi-device fleet path.
//!
//! Runs one fixed workload across homogeneous C2050 fleets of growing
//! size, asserts every point's count is bit-identical to the CPU
//! reference, and reports the outer-makespan scaling curve with the
//! interconnect (H2D, D2D) cycles broken out from compute. `repro
//! fleet` renders the table and writes the document to
//! `bench_out/BENCH_fleet.json`.

use trigon_core::{Analysis, FleetSpec, Json, Level, Method};
use trigon_graph::{gen, triangles, Graph};

use crate::suites::SEED;

/// Schema version of `BENCH_fleet.json`; bump on shape changes.
pub const FLEET_SCHEMA_VERSION: u32 = 1;

/// Largest fleet the sweep grows to.
pub const FLEET_MAX_DEVICES: usize = 8;

/// One point of the scaling curve.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Device count (homogeneous C2050).
    pub devices: usize,
    /// Rendered fleet spec, e.g. `"4xC2050"`.
    pub spec: String,
    /// Outer fleet makespan (slowest device's H2D + D2D + kernel).
    pub makespan_cycles: u64,
    /// Summed kernel cycles across the fleet.
    pub compute_cycles: u64,
    /// Summed contended host→device upload cycles.
    pub h2d_cycles: u64,
    /// Summed device→device boundary-exchange cycles.
    pub d2d_cycles: u64,
    /// Max / mean device finish time (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// 1-device makespan / this makespan.
    pub speedup: f64,
}

/// Outcome of the sweep: the table rows plus the JSON document.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Exact triangle count (identical at every fleet size).
    pub triangles: u64,
    /// One row per fleet size, 1..=[`FLEET_MAX_DEVICES`].
    pub points: Vec<FleetPoint>,
    /// The full `BENCH_fleet.json` document.
    pub report: Json,
}

/// The sweep workload: a community ring with enough components (and so
/// enough adjacent level sets) that an 8-device fleet has work to
/// spread.
#[must_use]
pub fn fleet_graph() -> Graph {
    gen::community_ring(3000, 150, 0.25, 2, SEED)
}

/// Runs the strong-scaling sweep.
///
/// # Panics
///
/// Panics if any fleet size disagrees with the CPU reference count —
/// the sweep doubles as the determinism gate.
#[must_use]
pub fn run_fleet_scaling() -> FleetOutcome {
    let g = fleet_graph();
    let expect = triangles::count_edge_iterator(&g);
    let mut points = Vec::with_capacity(FLEET_MAX_DEVICES);
    let mut base_makespan = 0u64;
    for d in 1..=FLEET_MAX_DEVICES {
        let spec = format!("{d}xC2050");
        let report = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .fleet(FleetSpec::parse(&spec).expect("fleet spec"))
            .telemetry(Level::Off)
            .run()
            .expect("fleet run");
        assert_eq!(
            report.count, expect,
            "{spec}: fleet count diverged from the CPU reference"
        );
        let fl = report.fleet.expect("fleet section");
        if d == 1 {
            base_makespan = fl.makespan_cycles;
        }
        points.push(FleetPoint {
            devices: d,
            spec,
            makespan_cycles: fl.makespan_cycles,
            compute_cycles: fl.compute_cycles,
            h2d_cycles: fl.h2d_cycles,
            d2d_cycles: fl.d2d_cycles,
            imbalance: fl.imbalance,
            speedup: base_makespan as f64 / fl.makespan_cycles.max(1) as f64,
        });
    }
    let report = fleet_json(&g, expect, &points);
    FleetOutcome {
        triangles: expect,
        points,
        report,
    }
}

fn fleet_json(g: &Graph, expect: u64, points: &[FleetPoint]) -> Json {
    let mut doc = Json::object();
    doc.set(
        "schema_version",
        Json::UInt(u64::from(FLEET_SCHEMA_VERSION)),
    );
    doc.set("bench_meta", crate::meta::bench_meta());
    let mut w = Json::object();
    w.set("model", Json::Str("community_ring".to_string()));
    w.set("n", Json::UInt(u64::from(g.n())));
    w.set("m", Json::UInt(g.m() as u64));
    w.set("triangles", Json::UInt(expect));
    doc.set("workload", w);
    doc.set("device", Json::Str("C2050".to_string()));
    let mut arr = Vec::with_capacity(points.len());
    for p in points {
        let mut o = Json::object();
        o.set("devices", Json::UInt(p.devices as u64));
        o.set("spec", Json::Str(p.spec.clone()));
        o.set("makespan_cycles", Json::UInt(p.makespan_cycles));
        o.set("compute_cycles", Json::UInt(p.compute_cycles));
        o.set("h2d_cycles", Json::UInt(p.h2d_cycles));
        o.set("d2d_cycles", Json::UInt(p.d2d_cycles));
        o.set("imbalance", Json::Float(p.imbalance));
        o.set("speedup", Json::Float(p.speedup));
        arr.push(o);
    }
    doc.set("points", Json::Array(arr));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_curve_is_deterministic_and_scales() {
        let a = run_fleet_scaling();
        let b = run_fleet_scaling();
        assert_eq!(
            a.report.to_string_pretty(),
            b.report.to_string_pretty(),
            "the sweep must be bit-reproducible"
        );
        assert_eq!(a.points.len(), FLEET_MAX_DEVICES);
        assert!((a.points[0].speedup - 1.0).abs() < 1e-12);
        let four = &a.points[3];
        assert!(
            four.makespan_cycles < a.points[0].makespan_cycles,
            "4 devices must beat 1"
        );
        assert!(four.d2d_cycles > 0 || four.h2d_cycles > 0);
    }
}
