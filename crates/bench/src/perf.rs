//! Measured wall-clock performance baseline — the `repro perf` command.
//!
//! Unlike the figure reproductions (which report the paper's *modeled*
//! seconds), this module measures real elapsed time of the hot paths on
//! the machine running it:
//!
//! * fig10 / fig11 workloads × counting strategies (`cpu_serial` =
//!   [`trigon_core::count::als_fast`], `cpu_parallel` across a thread
//!   sweep on the persistent pool, and **every parameterless
//!   [`Method`]** — the list is derived from [`Method::ALL`], so a new
//!   backend joins the head-to-head automatically; combination
//!   enumerators are filtered from the fig11 scales they cannot
//!   execute at), with every count checked bit-identical against the
//!   serial one. The combination-vs-intersection race the intersect
//!   backends exist for falls out of the same rows: `cpu` vs
//!   `cpu-intersect` and `gpu-opt` vs `gpu-intersect`, asserted
//!   strictly faster at fig10 n ≥ 1200;
//! * telemetry overhead — the same `Analysis` run at `Level::Off` vs
//!   `Level::Standard`;
//! * pool dispatch cost — nanoseconds per `par_iter` round-trip on a
//!   tiny input, which is pure submit/wake/join overhead;
//! * optional merge of the criterion shim's JSONL emissions (see
//!   `TRIGON_CRITERION_JSON`).
//!
//! Results land in `bench_out/BENCH_perf.json`. A committed baseline
//! (`crates/bench/baselines/perf_baseline.json`) stores the 1-thread
//! fig10 wall-clock *normalized by a fixed calibration loop*, so the
//! regression check compares machine-independent ratios: a >25 % slowdown
//! of the largest fig10 graph relative to the calibration loop fails.

use std::time::Instant;

use rayon::ThreadPool;
use trigon_core::count::{als_fast, als_fast_parallel};
use trigon_core::{Analysis, Json, Level, Method};
use trigon_graph::Graph;

use crate::suites::{fig10_graph, fig11_graph};

/// Schema version of `BENCH_perf.json`; bump on shape changes.
pub const PERF_SCHEMA_VERSION: u32 = 1;

/// Maximum tolerated normalized slowdown before the regression check
/// fails: current ratio ≤ baseline ratio × (1 + 25 %).
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// Options for a perf run.
#[derive(Debug, Clone, Default)]
pub struct PerfOptions {
    /// Trim the suites to a seconds-long smoke run (CI).
    pub quick: bool,
    /// Path of a committed baseline to check against (written there if
    /// the file does not exist yet).
    pub baseline: Option<String>,
}

/// One timed strategy sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Strategy label: `cpu_serial`, `cpu_parallel`, or a
    /// [`Method::label`] from the derived method sweep.
    pub strategy: &'static str,
    /// Worker-lane count (1 for serial strategies).
    pub threads: usize,
    /// Best-of-reps wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Triangles counted — must equal the serial count.
    pub triangles: u64,
}

/// Outcome of [`run_perf`]: the report plus the regression verdict.
pub struct PerfOutcome {
    /// The full `BENCH_perf.json` document.
    pub report: Json,
    /// `Some(message)` when the baseline check failed.
    pub regression: Option<String>,
}

/// Times `f` `reps` times and returns (best nanoseconds, last output).
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> (u64, T) {
    assert!(reps >= 1);
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_nanos() as u64);
        out = Some(v);
    }
    (best, out.unwrap())
}

/// Fixed CPU-bound calibration loop (SplitMix64 over 2²² steps). Its
/// wall-clock normalizes the committed baseline so the regression check
/// transfers across machines of different speeds.
#[must_use]
pub fn calibration_ns() -> u64 {
    let (ns, sink) = time_best(3, || {
        // black_box on the seed and the result keeps the otherwise pure
        // loop inside the timed region (LLVM hoists it out of the rep
        // loop without this).
        let mut x = std::hint::black_box(0x9E37_79B9_7F4A_7C15u64);
        let mut acc = 0u64;
        for _ in 0..(1u32 << 22) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            acc = acc.wrapping_add(z ^ (z >> 31));
        }
        std::hint::black_box(acc)
    });
    std::hint::black_box(sink);
    ns
}

/// The thread counts swept by the parallel strategy: 1, 2, and (when
/// the machine has more) the full width.
#[must_use]
pub fn thread_sweep() -> Vec<usize> {
    let max = rayon::current_num_threads();
    let mut v = vec![1usize, 2];
    if max > 2 {
        v.push(max);
    }
    v.dedup();
    v
}

/// The methods a figure's graphs are swept over, derived from
/// [`Method::ALL`] so newly added variants are raced automatically.
/// `combination_scale` is false for the fig11 sizes, where exhaustive
/// combination enumeration is infeasible and those methods are skipped.
#[must_use]
pub fn sweep_methods(combination_scale: bool) -> Vec<Method> {
    Method::ALL
        .into_iter()
        .filter(|m| combination_scale || !m.enumerates_combinations())
        .collect()
}

/// Times every strategy on one graph: the serial reference, the thread
/// sweep, and one `Run`-builder pass per method in `methods`.
///
/// The ALS decomposition is built once and passed to every
/// artifact-reusing method via `prebuilt_als`, so the method sweep
/// times the counting strategies rather than redundantly rebuilding
/// the same decomposition per method (the hybrid path builds its own
/// and is left alone).
fn measure_graph(g: &Graph, methods: &[Method], reps: u32, sweep: &[usize]) -> Vec<Sample> {
    let mut out = Vec::new();
    let als = std::sync::Arc::new(trigon_core::als::build_als(g));
    let (serial_ns, expect) = time_best(reps, || als_fast(g));
    out.push(Sample {
        strategy: "cpu_serial",
        threads: 1,
        wall_ns: serial_ns,
        triangles: expect,
    });
    for &t in sweep {
        let pool = ThreadPool::new(t);
        let (ns, got) = time_best(reps, || pool.install(|| als_fast_parallel(g)));
        assert_eq!(
            got,
            expect,
            "cpu_parallel({t}) disagrees with als_fast on n={}",
            g.n()
        );
        out.push(Sample {
            strategy: "cpu_parallel",
            threads: t,
            wall_ns: ns,
            triangles: got,
        });
    }
    for &m in methods {
        let (ns, count) = time_best(1, || {
            let mut a = Analysis::new(g).method(m).telemetry(Level::Off);
            if m != Method::Hybrid {
                a = a.prebuilt_als(std::sync::Arc::clone(&als));
            }
            a.run()
                .unwrap_or_else(|e| panic!("{} run: {e}", m.label()))
                .count
        });
        assert_eq!(count, expect, "{} disagrees with als_fast", m.label());
        out.push(Sample {
            strategy: m.label(),
            threads: 1,
            wall_ns: ns,
            triangles: count,
        });
    }
    out
}

/// The measured combination-vs-intersection race on one graph's
/// samples: wall-clock speedups of the intersection backend over its
/// combination counterpart, for the CPU and simulated-GPU pairs.
fn head_to_head(samples: &[Sample]) -> Option<Json> {
    let ns_of = |label: &str| {
        samples
            .iter()
            .find(|s| s.strategy == label)
            .map(|s| s.wall_ns)
    };
    let mut o = Json::object();
    let mut any = false;
    for (key, comb, inter) in [
        ("cpu_speedup", "cpu", "cpu-intersect"),
        ("gpu_speedup", "gpu-opt", "gpu-intersect"),
    ] {
        if let (Some(c), Some(i)) = (ns_of(comb), ns_of(inter)) {
            if i > 0 {
                o.set(key, Json::Float(c as f64 / i as f64));
                any = true;
            }
        }
    }
    any.then_some(o)
}

/// JSON row for one graph: size, strategies, and speedups vs the
/// 1-thread parallel run.
fn graph_json(n: u32, samples: &[Sample]) -> Json {
    let one_thread_ns = samples
        .iter()
        .find(|s| s.strategy == "cpu_parallel" && s.threads == 1)
        .map(|s| s.wall_ns)
        .unwrap_or(0);
    let mut row = Json::object();
    row.set("n", Json::UInt(u64::from(n)));
    row.set("triangles", Json::UInt(samples[0].triangles));
    let mut arr = Vec::new();
    for s in samples {
        let mut o = Json::object();
        o.set("strategy", Json::Str(s.strategy.to_string()));
        o.set("threads", Json::UInt(s.threads as u64));
        o.set("wall_ns", Json::UInt(s.wall_ns));
        if s.strategy == "cpu_parallel" && one_thread_ns > 0 && s.wall_ns > 0 {
            o.set(
                "speedup_vs_1t",
                Json::Float(one_thread_ns as f64 / s.wall_ns as f64),
            );
        }
        arr.push(o);
    }
    row.set("strategies", Json::Array(arr));
    if let Some(h) = head_to_head(samples) {
        row.set("combination_vs_intersection", h);
    }
    row
}

/// Telemetry overhead: identical `CpuFast` analyses at `Level::Off` vs
/// `Level::Standard`.
fn telemetry_overhead(g: &Graph) -> Json {
    let run_at = |level: Level| {
        time_best(3, || {
            Analysis::new(g)
                .method(Method::CpuFast)
                .telemetry(level)
                .run()
                .expect("analysis run")
                .count
        })
        .0
    };
    let off_ns = run_at(Level::Off);
    let std_ns = run_at(Level::Standard);
    let mut o = Json::object();
    o.set("workload", Json::Str("fig10 cpu-fast".to_string()));
    o.set("off_ns", Json::UInt(off_ns));
    o.set("standard_ns", Json::UInt(std_ns));
    if off_ns > 0 {
        o.set(
            "overhead_pct",
            Json::Float(100.0 * (std_ns as f64 - off_ns as f64) / off_ns as f64),
        );
    }
    o
}

/// Pool dispatch cost: a `par_iter().map().sum()` over 64 elements is
/// almost pure submit/wake/join; report ns per call at each width,
/// next to the serial loop doing the same arithmetic.
fn dispatch_cost(sweep: &[usize]) -> Json {
    const CALLS: u32 = 200;
    let data: Vec<u64> = (0..64).collect();
    let serial_expect: u64 = data.iter().map(|x| x * 2 + 1).sum();
    let (serial_ns, _) = time_best(3, || {
        for _ in 0..CALLS {
            let s: u64 = std::hint::black_box(&data).iter().map(|x| x * 2 + 1).sum();
            assert_eq!(s, serial_expect);
        }
    });
    let mut arr = Vec::new();
    let mut o = Json::object();
    o.set("threads", Json::UInt(0));
    o.set("label", Json::Str("serial loop".to_string()));
    o.set("ns_per_call", Json::UInt(serial_ns / u64::from(CALLS)));
    arr.push(o);
    for &t in sweep {
        let pool = ThreadPool::new(t);
        let (ns, _) = time_best(3, || {
            pool.install(|| {
                use rayon::prelude::*;
                for _ in 0..CALLS {
                    let s: u64 = std::hint::black_box(&data)
                        .par_iter()
                        .map(|x| x * 2 + 1)
                        .sum();
                    assert_eq!(s, serial_expect);
                }
            });
        });
        let mut o = Json::object();
        o.set("threads", Json::UInt(t as u64));
        o.set("label", Json::Str(format!("par_iter pool({t})")));
        o.set("ns_per_call", Json::UInt(ns / u64::from(CALLS)));
        arr.push(o);
    }
    Json::Array(arr)
}

/// Reads the criterion shim's JSONL emissions (one object per line) and
/// returns them as a JSON array; `None` when the file is absent.
fn merge_criterion(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    let rows: Vec<Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Json::parse(l).ok())
        .collect();
    if rows.is_empty() {
        None
    } else {
        Some(Json::Array(rows))
    }
}

/// The fig10 sizes measured at each profile.
fn perf_fig10_sizes(quick: bool) -> Vec<u32> {
    if quick {
        vec![200, 600]
    } else {
        crate::suites::fig10_sizes()
    }
}

/// The fig11 sizes measured at each profile.
fn perf_fig11_sizes(quick: bool) -> Vec<u32> {
    if quick {
        vec![5_000]
    } else {
        vec![5_000, 10_000, 25_000]
    }
}

/// Runs the full perf suite and returns the report plus the baseline
/// verdict. Pure with respect to the filesystem except for reading the
/// criterion JSONL and the baseline file; the caller writes the report.
#[must_use]
pub fn run_perf(opts: &PerfOptions) -> PerfOutcome {
    let sweep = thread_sweep();
    // More reps in quick mode: its graphs are small, so best-of-5 is
    // still fast and shields the CI regression gate from scheduler
    // noise on shared machines.
    let reps = if opts.quick { 5 } else { 3 };
    let calib = calibration_ns();

    let mut report = Json::object();
    report.set("schema_version", Json::UInt(u64::from(PERF_SCHEMA_VERSION)));
    report.set("bench_meta", crate::meta::bench_meta());
    report.set("quick", Json::Bool(opts.quick));
    report.set(
        "threads_available",
        Json::UInt(rayon::current_num_threads() as u64),
    );
    report.set(
        "thread_sweep",
        Json::Array(sweep.iter().map(|&t| Json::UInt(t as u64)).collect()),
    );
    report.set("calibration_ns", Json::UInt(calib));

    let mut fig10_largest = (0u32, 0u64);
    let mut fig10_intersect_ns = 0u64;
    let mut fig10_rows = Vec::new();
    let fig10_methods = sweep_methods(true);
    for n in perf_fig10_sizes(opts.quick) {
        let g = fig10_graph(n);
        let samples = measure_graph(&g, &fig10_methods, reps, &sweep);
        if let Some(s) = samples
            .iter()
            .find(|s| s.strategy == "cpu_parallel" && s.threads == 1)
        {
            fig10_largest = (n, s.wall_ns); // sizes ascend; last wins
        }
        if let Some(s) = samples.iter().find(|s| s.strategy == "cpu-intersect") {
            fig10_intersect_ns = s.wall_ns;
        }
        if n >= 1_200 {
            // The acceptance race: at the largest fig10 scale the
            // intersection backends must beat their combination
            // counterparts outright (the margin is orders of magnitude,
            // so this is a correctness gate, not a flaky timing one).
            let ns_of = |label: &str| {
                samples
                    .iter()
                    .find(|s| s.strategy == label)
                    .map_or(u64::MAX, |s| s.wall_ns)
            };
            assert!(
                ns_of("cpu-intersect") < ns_of("cpu"),
                "cpu-intersect must beat the combination algorithm at n={n}"
            );
            assert!(
                ns_of("gpu-intersect") < ns_of("gpu-opt"),
                "gpu-intersect must beat the combination kernel at n={n}"
            );
        }
        fig10_rows.push(graph_json(n, &samples));
    }
    report.set("fig10", Json::Array(fig10_rows));

    let mut fig11_rows = Vec::new();
    let fig11_methods = sweep_methods(false);
    for n in perf_fig11_sizes(opts.quick) {
        let g = fig11_graph(n);
        let samples = measure_graph(&g, &fig11_methods, reps, &sweep);
        fig11_rows.push(graph_json(n, &samples));
    }
    report.set("fig11", Json::Array(fig11_rows));

    let mut overhead = Json::object();
    overhead.set("telemetry", telemetry_overhead(&fig10_graph(600)));
    overhead.set("pool_dispatch", dispatch_cost(&sweep));
    report.set("overhead", overhead);

    if let Some(rows) = merge_criterion("bench_out/criterion.jsonl") {
        report.set("criterion", rows);
    }

    // Re-measure the calibration loop after the suite and normalize the
    // regression ratio by the slower of the two readings: if the machine
    // picked up external load mid-run the second calibration slows with
    // it, so the gate does not misread machine noise as a code
    // regression (a real regression slows fig10 without touching the
    // calibration loop).
    let calib_after = calibration_ns();
    report.set("calibration_after_ns", Json::UInt(calib_after));
    let regression = opts.baseline.as_deref().and_then(|path| {
        check_baseline(
            path,
            calib.max(calib_after),
            fig10_largest,
            fig10_intersect_ns,
        )
    });
    PerfOutcome { report, regression }
}

/// Compares the normalized 1-thread fig10 wall-clock against the
/// committed baseline; writes the baseline when the file is absent.
/// Returns `Some(message)` on a regression beyond the tolerance.
/// `fig10_intersect_ns` (the `cpu-intersect` wall at the same largest
/// size) is recorded in the baseline as an informational row — the gate
/// itself stays anchored to the combination fast path.
fn check_baseline(
    path: &str,
    calib: u64,
    fig10_largest: (u32, u64),
    fig10_intersect_ns: u64,
) -> Option<String> {
    let (fig10_n, fig10_ns) = fig10_largest;
    if std::env::var("TRIGON_PERF_SKIP_REGRESSION").is_ok() {
        println!("  [baseline check skipped via TRIGON_PERF_SKIP_REGRESSION]");
        return None;
    }
    if calib == 0 || fig10_ns == 0 {
        return None;
    }
    let cur_ratio = fig10_ns as f64 / calib as f64;
    let Ok(text) = std::fs::read_to_string(path) else {
        let mut b = Json::object();
        b.set("schema_version", Json::UInt(u64::from(PERF_SCHEMA_VERSION)));
        b.set("calibration_ns", Json::UInt(calib));
        b.set("fig10_n", Json::UInt(u64::from(fig10_n)));
        b.set("fig10_largest_1t_ns", Json::UInt(fig10_ns));
        b.set("normalized_ratio", Json::Float(cur_ratio));
        if fig10_intersect_ns > 0 {
            b.set("fig10_cpu_intersect_1t_ns", Json::UInt(fig10_intersect_ns));
            b.set(
                "intersect_normalized_ratio",
                Json::Float(fig10_intersect_ns as f64 / calib as f64),
            );
        }
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, b.to_string_pretty()).expect("write baseline");
        println!("  [no baseline at {path}; wrote one — commit it]");
        return None;
    };
    let base = Json::parse(&text).expect("baseline parses");
    let num = |v: Option<&Json>| -> f64 {
        match v {
            Some(Json::UInt(u)) => *u as f64,
            Some(Json::Int(i)) => *i as f64,
            Some(Json::Float(f)) => *f,
            _ => 0.0,
        }
    };
    let base_calib = num(base.get("calibration_ns"));
    let base_ns = num(base.get("fig10_largest_1t_ns"));
    if base_calib <= 0.0 || base_ns <= 0.0 {
        return Some(format!("baseline {path} is malformed"));
    }
    let base_n = num(base.get("fig10_n")) as u32;
    if base_n != fig10_n {
        println!(
            "  [baseline at {path} was taken at fig10 n={base_n}, this run's largest is \
             n={fig10_n}; profiles differ — regression check skipped]"
        );
        return None;
    }
    let base_ratio = base_ns / base_calib;
    let limit = base_ratio * (1.0 + REGRESSION_TOLERANCE);
    println!(
        "  baseline check: normalized fig10 1-thread ratio {cur_ratio:.3} vs baseline {base_ratio:.3} (limit {limit:.3})"
    );
    if cur_ratio > limit {
        Some(format!(
            "perf regression: 1-thread fig10 wall-clock ratio {cur_ratio:.3} exceeds \
             baseline {base_ratio:.3} by more than {:.0} %",
            REGRESSION_TOLERANCE * 100.0
        ))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_perf_report_has_schema() {
        let out = run_perf(&PerfOptions {
            quick: true,
            baseline: None,
        });
        assert!(out.regression.is_none());
        let r = &out.report;
        assert_eq!(
            r.get("schema_version"),
            Some(&Json::UInt(u64::from(PERF_SCHEMA_VERSION)))
        );
        for key in [
            "fig10",
            "fig11",
            "overhead",
            "thread_sweep",
            "calibration_ns",
        ] {
            assert!(r.get(key).is_some(), "missing {key}");
        }
        let Some(Json::Array(rows)) = r.get("fig10") else {
            panic!("fig10 not an array")
        };
        assert!(!rows.is_empty());
        // Every row carries a serial strategy and at least two parallel
        // widths, and all strategies agree on the triangle count.
        for row in rows {
            let Some(Json::Array(strats)) = row.get("strategies") else {
                panic!("strategies missing")
            };
            let widths = strats
                .iter()
                .filter(|s| s.get("strategy") == Some(&Json::Str("cpu_parallel".into())))
                .count();
            assert!(widths >= 2, "wanted >= 2 parallel widths, got {widths}");
            // The derived method sweep puts every Method::ALL entry —
            // including the intersection backends — in each fig10 row.
            for m in Method::ALL {
                assert!(
                    strats
                        .iter()
                        .any(|s| s.get("strategy") == Some(&Json::Str(m.label().into()))),
                    "method {} missing from the fig10 sweep",
                    m.label()
                );
            }
            assert!(
                row.get("combination_vs_intersection").is_some(),
                "head-to-head section missing"
            );
        }
    }

    #[test]
    fn thread_sweep_starts_at_one() {
        let s = thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.contains(&2));
    }

    #[test]
    fn baseline_roundtrip_and_regression() {
        let dir = std::env::temp_dir().join("trigon_perf_baseline_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("baseline.json");
        let p = path.to_str().unwrap();
        // First call writes the baseline.
        assert!(check_baseline(p, 1_000, (600, 2_000), 40).is_none());
        assert!(path.exists());
        // Same ratio: fine. 30 % worse: regression. Other profile
        // (different largest n): skipped, not failed.
        assert!(check_baseline(p, 1_000, (600, 2_000), 40).is_none());
        assert!(check_baseline(p, 1_000, (600, 2_600), 40).is_some());
        assert!(check_baseline(p, 1_000, (1_200, 9_000), 40).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
